set datafile separator ','
set title 'Figure 5: SCI remote write latency'
set xlabel 'data size (bytes)'
set ylabel 'latency (us)'
set key top left
set terminal png size 900,600
set output 'fig5.png'
plot 'fig5.csv' skip 1 using 1:2 with linespoints title 'raw store', \
'fig5.csv' skip 1 using 1:3 with linespoints title 'sci_memcpy'
