set datafile separator ','
set title 'Figure 6: transaction overhead vs size'
set xlabel 'transaction size (bytes)'
set ylabel 'overhead (us)'
set logscale xy
set terminal png size 900,600
set output 'fig6.png'
plot 'fig6.csv' skip 1 using 1:2 with linespoints title 'PERSEAS'
