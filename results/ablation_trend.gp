set datafile separator ','
set title 'Technology trend: RVM/PERSEAS latency ratio'
set xlabel 'year'
set ylabel 'ratio'
set terminal png size 900,600
set output 'ablation_trend.png'
plot 'ablation_trend.csv' skip 1 using 1:4 with linespoints title 'RVM / PERSEAS'
