//! Session store: a multi-threaded application on the typed record layer.
//!
//! Combines [`perseas_store`]'s tables and ring logs with
//! [`perseas_core::SharedPerseas`] to build the kind of service a
//! downstream user actually writes: a web session store whose sessions
//! survive a server crash by living in network RAM.
//!
//! ```text
//! cargo run --release -p perseas-examples --bin session_store
//! ```

use std::thread;

use perseas_core::{Perseas, PerseasConfig, SharedPerseas};
use perseas_rnram::SimRemote;
use perseas_sci::SciParams;
use perseas_simtime::SimClock;
use perseas_store::{fixed_record, RingLog, Table};

fixed_record! {
    /// One login session.
    pub struct Session {
        pub user: u64,
        pub logins: u32,
        pub active: bool,
    }
}

fixed_record! {
    /// One audit-trail event.
    pub struct AuditEvent {
        pub user: u64,
        pub kind: u8, // 0 = login, 1 = logout
    }
}

fn main() -> Result<(), perseas_txn::TxnError> {
    let backend = SimRemote::new("session-mirror");
    let mirror_memory = backend.node().clone();
    let mut db = Perseas::init(vec![backend], PerseasConfig::default())?;
    let sessions = Table::<Session>::create(&mut db, 256)?;
    let audit = RingLog::<AuditEvent>::create(&mut db, 128)?;
    db.init_remote_db()?;
    let shared = SharedPerseas::new(db);

    // Four worker threads log users in and out concurrently.
    let workers: Vec<_> = (0..4u64)
        .map(|t| {
            let db = shared.clone();
            thread::spawn(move || {
                for i in 0..50u64 {
                    let user = t * 64 + (i % 64);
                    db.transaction(|tx| {
                        let tm = tx.inner_mut();
                        let mut s = sessions.get(tm, user as usize)?;
                        s.user = user;
                        s.logins += 1;
                        s.active = i % 2 == 0;
                        sessions.put(tm, user as usize, &s)?;
                        audit.push(
                            tm,
                            &AuditEvent {
                                user,
                                kind: (i % 2) as u8,
                            },
                        )?;
                        Ok(())
                    })
                    .expect("session transaction");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }

    let total_logins: u32 = shared.with(|db| {
        (0..256)
            .map(|i| sessions.get(db, i).expect("session").logins)
            .sum()
    });
    println!("4 threads x 50 logins recorded; table sums to {total_logins}");
    assert_eq!(total_logins, 200);

    let events = shared.with(|db| audit.pushed(db).expect("audit count"));
    println!("audit log holds {events} events (wrapping ring of 128 slots)");
    assert_eq!(events, 200);

    // The server dies; sessions survive in the mirror.
    shared.with(|db| db.crash());
    let reconnect =
        SimRemote::with_parts(SimClock::new(), mirror_memory, SciParams::dolphin_1998());
    let (db2, report) = Perseas::recover(reconnect, PerseasConfig::default())?;
    let sessions2 = Table::<Session>::open(&db2, sessions.region())?;
    let recovered_logins: u32 = (0..256)
        .map(|i| sessions2.get(&db2, i).expect("session").logins)
        .sum();
    println!(
        "recovered on a standby ({} committed txns): {recovered_logins} logins intact",
        report.last_committed
    );
    assert_eq!(recovered_logins, 200);
    Ok(())
}
