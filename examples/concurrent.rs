//! The concurrent transaction engine: OS threads share one PERSEAS
//! instance through the `Send + Sync` handle layer.
//!
//! Four worker threads each run transfer transactions against their own
//! account slice (no conflicts, every commit lands), then all workers
//! fight over one hot account to show first-claimer-wins conflicts and
//! retries. Finishes with a crash and recovery to prove the committed
//! balances are durable on the simulated mirror.
//!
//! ```text
//! cargo run -p perseas-examples --bin concurrent
//! ```

use std::process::ExitCode;
use std::thread;

use perseas_core::{ConcurrentPerseas, Perseas, PerseasConfig, TxnError};
use perseas_rnram::SimRemote;
use perseas_sci::SciParams;
use perseas_simtime::SimClock;

const WORKERS: usize = 4;
const TRANSFERS: usize = 50;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("concurrent failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let backend = SimRemote::new("mirror");
    let node = backend.node().clone();
    let cfg = PerseasConfig::default().with_concurrent(true);
    let mut db = Perseas::init(vec![backend], cfg)?;
    // One 8-byte balance per worker, plus a shared hot account at the end.
    let accounts = db.malloc((WORKERS + 1) * 8)?;
    db.init_remote_db()?;
    let shared = ConcurrentPerseas::new(db)?;

    println!("{WORKERS} threads, disjoint accounts:");
    let workers: Vec<_> = (0..WORKERS)
        .map(|w| {
            let db = shared.clone();
            thread::spawn(move || {
                for _ in 0..TRANSFERS {
                    db.transaction(|tx| {
                        let mut buf = [0u8; 8];
                        tx.read(accounts, w * 8, &mut buf)?;
                        let next = u64::from_le_bytes(buf) + 1;
                        tx.update(accounts, w * 8, &next.to_le_bytes())
                    })
                    .expect("disjoint transfers cannot conflict");
                }
            })
        })
        .collect();
    for h in workers {
        h.join().expect("worker panicked");
    }
    for w in 0..WORKERS {
        let mut buf = [0u8; 8];
        shared.read(accounts, w * 8, &mut buf)?;
        println!("  account {w}: balance {}", u64::from_le_bytes(buf));
    }

    println!("{WORKERS} threads, one hot account (conflicts + retry):");
    let hot = WORKERS * 8;
    let fighters: Vec<_> = (0..WORKERS)
        .map(|_| {
            let db = shared.clone();
            thread::spawn(move || {
                let mut retries = 0usize;
                let mut done = 0usize;
                while done < TRANSFERS {
                    match db.transaction(|tx| {
                        let mut buf = [0u8; 8];
                        tx.read(accounts, hot, &mut buf)?;
                        let next = u64::from_le_bytes(buf) + 1;
                        tx.update(accounts, hot, &next.to_le_bytes())
                    }) {
                        Ok(()) => done += 1,
                        Err(TxnError::Conflict { .. }) => {
                            retries += 1;
                            thread::yield_now();
                        }
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
                retries
            })
        })
        .collect();
    let retries: usize = fighters
        .into_iter()
        .map(|h| h.join().expect("fighter panicked"))
        .sum();
    let mut buf = [0u8; 8];
    shared.read(accounts, hot, &mut buf)?;
    println!(
        "  hot account: balance {} after {} conflicts retried",
        u64::from_le_bytes(buf),
        retries
    );

    let stats = shared.stats();
    println!(
        "engine: {} commits, {} group commits, {} conflicts",
        stats.commits, stats.group_commits, stats.conflicts
    );

    // The availability story survives concurrency: crash the primary and
    // recover every committed balance from the mirror.
    let db = shared
        .try_unwrap()
        .unwrap_or_else(|_| panic!("all handles returned"));
    drop(db);
    let fresh = SimRemote::with_parts(SimClock::new(), node, SciParams::dolphin_1998());
    let (db2, report) = Perseas::recover(fresh, cfg)?;
    let mut buf = [0u8; 8];
    db2.read(accounts, hot, &mut buf)?;
    println!(
        "recovered: last committed txn {}, hot balance {}",
        report.last_committed,
        u64::from_le_bytes(buf)
    );
    assert_eq!(u64::from_le_bytes(buf), (WORKERS * TRANSFERS) as u64);
    Ok(())
}
