//! Inventory: the order-entry (TPC-C-like new-order) workload of a
//! wholesale supplier on PERSEAS, with a stock-ledger audit.
//!
//! ```text
//! cargo run --release -p perseas-examples --bin inventory
//! ```

use perseas_core::{Perseas, PerseasConfig, TxnError};
use perseas_rnram::SimRemote;
use perseas_sci::{NodeMemory, SciParams};
use perseas_simtime::SimClock;
use perseas_workloads::{run_workload, OrderEntry, Workload};

fn main() -> Result<(), TxnError> {
    let clock = SimClock::new();
    let mirror = SimRemote::with_parts(
        clock.clone(),
        NodeMemory::new("warehouse-mirror"),
        SciParams::dolphin_1998(),
    );
    let mut db = Perseas::init_with_clock(vec![mirror], PerseasConfig::default(), clock)?;

    let mut workload = OrderEntry::paper();
    workload
        .setup(&mut db)
        .expect("allocate the wholesale database");

    for batch in 1..=5 {
        let report = run_workload(&mut db, &mut workload, 2_000).expect("orders");
        println!(
            "batch {batch}: {:.0} new-order txns/sec (mean latency {})",
            report.tps(),
            report.latency()
        );
    }

    workload
        .check(&db)
        .expect("order counts and stock ledger reconcile");
    println!(
        "audit: {} orders placed; district counters, stock quantities and \
         year-to-date sales all reconcile",
        workload.txns()
    );

    let stats = db.stats();
    println!(
        "protocol work: {} local copies, {} remote writes, 0 disk writes",
        stats.local_copies, stats.remote_writes
    );
    Ok(())
}
