//! REDO-only commit path: log-structured commits, a snapshot, a crash,
//! and an instant restart — with the whole run captured as a JSONL
//! trace.
//!
//! ```text
//! cargo run -p perseas-examples --bin redo_restart [trace.jsonl]
//! ```
//!
//! With `PerseasConfig::with_redo(true)` commits append after-images to
//! a segmented remote log instead of shipping undo copies, so every
//! payload byte crosses the wire once. A snapshot stamps a consistent
//! region image plus the covered log position; recovery replays only
//! the live tail after it, so restart time is flat in history length.
//!
//! The optional argument names the JSONL trace file (CI uploads it as a
//! failure artifact); by default the trace lands in a temp directory.

use std::process::ExitCode;

use perseas_core::{JsonlTracer, Perseas, PerseasConfig};
use perseas_obs::JsonlSink;
use perseas_rnram::SimRemote;
use perseas_sci::SciParams;
use perseas_simtime::SimClock;

const SLOTS: usize = 64;
const WRITE: usize = 1 << 10;
const TXNS: u64 = 48;
const TAIL: u64 = 16;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("redo_restart demo failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let trace_path = std::env::args().nth(1).map_or_else(
        || {
            std::env::temp_dir()
                .join(format!("perseas-redo-restart-{}.jsonl", std::process::id()))
        },
        std::path::PathBuf::from,
    );
    let sink = JsonlSink::to_file(&trace_path)?;

    // 8 KB segments: the 48 KB history rolls through several segments,
    // and the snapshot visibly retires the covered ones.
    let cfg = PerseasConfig::default()
        .with_redo(true)
        .with_redo_log(8 << 10, 16);
    let mirror = SimRemote::new("redo-mirror");
    let mirror_memory = mirror.node().clone(); // survives the crash below

    let mut db = Perseas::init(vec![mirror], cfg)?;
    db.set_tracer(Box::new(JsonlTracer::new(sink.clone())));
    let ledger = db.malloc(SLOTS * WRITE)?;
    db.init_remote_db()?;

    // A long committed history; each commit appends one after-image
    // record to the segmented log.
    let payload = vec![0xC4u8; WRITE];
    for i in 0..TXNS {
        db.begin_transaction()?;
        let off = (i as usize % SLOTS) * WRITE;
        db.set_range(ledger, off, WRITE)?;
        db.write(ledger, off, &payload)?;
        db.commit_transaction()?;
        // A snapshot 16 transactions before the crash: everything the
        // log holds up to here is retired, so only the tail replays.
        if i == TXNS - TAIL - 1 {
            db.redo_snapshot()?;
            println!("snapshot at txn {} — covered segments compacted", i + 1);
        }
    }
    println!("committed {TXNS} transactions on the redo log");
    db.crash();
    println!("crash!");

    // Restart: the recovering workstation loads the snapshot image and
    // replays only the live log tail.
    let backend = SimRemote::with_parts(SimClock::new(), mirror_memory, SciParams::dolphin_1998());
    let (db2, report) = Perseas::recover(backend, PerseasConfig::default().with_redo(true))?;
    println!(
        "recovered: last committed txn {}, replayed {} record(s) ({} bytes) in {:.1} us",
        report.last_committed,
        report.replayed_records,
        report.replayed_bytes,
        report.replay_virtual_nanos as f64 / 1e3,
    );
    if report.replayed_records != TAIL as usize {
        return Err(format!(
            "expected a {TAIL}-record tail replay, got {}",
            report.replayed_records
        )
        .into());
    }
    let mut buf = vec![0u8; WRITE];
    db2.read(ledger, 0, &mut buf)?;
    assert!(buf.iter().all(|&b| b == 0xC4), "recovered image intact");

    sink.flush();
    println!("trace: {}", trace_path.display());
    Ok(())
}
