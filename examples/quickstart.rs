//! Quickstart: a mirrored main-memory database, a crash, and a recovery.
//!
//! ```text
//! cargo run -p perseas-examples --bin quickstart
//! ```

use perseas_core::{Perseas, PerseasConfig, TxnError};
use perseas_rnram::SimRemote;
use perseas_sci::SciParams;
use perseas_simtime::SimClock;

fn main() -> Result<(), TxnError> {
    // One remote workstation exports its idle memory as network RAM.
    let mirror = SimRemote::new("mirror-node");
    let mirror_memory = mirror.node().clone(); // survives the crash below

    // PERSEAS_init + PERSEAS_malloc + PERSEAS_init_remote_db.
    let mut db = Perseas::init(vec![mirror], PerseasConfig::default())?;
    let counters = db.malloc(8 * 16)?; // sixteen u64 counters
    db.init_remote_db()?;
    println!("database mirrored on {} node(s)", db.mirror_count());

    // A few committed transactions...
    for i in 0..10u64 {
        db.begin_transaction()?;
        let slot = (i % 16) as usize * 8;
        db.set_range(counters, slot, 8)?;
        db.write(counters, slot, &(i + 1).to_le_bytes())?;
        db.commit_transaction()?;
    }
    println!(
        "committed 10 transactions (latest id {})",
        db.last_committed()
    );

    // ...one aborted transaction (a purely local operation)...
    db.begin_transaction()?;
    db.set_range(counters, 0, 8)?;
    db.write(counters, 0, &999u64.to_le_bytes())?;
    db.abort_transaction()?;

    // ...and one in flight when the machine dies.
    db.begin_transaction()?;
    db.set_range(counters, 8, 8)?;
    db.write(counters, 8, &777u64.to_le_bytes())?;
    println!("crash! (mid-transaction)");
    db.crash();

    // Any workstation can now recover from the mirror's memory.
    let backend = SimRemote::with_parts(SimClock::new(), mirror_memory, SciParams::dolphin_1998());
    let (db2, report) = Perseas::recover(backend, PerseasConfig::default())?;
    println!(
        "recovered: last committed txn {}, rolled back {} undo record(s) of txn {:?}",
        report.last_committed, report.rolled_back_records, report.rolled_back_txn
    );

    let mut buf = [0u8; 8];
    db2.read(counters, 0, &mut buf)?;
    let c0 = u64::from_le_bytes(buf);
    db2.read(counters, 8, &mut buf)?;
    let c1 = u64::from_le_bytes(buf);
    println!("counter[0] = {c0} (aborted 999 never visible)");
    println!("counter[1] = {c1} (in-flight 777 rolled back)");
    assert_eq!(c0, 1);
    assert_eq!(c1, 2);
    println!("atomicity and durability held across the crash");
    Ok(())
}
