//! Banking: the paper's debit-credit workload on PERSEAS, with a crash in
//! the middle of the run and a consistency audit after recovery.
//!
//! ```text
//! cargo run --release -p perseas-examples --bin banking
//! ```

use perseas_core::{FaultPlan, Perseas, PerseasConfig, TxnError};
use perseas_rnram::SimRemote;
use perseas_sci::{NodeMemory, SciParams};
use perseas_simtime::SimClock;
use perseas_workloads::{run_workload, DebitCredit, Workload};

fn main() -> Result<(), TxnError> {
    let clock = SimClock::new();
    let mirror = SimRemote::with_parts(
        clock.clone(),
        NodeMemory::new("bank-mirror"),
        SciParams::dolphin_1998(),
    );
    let node = mirror.node().clone();
    let mut db = Perseas::init_with_clock(vec![mirror], PerseasConfig::default(), clock)?;

    let mut workload = DebitCredit::paper();
    workload
        .setup(&mut db)
        .expect("allocate the banking database");

    // Measure a healthy run.
    let report = run_workload(&mut db, &mut workload, 10_000).expect("run transactions");
    println!(
        "debit-credit: {:.0} txns/sec ({} virtual time for {} txns)",
        report.tps(),
        report.elapsed,
        report.txns
    );
    workload.check(&db).expect("balances conserved");
    println!("audit 1: account / teller / branch balances agree");

    // Crash the bank's primary in the middle of a transaction.
    db.set_fault_plan(FaultPlan::crash_after(2));
    let err = workload.run_txn(&mut db).expect_err("this txn must die");
    assert_eq!(err, TxnError::Crashed);
    println!("primary crashed mid-transaction: {err}");

    // Recover on a standby workstation and audit again.
    let backend = SimRemote::with_parts(SimClock::new(), node, SciParams::dolphin_1998());
    let (db2, report) = Perseas::recover(backend, PerseasConfig::default())?;
    println!(
        "recovered from mirror: {} committed txns survive, {} undo records rolled back",
        report.last_committed, report.rolled_back_records
    );
    workload
        .check(&db2)
        .expect("balances conserved after crash");
    println!("audit 2: the interrupted transfer vanished atomically");
    Ok(())
}
