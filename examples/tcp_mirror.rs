//! Real networking: PERSEAS mirroring over TCP to a genuinely separate
//! server, as in a production deployment on two workstations.
//!
//! Run self-contained (server on a background thread):
//!
//! ```text
//! cargo run -p perseas-examples --bin tcp_mirror
//! ```
//!
//! Or as two processes:
//!
//! ```text
//! cargo run -p perseas-examples --bin tcp_mirror -- server 127.0.0.1:7070
//! cargo run -p perseas-examples --bin tcp_mirror -- client 127.0.0.1:7070
//! ```

use std::env;
use std::process::ExitCode;

use perseas_core::{Perseas, PerseasConfig};
use perseas_rnram::server::Server;
use perseas_rnram::AnyRemote;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => {
            // Self-contained demo: spawn the server locally.
            let server = match Server::bind("tcp-mirror", "127.0.0.1:0") {
                Ok(s) => s.start(),
                Err(e) => {
                    eprintln!("cannot bind server: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let addr = server.addr().to_string();
            println!("mirror server listening on {addr}");
            let code = run_client(&addr);
            server.shutdown();
            code
        }
        Some("server") => {
            let addr = args.get(1).map(String::as_str).unwrap_or("127.0.0.1:7070");
            match Server::bind("tcp-mirror", addr) {
                Ok(s) => {
                    let handle = s.start();
                    println!(
                        "mirror server listening on {} (ctrl-c to stop)",
                        handle.addr()
                    );
                    loop {
                        std::thread::park();
                    }
                }
                Err(e) => {
                    eprintln!("cannot bind {addr}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("client") => {
            let addr = args.get(1).map(String::as_str).unwrap_or("127.0.0.1:7070");
            run_client(addr)
        }
        Some(other) => {
            eprintln!("unknown mode '{other}' (expected 'server' or 'client')");
            ExitCode::FAILURE
        }
    }
}

fn run_client(addr: &str) -> ExitCode {
    let run = || -> Result<(), Box<dyn std::error::Error>> {
        let mut mirror = AnyRemote::connect_auto(addr)?;
        println!("connected to mirror {}", mirror.fetch_name()?);

        let mut db = Perseas::init(vec![mirror], PerseasConfig::default())?;
        let ledger = db.malloc(4096)?;
        db.init_remote_db()?;

        let started = std::time::Instant::now();
        let n = 1_000u64;
        for i in 0..n {
            db.begin_transaction()?;
            let slot = ((i as usize) % 512) * 8;
            db.set_range(ledger, slot, 8)?;
            db.write(ledger, slot, &i.to_le_bytes())?;
            db.commit_transaction()?;
        }
        let elapsed = started.elapsed();
        println!(
            "{n} transactions mirrored over TCP in {elapsed:?} \
             ({:.0} txns/sec wall clock)",
            n as f64 / elapsed.as_secs_f64()
        );

        // Simulate losing the primary: throw the instance away and recover
        // over a fresh connection — the paper's availability story, over
        // real sockets.
        db.crash();
        let reconnect = AnyRemote::connect_auto(addr)?;
        let (db2, report) = Perseas::recover(reconnect, PerseasConfig::default())?;
        println!(
            "recovered over TCP: last committed txn {} ({} bytes pulled back)",
            report.last_committed, report.bytes_recovered
        );
        let mut buf = [0u8; 8];
        db2.read(ledger, ((n as usize - 1) % 512) * 8, &mut buf)?;
        assert_eq!(u64::from_le_bytes(buf), n - 1);
        println!("last committed value verified after recovery");
        Ok(())
    };
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("client failed: {e}");
            ExitCode::FAILURE
        }
    }
}
