//! Availability: the paper's strongest claim against Rio/Vista. Data in a
//! crashed machine's reliable cache is safe but *unavailable* until that
//! machine reboots; PERSEAS data lives in network RAM and the database
//! restarts immediately on any workstation — and re-establishes redundancy
//! on a spare node.
//!
//! ```text
//! cargo run -p perseas-examples --bin availability
//! ```

use perseas_core::{Perseas, PerseasConfig, TxnError};
use perseas_rnram::SimRemote;
use perseas_sci::{NodeMemory, SciParams};
use perseas_simtime::SimClock;

fn reopen(node: &NodeMemory) -> SimRemote {
    SimRemote::with_parts(SimClock::new(), node.clone(), SciParams::dolphin_1998())
}

fn main() -> Result<(), TxnError> {
    // Workstation A is the primary; B and C mirror it.
    let b = SimRemote::new("workstation-B");
    let c = SimRemote::new("workstation-C");
    let (node_b, node_c) = (b.node().clone(), c.node().clone());

    let mut db = Perseas::init(vec![b, c], PerseasConfig::default())?;
    let region = db.malloc(1 << 16)?;
    db.init_remote_db()?;
    for i in 0..100u64 {
        db.begin_transaction()?;
        let slot = (i as usize % 512) * 8;
        db.set_range(region, slot, 8)?;
        db.write(region, slot, &i.to_le_bytes())?;
        db.commit_transaction()?;
    }
    println!("primary A committed 100 txns, mirrored on B and C");

    // A dies. Workstation D takes over at once, picking the freshest
    // mirror and re-mirroring onto the other.
    db.crash();
    println!("A crashed (and stays down)");
    let (mut db_on_d, report) = Perseas::recover_best(
        vec![reopen(&node_b), reopen(&node_c)],
        PerseasConfig::default(),
        SimClock::new(),
    )?;
    println!(
        "D recovered immediately: last committed {}, {} mirrors re-established",
        report.last_committed,
        db_on_d.mirror_count()
    );

    // D keeps serving while B also dies; redundancy is restored on E.
    for i in 100..150u64 {
        db_on_d.begin_transaction()?;
        let slot = (i as usize % 512) * 8;
        db_on_d.set_range(region, slot, 8)?;
        db_on_d.write(region, slot, &i.to_le_bytes())?;
        db_on_d.commit_transaction()?;
    }
    node_b.crash();
    println!("B crashed too; dropping it and adding spare workstation E");
    // Find which mirror is the dead one and replace it.
    let dead = (0..db_on_d.mirror_count())
        .find(|&i| {
            db_on_d
                .mirror_backend(i)
                .is_some_and(|m| m.node().is_crashed())
        })
        .expect("one mirror is down");
    db_on_d.remove_mirror(dead)?;
    let e = SimRemote::new("workstation-E");
    let node_e = e.node().clone();
    db_on_d.add_mirror(e)?;
    println!(
        "running on {} healthy mirrors again",
        db_on_d.mirror_count()
    );

    // Even D can now die: E alone still holds everything.
    db_on_d.crash();
    let (db_final, report) = Perseas::recover(reopen(&node_e), PerseasConfig::default())?;
    println!("recovered from E: last committed {}", report.last_committed);
    let mut buf = [0u8; 8];
    db_final.read(region, 149 * 8, &mut buf)?;
    assert_eq!(u64::from_le_bytes(buf), 149);
    println!("all 150 transactions survived three node failures");
    Ok(())
}
