//! The batched, vectored commit pipeline over real TCP mirrors.
//!
//! Connects to one or two running mirror servers (for instance
//! `perseas serve`), commits multi-range transactions with
//! `batched_commit` enabled — each commit is three `WriteV` frames per
//! mirror instead of one round-trip per range — and prints the
//! `CommitBatch` trace for the first transaction so the batch shape is
//! visible.
//!
//! ```text
//! cargo run -p perseas-cli -- serve --addr 127.0.0.1:7071
//! cargo run -p perseas-examples --bin batched_tcp -- 127.0.0.1:7071
//! ```

use std::env;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use perseas_core::{Perseas, PerseasConfig, TraceEvent, Tracer};
use perseas_rnram::AnyRemote;

/// Prints every event while enabled; the demo turns it off after the
/// first transaction so the timing loop is not dominated by stdout.
struct StdoutTracer(Arc<AtomicBool>);

impl Tracer for StdoutTracer {
    fn event(&mut self, event: &TraceEvent) {
        if self.0.load(Ordering::Relaxed) {
            println!("  trace: {event:?}");
        }
    }
}

fn main() -> ExitCode {
    let addrs: Vec<String> = env::args().skip(1).collect();
    if addrs.is_empty() {
        eprintln!("usage: batched_tcp <mirror-addr> [mirror-addr...]");
        return ExitCode::FAILURE;
    }
    match run(&addrs) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("batched_tcp failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(addrs: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut mirrors = Vec::new();
    for addr in addrs {
        let mut m = AnyRemote::connect_auto(addr)?;
        println!("connected to mirror {} at {addr}", m.fetch_name()?);
        mirrors.push(m);
    }

    let cfg = PerseasConfig::default().with_batched_commit(true);
    let mut db = Perseas::init(mirrors, cfg)?;
    let ledger = db.malloc(4096)?;
    db.init_remote_db()?;

    let tracing = Arc::new(AtomicBool::new(true));
    db.set_tracer(Box::new(StdoutTracer(tracing.clone())));

    println!("first transaction (8 ranges, traced):");
    let n = 1_000u64;
    let started = std::time::Instant::now();
    for i in 0..n {
        db.begin_transaction()?;
        for r in 0..8usize {
            let slot = r * 512 + ((i as usize) % 56) * 8;
            db.set_range(ledger, slot, 8)?;
            db.write(ledger, slot, &i.to_le_bytes())?;
        }
        db.commit_transaction()?;
        tracing.store(false, Ordering::Relaxed);
    }
    let elapsed = started.elapsed();
    println!(
        "{n} batched 8-range transactions to {} mirror(s) in {elapsed:?} \
         ({:.0} txns/sec wall clock)",
        addrs.len(),
        n as f64 / elapsed.as_secs_f64()
    );

    // The availability story: lose the primary, recover from mirror 0.
    db.crash();
    let (db2, report) = Perseas::recover(
        AnyRemote::connect_auto(&addrs[0])?,
        PerseasConfig::default().with_batched_commit(true),
    )?;
    println!(
        "recovered over TCP: last committed txn {} ({} bytes pulled back)",
        report.last_committed, report.bytes_recovered
    );
    let mut buf = [0u8; 8];
    db2.read(ledger, (n as usize - 1) % 56 * 8, &mut buf)?;
    assert_eq!(u64::from_le_bytes(buf), n - 1);
    println!("last committed value verified after recovery");
    Ok(())
}
