//! End-to-end observability: one metrics registry shared by the TCP
//! mirror server, the pipelined transport, and the transaction engine,
//! exported over a real `/metrics` HTTP endpoint, with the transaction
//! lifecycle mirrored into a JSONL trace.
//!
//! ```text
//! cargo run -p perseas-examples --bin observability
//! ```
//!
//! The same wiring in production is two flags away:
//! `perseas serve --metrics-addr 127.0.0.1:9185` on the mirror, and
//! `perseas stats --addr 127.0.0.1:9185` to read it back.

use std::process::ExitCode;

use perseas_core::{JsonlTracer, Perseas, PerseasConfig};
use perseas_obs::{JsonlSink, MetricsServer, Registry};
use perseas_rnram::server::Server;
use perseas_rnram::TcpRemote;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("observability demo failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    // One registry for every layer; one scrape shows the whole stack.
    let registry = Registry::new();

    let server = Server::bind("obs-mirror", "127.0.0.1:0")?
        .with_metrics(&registry)
        .start();
    let metrics = MetricsServer::serve("127.0.0.1:0", registry.clone())?;
    println!(
        "mirror on {}, metrics on http://{}/metrics",
        server.addr(),
        metrics.addr()
    );

    let mut conn = TcpRemote::connect_pipelined(server.addr())?;
    conn.set_metrics(&registry);

    let mut db = Perseas::init(vec![conn], PerseasConfig::default())?;
    db.set_metrics(&registry);
    let sink = JsonlSink::in_memory();
    db.set_tracer(Box::new(JsonlTracer::new(sink.clone())));

    let ledger = db.malloc(4096)?;
    db.init_remote_db()?;
    for i in 0..100u64 {
        db.begin_transaction()?;
        let slot = ((i as usize) % 512) * 8;
        db.set_range(ledger, slot, 8)?;
        db.write(ledger, slot, &i.to_le_bytes())?;
        db.commit_transaction()?;
    }

    // Scrape over HTTP, exactly as Prometheus would.
    let exposition = perseas_obs::scrape(metrics.addr())?;
    let samples = perseas_obs::parse_exposition(&exposition)?;
    println!("scraped {} samples; highlights:", samples.len());
    for name in [
        "perseas_txn_committed_total",
        "perseas_txn_committed_bytes_total",
        "perseas_client_posted_total",
        "perseas_client_window_stalls_total",
        "perseas_server_bytes_in_total",
        "perseas_server_connections",
    ] {
        let value = samples
            .iter()
            .find(|s| s.name == name)
            .map_or(0.0, |s| s.value);
        println!("  {name:<42} {value:.0}");
    }
    let committed = samples
        .iter()
        .find(|s| s.name == "perseas_txn_committed_total")
        .map_or(0.0, |s| s.value);
    assert_eq!(committed, 100.0, "every commit is visible in the scrape");

    // The same milestones, as an ordered JSONL trace.
    let lines = sink.lines();
    println!("trace captured {} events; last commit:", lines.len());
    if let Some(line) = lines
        .iter()
        .rev()
        .find(|l| l.contains("\"kind\":\"txn_committed\""))
    {
        println!("  {line}");
    }

    server.shutdown();
    Ok(())
}
