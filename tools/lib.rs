//! Bench-regression gating logic, shared by the `bench_gate` binary and
//! its tests.
//!
//! Each `BENCH_<name>.json` carries its own gate specification:
//!
//! ```json
//! {
//!   "bench": "group_commit",
//!   "metrics": { "grouped_commit_us": 123.0, "speedup": 3.3 },
//!   "gate": {
//!     "grouped_commit_us": { "better": "lower", "tolerance_pct": 15 }
//!   }
//! }
//! ```
//!
//! The gate is read from the **baseline** file, so a PR cannot loosen a
//! gate by editing the freshly produced `BENCH_*.json` — only a reviewed
//! change to `results/baselines/` can. Metrics without a gate entry are
//! reported but never fail the build (wall-clock numbers are too noisy
//! to gate tightly; deterministic virtual-time and message counts are
//! the contract).

use perseas_obs::Json;

/// Outcome of comparing one gated metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// Metric name inside the bench file.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Direction in which larger is better (`false` = lower is better).
    pub higher_is_better: bool,
    /// Allowed regression, in percent of the baseline.
    pub tolerance_pct: f64,
    /// `true` if the current value regressed beyond tolerance.
    pub regressed: bool,
}

impl Check {
    /// Percentage change relative to the baseline, signed so that
    /// positive always means "worse".
    pub fn regression_pct(&self) -> f64 {
        if self.baseline == 0.0 {
            return if self.current == self.baseline {
                0.0
            } else {
                f64::INFINITY
            };
        }
        let delta_pct = (self.current - self.baseline) / self.baseline * 100.0;
        if self.higher_is_better {
            -delta_pct
        } else {
            delta_pct
        }
    }
}

/// Compares a current bench file against its baseline, evaluating every
/// metric named in the baseline's `gate` object.
///
/// # Errors
///
/// Returns a message if either document is missing required fields or a
/// gated metric is absent from the current run.
pub fn compare(baseline: &Json, current: &Json) -> Result<Vec<Check>, String> {
    let bench = baseline
        .get("bench")
        .and_then(Json::as_str)
        .ok_or("baseline missing \"bench\"")?;
    let base_metrics = baseline
        .get("metrics")
        .and_then(Json::as_object)
        .ok_or("baseline missing \"metrics\"")?;
    let cur_metrics = current
        .get("metrics")
        .and_then(Json::as_object)
        .ok_or("current file missing \"metrics\"")?;
    let gates = baseline
        .get("gate")
        .and_then(Json::as_object)
        .ok_or("baseline missing \"gate\"")?;
    let lookup = |metrics: &[(String, Json)], name: &str| -> Option<f64> {
        metrics
            .iter()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_f64())
    };
    let mut checks = Vec::new();
    for (metric, spec) in gates {
        // A gate may name a metric *class* instead of spelling the
        // direction out: "duration" means lower-is-better with a 20%
        // default tolerance (virtual-time durations are deterministic,
        // but a replay-length change legitimately moves them a little).
        // Explicit "better"/"tolerance_pct" keys override the class.
        let (class_better, class_tol) = match spec.get("class").and_then(Json::as_str) {
            None => (None, None),
            Some("duration") => (Some(false), Some(20.0)),
            Some(other) => {
                return Err(format!(
                    "{bench}/{metric}: unknown gate class {other:?} (known: \"duration\")"
                ))
            }
        };
        let higher_is_better = match spec.get("better").and_then(Json::as_str) {
            Some("higher") => true,
            Some("lower") => false,
            Some(other) => {
                return Err(format!(
                    "{bench}/{metric}: \"better\" must be \"higher\" or \"lower\", got {other:?}"
                ))
            }
            None => class_better
                .ok_or_else(|| format!("{bench}/{metric}: gate missing \"better\""))?,
        };
        let tolerance_pct = spec
            .get("tolerance_pct")
            .and_then(Json::as_f64)
            .or(class_tol)
            .ok_or_else(|| format!("{bench}/{metric}: gate missing \"tolerance_pct\""))?;
        let base = lookup(base_metrics, metric)
            .ok_or_else(|| format!("{bench}/{metric}: gated metric absent from baseline"))?;
        let cur = lookup(cur_metrics, metric)
            .ok_or_else(|| format!("{bench}/{metric}: gated metric absent from current run"))?;
        let limit = if higher_is_better {
            base * (1.0 - tolerance_pct / 100.0)
        } else {
            base * (1.0 + tolerance_pct / 100.0)
        };
        let regressed = if higher_is_better {
            cur < limit
        } else {
            cur > limit
        };
        checks.push(Check {
            metric: metric.clone(),
            baseline: base,
            current: cur,
            higher_is_better,
            tolerance_pct,
            regressed,
        });
    }
    Ok(checks)
}

/// Renders one comparison row for the report table.
pub fn render_check(bench: &str, check: &Check) -> String {
    format!(
        "{:<7} {:<40} {:>14.3} {:>14.3} {:>+9.1}% (tol {:>4.1}%, {} better)",
        if check.regressed { "FAIL" } else { "ok" },
        format!("{bench}/{}", check.metric),
        check.baseline,
        check.current,
        check.regression_pct(),
        check.tolerance_pct,
        if check.higher_is_better {
            "higher"
        } else {
            "lower"
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_file(virtual_us: f64, speedup: f64) -> Json {
        Json::object(vec![
            ("bench", Json::str("group_commit")),
            (
                "metrics",
                Json::object(vec![
                    ("grouped_commit_us", Json::Num(virtual_us)),
                    ("speedup", Json::Num(speedup)),
                ]),
            ),
            (
                "gate",
                Json::object(vec![
                    (
                        "grouped_commit_us",
                        Json::object(vec![
                            ("better", Json::str("lower")),
                            ("tolerance_pct", Json::Num(15.0)),
                        ]),
                    ),
                    (
                        "speedup",
                        Json::object(vec![
                            ("better", Json::str("higher")),
                            ("tolerance_pct", Json::Num(25.0)),
                        ]),
                    ),
                ]),
            ),
        ])
    }

    #[test]
    fn identical_runs_pass() {
        let base = bench_file(100.0, 3.3);
        let checks = compare(&base, &base).unwrap();
        assert_eq!(checks.len(), 2);
        assert!(checks.iter().all(|c| !c.regressed));
    }

    #[test]
    fn artificial_2x_virtual_time_regression_fails() {
        // The acceptance criterion: doubling the deterministic
        // virtual-time metric must trip the gate.
        let base = bench_file(100.0, 3.3);
        let bad = bench_file(200.0, 3.3);
        let checks = compare(&base, &bad).unwrap();
        let vt = checks
            .iter()
            .find(|c| c.metric == "grouped_commit_us")
            .unwrap();
        assert!(vt.regressed, "2x virtual time must regress: {vt:?}");
        assert!((vt.regression_pct() - 100.0).abs() < 1e-9);
        let speedup = checks.iter().find(|c| c.metric == "speedup").unwrap();
        assert!(!speedup.regressed);
    }

    #[test]
    fn within_tolerance_change_passes() {
        let base = bench_file(100.0, 3.3);
        let ok = bench_file(114.0, 2.6); // +14% time, speedup -21%: inside 15%/25%
        let checks = compare(&base, &ok).unwrap();
        assert!(checks.iter().all(|c| !c.regressed), "{checks:?}");
    }

    #[test]
    fn improvement_never_fails() {
        let base = bench_file(100.0, 3.3);
        let better = bench_file(40.0, 9.9);
        let checks = compare(&base, &better).unwrap();
        assert!(checks.iter().all(|c| !c.regressed));
        assert!(checks.iter().all(|c| c.regression_pct() < 0.0));
    }

    #[test]
    fn higher_is_better_gates_the_other_way() {
        let base = bench_file(100.0, 3.3);
        let slow = bench_file(100.0, 2.0); // speedup down 39% > 25% tolerance
        let checks = compare(&base, &slow).unwrap();
        let s = checks.iter().find(|c| c.metric == "speedup").unwrap();
        assert!(s.regressed);
    }

    #[test]
    fn missing_current_metric_is_an_error() {
        let base = bench_file(100.0, 3.3);
        let current = Json::object(vec![
            ("bench", Json::str("group_commit")),
            ("metrics", Json::object(vec![("speedup", Json::Num(3.3))])),
            ("gate", Json::object(vec![])),
        ]);
        let err = compare(&base, &current).unwrap_err();
        assert!(err.contains("absent from current run"), "{err}");
    }

    #[test]
    fn malformed_gate_is_an_error() {
        let base = Json::object(vec![
            ("bench", Json::str("x")),
            ("metrics", Json::object(vec![("m", Json::Num(1.0))])),
            (
                "gate",
                Json::object(vec![(
                    "m",
                    Json::object(vec![("better", Json::str("sideways"))]),
                )]),
            ),
        ]);
        assert!(compare(&base, &base).unwrap_err().contains("sideways"));
    }

    fn duration_file(replay_us: f64, tolerance: Option<f64>) -> Json {
        let mut gate_spec = vec![("class", Json::str("duration"))];
        if let Some(t) = tolerance {
            gate_spec.push(("tolerance_pct", Json::Num(t)));
        }
        Json::object(vec![
            ("bench", Json::str("redo_recovery")),
            (
                "metrics",
                Json::object(vec![("replay_virtual_us", Json::Num(replay_us))]),
            ),
            (
                "gate",
                Json::object(vec![("replay_virtual_us", Json::object(gate_spec))]),
            ),
        ])
    }

    #[test]
    fn duration_class_implies_lower_is_better_with_default_tolerance() {
        let base = duration_file(100.0, None);
        let checks = compare(&base, &base).unwrap();
        assert_eq!(checks.len(), 1);
        let c = &checks[0];
        assert!(!c.higher_is_better, "duration is lower-is-better");
        assert_eq!(c.tolerance_pct, 20.0, "default duration tolerance");
        assert!(!c.regressed);
    }

    #[test]
    fn doctored_2x_duration_regression_fails() {
        // The acceptance criterion for the class: a doctored 2x duration
        // must trip the gate, with and without an explicit tolerance.
        let base = duration_file(100.0, None);
        let bad = duration_file(200.0, None);
        let c = &compare(&base, &bad).unwrap()[0];
        assert!(c.regressed, "2x duration must regress: {c:?}");
        assert!((c.regression_pct() - 100.0).abs() < 1e-9);

        let base = duration_file(100.0, Some(50.0));
        let bad = duration_file(200.0, Some(50.0));
        let c = &compare(&base, &bad).unwrap()[0];
        assert_eq!(c.tolerance_pct, 50.0, "explicit tolerance overrides");
        assert!(c.regressed, "2x beats even a 50% tolerance");
    }

    #[test]
    fn duration_class_improvement_passes() {
        let base = duration_file(100.0, None);
        let fast = duration_file(40.0, None);
        let c = &compare(&base, &fast).unwrap()[0];
        assert!(!c.regressed);
        assert!(c.regression_pct() < 0.0);
    }

    #[test]
    fn unknown_gate_class_is_an_error() {
        let mut base = duration_file(100.0, None);
        if let Json::Object(fields) = &mut base {
            for (k, v) in fields.iter_mut() {
                if k == "gate" {
                    *v = Json::object(vec![(
                        "replay_virtual_us",
                        Json::object(vec![("class", Json::str("latency"))]),
                    )]);
                }
            }
        }
        let err = compare(&base, &base).unwrap_err();
        assert!(err.contains("unknown gate class"), "{err}");
    }

    #[test]
    fn ungated_metrics_are_ignored() {
        let base = bench_file(100.0, 3.3);
        // A current file with extra metrics passes untouched.
        let mut cur = bench_file(100.0, 3.3);
        if let Json::Object(fields) = &mut cur {
            for (k, v) in fields.iter_mut() {
                if k == "metrics" {
                    if let Json::Object(m) = v {
                        m.push(("wall_ms".to_string(), Json::Num(99999.0)));
                    }
                }
            }
        }
        let checks = compare(&base, &cur).unwrap();
        assert_eq!(checks.len(), 2);
    }
}
