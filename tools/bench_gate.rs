//! CI bench-regression gate.
//!
//! Usage:
//!
//! ```text
//! bench_gate --baselines results/baselines --current results [--only BENCH]
//! ```
//!
//! For every `BENCH_*.json` in the baselines directory, loads the file
//! of the same name from the current directory and evaluates the gates
//! declared in the baseline (see `perseas_tools::compare`). A missing
//! current file is a failure — a bench that silently stops emitting its
//! JSON would otherwise un-gate itself. Exits 1 on any regression.
//!
//! `--only NAME` (repeatable) restricts the run to the named benches —
//! for CI jobs that run one bench and gate just it — and fails if no
//! baseline matches, so a typo cannot silently gate nothing.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use perseas_obs::Json;
use perseas_tools::{compare, render_check};

struct Args {
    baselines: PathBuf,
    current: PathBuf,
    only: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut baselines = None;
    let mut current = None;
    let mut only = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baselines" => {
                baselines = Some(PathBuf::from(
                    args.next().ok_or("--baselines needs a value")?,
                ))
            }
            "--current" => {
                current = Some(PathBuf::from(args.next().ok_or("--current needs a value")?))
            }
            "--only" => only.push(args.next().ok_or("--only needs a bench name")?),
            "--help" | "-h" => {
                return Err(
                    "usage: bench_gate --baselines DIR --current DIR [--only BENCH]".to_string(),
                )
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args {
        baselines: baselines.ok_or("missing --baselines DIR")?,
        current: current.ok_or("missing --current DIR")?,
        only,
    })
}

fn load(path: &Path) -> Result<Json, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("parse {}: {e}", path.display()))
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let mut baseline_files: Vec<PathBuf> = std::fs::read_dir(&args.baselines)
        .map_err(|e| format!("read {}: {e}", args.baselines.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    baseline_files.sort();
    if !args.only.is_empty() {
        baseline_files.retain(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| args.only.iter().any(|o| n == format!("BENCH_{o}.json")))
        });
        if baseline_files.len() != args.only.len() {
            return Err(format!(
                "--only named {:?} but only {} matching baseline(s) exist in {}",
                args.only,
                baseline_files.len(),
                args.baselines.display()
            ));
        }
    }
    if baseline_files.is_empty() {
        return Err(format!(
            "no BENCH_*.json baselines in {}",
            args.baselines.display()
        ));
    }
    let mut failed = false;
    println!(
        "{:<7} {:<40} {:>14} {:>14} {:>10}",
        "", "bench/metric", "baseline", "current", "change"
    );
    for baseline_path in &baseline_files {
        let name = baseline_path.file_name().expect("filtered on file_name");
        let baseline = load(baseline_path)?;
        let bench = baseline
            .get("bench")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        let current_path = args.current.join(name);
        if !current_path.exists() {
            println!(
                "FAIL    {bench}: current run produced no {} (bench not run or stopped emitting JSON)",
                current_path.display()
            );
            failed = true;
            continue;
        }
        let current = load(&current_path)?;
        for check in compare(&baseline, &current)? {
            println!("{}", render_check(&bench, &check));
            failed |= check.regressed;
        }
    }
    Ok(failed)
}

fn main() -> ExitCode {
    match run() {
        Ok(false) => {
            println!("bench gate: all gated metrics within tolerance");
            ExitCode::SUCCESS
        }
        Ok(true) => {
            eprintln!("bench gate: regression detected (see FAIL rows above)");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench gate: {e}");
            ExitCode::FAILURE
        }
    }
}
