//! Deterministic interleaving harness for the concurrent engine.
//!
//! A schedule-driven executor runs N transactions step-by-step under an
//! explicit interleaving derived from a `simtime` RNG seed — no wall
//! clock, no OS threads — so every failure replays byte-for-byte from
//! the seed printed in its panic message. Each step the executor also
//! predicts, from its own model of the claim table, whether a
//! `set_range` must conflict, and with which holder; the engine has to
//! agree. Used by both the fixed-seed sweep (`tests/interleave.rs`) and
//! the property suite (`tests/concurrency_prop.rs`).

use perseas_core::{Perseas, PerseasConfig, RegionId, TxnError, TxnToken};
use perseas_rnram::SimRemote;
use perseas_sci::NodeMemory;
use perseas_simtime::{det_rng, DetRng};

use crate::reopen;

/// Length of the single shared region every schedule runs over.
pub const REGION_LEN: usize = 512;

/// The configuration every concurrent-engine test uses.
pub fn conc_cfg() -> PerseasConfig {
    PerseasConfig::default().with_concurrent(true)
}

/// Builds a published concurrent-engine instance with one `REGION_LEN`
/// region, returning `(db, region, mirror node)`.
pub fn build_concurrent() -> (Perseas<SimRemote>, RegionId, NodeMemory) {
    let backend = SimRemote::new("mirror");
    let node = backend.node().clone();
    let mut db = Perseas::init(vec![backend], conc_cfg()).unwrap();
    let r = db.malloc(REGION_LEN).unwrap();
    db.init_remote_db().unwrap();
    (db, r, node)
}

/// One planned transaction: claim-and-write each range in order, then
/// commit or abort.
#[derive(Debug, Clone)]
pub struct Plan {
    /// `(offset, len, fill byte)` per range, executed in order.
    pub ranges: Vec<(usize, usize, u8)>,
    /// Whether the plan ends in a commit (else a voluntary abort).
    pub commit: bool,
}

fn gen_plans(rng: &mut DetRng, n: usize) -> Vec<Plan> {
    (0..n)
        .map(|i| {
            let k = 1 + rng.gen_index(3);
            let ranges = (0..k)
                .map(|_| {
                    let off = rng.gen_index(REGION_LEN - 1);
                    let len = 1 + rng.gen_index((REGION_LEN - off).min(48));
                    (off, len, 1 + (i as u8 % 250))
                })
                .collect();
            Plan {
                ranges,
                commit: rng.gen_bool(0.8),
            }
        })
        .collect()
}

enum State {
    NotStarted,
    /// Open with `next` ranges already claimed and written.
    Open(TxnToken, usize),
    /// All ranges written; waiting at the commit point for a group.
    Ready(TxnToken),
    Done,
}

/// Runs one full schedule and returns `(recovered mirror image, committed
/// plan indices in commit order)`. Panics (with the seed) on any
/// divergence between the engine and the model: a mispredicted conflict,
/// a wrong holder, or final bytes that match no serial order of the
/// committed subset.
pub fn run_schedule(seed: u64, ntxns: usize) -> (Vec<u8>, Vec<usize>) {
    let mut rng = det_rng(seed);
    let plans = gen_plans(&mut rng, ntxns);
    let (mut db, r, node) = build_concurrent();

    let mut states: Vec<State> = (0..ntxns).map(|_| State::NotStarted).collect();
    // The harness's own claim table: intervals held by each still-open
    // transaction (claims persist through Ready until the group commits).
    let mut claims: Vec<Vec<(usize, usize)>> = vec![Vec::new(); ntxns];
    let mut committed: Vec<usize> = Vec::new();
    let mut ready: Vec<usize> = Vec::new();

    let flush = |db: &mut Perseas<SimRemote>,
                 ready: &mut Vec<usize>,
                 states: &mut [State],
                 claims: &mut [Vec<(usize, usize)>],
                 committed: &mut Vec<usize>| {
        let tokens: Vec<TxnToken> = ready
            .iter()
            .map(|&i| match states[i] {
                State::Ready(t) => t,
                _ => unreachable!("ready list holds Ready states"),
            })
            .collect();
        db.commit_group(&tokens)
            .unwrap_or_else(|e| panic!("seed {seed}: group commit failed: {e}"));
        for &i in ready.iter() {
            states[i] = State::Done;
            claims[i].clear();
            committed.push(i);
        }
        ready.clear();
    };

    loop {
        let active: Vec<usize> = states
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, State::NotStarted | State::Open(_, _)))
            .map(|(i, _)| i)
            .collect();
        if active.is_empty() {
            break;
        }
        if !ready.is_empty() && rng.gen_bool(0.3) {
            flush(
                &mut db,
                &mut ready,
                &mut states,
                &mut claims,
                &mut committed,
            );
        }
        let i = active[rng.gen_index(active.len())];
        match states[i] {
            State::NotStarted => {
                let token = db
                    .begin_concurrent()
                    .unwrap_or_else(|e| panic!("seed {seed}: begin failed: {e}"));
                states[i] = State::Open(token, 0);
            }
            State::Open(token, next) => {
                let (off, len, fill) = plans[i].ranges[next];
                // Model prediction: conflict iff any *other* live
                // transaction holds an overlapping claim.
                let predicted = claims
                    .iter()
                    .enumerate()
                    .find(|(j, held)| {
                        *j != i && held.iter().any(|&(s, e)| s < off + len && off < e)
                    })
                    .map(|(j, _)| j);
                match db.set_range_t(token, r, off, len) {
                    Ok(()) => {
                        assert!(
                            predicted.is_none(),
                            "seed {seed}: txn {i} claimed [{off}, {}) but the model \
                             says txn {:?} holds an overlap",
                            off + len,
                            predicted
                        );
                        db.write_t(token, r, off, &vec![fill; len])
                            .unwrap_or_else(|e| panic!("seed {seed}: write failed: {e}"));
                        claims[i].push((off, off + len));
                        if next + 1 == plans[i].ranges.len() {
                            if plans[i].commit {
                                states[i] = State::Ready(token);
                                ready.push(i);
                            } else {
                                db.abort_t(token)
                                    .unwrap_or_else(|e| panic!("seed {seed}: abort failed: {e}"));
                                claims[i].clear();
                                states[i] = State::Done;
                            }
                        } else {
                            states[i] = State::Open(token, next + 1);
                        }
                    }
                    Err(TxnError::Conflict { holder, .. }) => {
                        let predicted = predicted.unwrap_or_else(|| {
                            panic!(
                                "seed {seed}: txn {i} got a conflict on [{off}, {}) \
                                 but the model sees no overlapping claim",
                                off + len
                            )
                        });
                        // The engine reports *a* live overlapping holder;
                        // verify the reported one really overlaps.
                        let holder_idx = states
                            .iter()
                            .position(|s| {
                                matches!(s, State::Open(t, _) | State::Ready(t) if t.id() == holder)
                            })
                            .unwrap_or_else(|| {
                                panic!("seed {seed}: reported holder {holder} is not live")
                            });
                        assert!(
                            claims[holder_idx]
                                .iter()
                                .any(|&(s, e)| s < off + len && off < e),
                            "seed {seed}: reported holder txn {holder_idx} does not \
                             overlap [{off}, {}) (model predicted {predicted})",
                            off + len
                        );
                        // Losers abort; their claims must free immediately.
                        db.abort_t(token)
                            .unwrap_or_else(|e| panic!("seed {seed}: loser abort failed: {e}"));
                        claims[i].clear();
                        states[i] = State::Done;
                    }
                    Err(e) => panic!("seed {seed}: unexpected error: {e}"),
                }
            }
            State::Ready(_) | State::Done => unreachable!("not in active set"),
        }
    }
    if !ready.is_empty() {
        flush(
            &mut db,
            &mut ready,
            &mut states,
            &mut claims,
            &mut committed,
        );
    }

    // Serial oracle: the committed subset applied in commit order on a
    // single thread. Aborted and conflicted transactions contribute
    // nothing.
    let mut model = vec![0u8; REGION_LEN];
    for &i in &committed {
        for &(off, len, fill) in &plans[i].ranges {
            model[off..off + len].fill(fill);
        }
    }
    assert_eq!(
        db.region_snapshot(r).unwrap(),
        model,
        "seed {seed}: local image diverges from the serial oracle"
    );

    db.crash();
    let (db2, report) = Perseas::recover(reopen(&node), conc_cfg())
        .unwrap_or_else(|e| panic!("seed {seed}: recovery failed: {e}"));
    let recovered = db2.region_snapshot(r).unwrap();
    if recovered != model {
        let diffs: Vec<usize> = (0..REGION_LEN)
            .filter(|&i| recovered[i] != model[i])
            .collect();
        panic!(
            "seed {seed}: mirror bytes diverge from the serial oracle at {} byte(s) \
             (first [{}] = {} want {}; committed plans {:?}; report: rolled_back={:?} \
             records={} last_committed={})",
            diffs.len(),
            diffs[0],
            recovered[diffs[0]],
            model[diffs[0]],
            committed,
            report.rolled_back_txns,
            report.rolled_back_records,
            report.last_committed,
        );
    }
    (recovered, committed)
}
