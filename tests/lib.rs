//! Shared helpers for the cross-crate integration tests.
//!
//! The actual tests live in `tests/tests/*.rs`; this small library builds
//! the systems under test in the configurations the paper evaluates.

use perseas_baselines::{VistaSystem, WalConfig, WalSystem};
use perseas_core::{Perseas, PerseasConfig};
use perseas_rnram::SimRemote;
use perseas_sci::{NodeMemory, SciParams};
use perseas_simtime::SimClock;
use perseas_txn::TransactionalMemory;

/// Builds a PERSEAS instance whose library and SCI link share one clock,
/// returning the instance and the mirror's node memory (for crash tests).
pub fn perseas_with_node() -> (Perseas<SimRemote>, NodeMemory) {
    let clock = SimClock::new();
    let node = NodeMemory::new("it-mirror");
    let backend = SimRemote::with_parts(clock.clone(), node.clone(), SciParams::dolphin_1998());
    let db = Perseas::init_with_clock(vec![backend], PerseasConfig::default(), clock)
        .expect("init PERSEAS");
    (db, node)
}

/// A fresh backend handle onto `node`, as a recovering workstation opens.
pub fn reopen(node: &NodeMemory) -> SimRemote {
    SimRemote::with_parts(SimClock::new(), node.clone(), SciParams::dolphin_1998())
}

/// Every system of the paper's comparison, each on its own clock.
pub fn all_systems() -> Vec<(&'static str, Box<dyn TransactionalMemory>)> {
    let (perseas, _) = perseas_with_node();
    vec![
        ("perseas", Box::new(perseas) as Box<dyn TransactionalMemory>),
        (
            "rvm",
            Box::new(WalSystem::rvm(SimClock::new(), WalConfig::new())),
        ),
        (
            "rio-rvm",
            Box::new(WalSystem::rio_rvm(SimClock::new(), WalConfig::new())),
        ),
        ("vista", Box::new(VistaSystem::new(SimClock::new()))),
    ]
}

pub mod interleave;
pub mod shard_harness;
