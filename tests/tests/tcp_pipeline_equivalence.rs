//! Transport equivalence battery (ISSUE 4): random op sequences —
//! writes, vectored writes, reads, flushes, a mix of in-bounds and
//! out-of-bounds — executed on a pipelined and on a synchronous
//! [`TcpRemote`] must be observationally identical: byte-identical
//! segment images on the server and identical typed errors.
//!
//! The two clients run against *twin* servers (freshly bound, identical
//! empty state) rather than two segments of one server, so the first
//! malloc yields the same segment id on both sides and refusal messages
//! — which embed the segment id — compare exactly.

use proptest::prelude::*;

use perseas_rnram::server::{Server, ServerHandle};
use perseas_rnram::{PipelineConfig, RemoteMemory, TcpRemote};

const SEG_LEN: usize = 128;
/// Offsets range past the segment end so some ops are refused.
const OFF_SPAN: usize = SEG_LEN + 32;

#[derive(Debug, Clone)]
enum Op {
    Write { offset: usize, fill: u8, len: usize },
    WriteV { ranges: Vec<(usize, u8, usize)> },
    Read { offset: usize, len: usize },
    Flush,
}

fn arb_op() -> impl Strategy<Value = Op> {
    let range = (0usize..OFF_SPAN, any::<u8>(), 0usize..48);
    prop_oneof![
        3 => range.prop_map(|(offset, fill, len)| Op::Write { offset, fill, len }),
        2 => prop::collection::vec((0usize..OFF_SPAN, any::<u8>(), 0usize..24), 1..4)
            .prop_map(|ranges| Op::WriteV { ranges }),
        2 => (0usize..OFF_SPAN, 0usize..48).prop_map(|(offset, len)| Op::Read { offset, len }),
        1 => Just(Op::Flush),
    ]
}

/// Applies `ops` through `conn` against its own freshly allocated
/// segment, returning every read outcome in order and the multiset of
/// refusals (sorted), with any still-queued pipelined refusals drained
/// by flushing until clean.
#[allow(clippy::type_complexity)]
fn run(conn: &mut TcpRemote, ops: &[Op]) -> (Vec<Result<Vec<u8>, String>>, Vec<String>) {
    let seg = conn.remote_malloc(SEG_LEN, 7).unwrap();
    let mut reads = Vec::new();
    let mut errors = Vec::new();
    for op in ops {
        match op {
            Op::Write { offset, fill, len } => {
                if let Err(e) = conn.remote_write(seg.id, *offset, &vec![*fill; *len]) {
                    errors.push(e.to_string());
                }
            }
            Op::WriteV { ranges } => {
                let bufs: Vec<Vec<u8>> = ranges.iter().map(|&(_, f, l)| vec![f; l]).collect();
                let writes: Vec<_> = ranges
                    .iter()
                    .zip(&bufs)
                    .map(|(&(off, _, _), buf)| (seg.id, off, buf.as_slice()))
                    .collect();
                if let Err(e) = conn.remote_write_v(&writes) {
                    errors.push(e.to_string());
                }
            }
            Op::Read { offset, len } => {
                let mut buf = vec![0u8; *len];
                reads.push(match conn.remote_read(seg.id, *offset, &mut buf) {
                    Ok(()) => Ok(buf),
                    Err(e) => Err(e.to_string()),
                });
            }
            Op::Flush => {
                if let Err(e) = conn.flush() {
                    errors.push(e.to_string());
                }
            }
        }
    }
    // The pipelined side may still hold posted writes and queued
    // refusals; a barrier surfaces one refusal per call, so flush until
    // clean. The op count bounds the number of refusals.
    for _ in 0..=ops.len() {
        match conn.flush() {
            Ok(_) => break,
            Err(e) => errors.push(e.to_string()),
        }
    }
    assert_eq!(conn.in_flight(), 0, "drain left the window dirty");
    errors.sort();
    (reads, errors)
}

/// The segment image as the server holds it.
fn image(server: &ServerHandle) -> Vec<u8> {
    let seg = server.node().find_by_tag(7).expect("data segment");
    let mut buf = vec![0u8; seg.len];
    server.node().read(seg.id, 0, &mut buf).unwrap();
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// 256 random sequences: same ops, same server logic, one transport
    /// synchronous and one pipelined with a deliberately small window
    /// (so sequences wrap it and mid-stream drains happen) — images and
    /// typed errors must match exactly.
    #[test]
    fn pipelined_and_sync_transports_are_equivalent(
        ops in prop::collection::vec(arb_op(), 1..32),
        window in 1usize..6,
        byte_budget in 32usize..256,
    ) {
        let sync_server = Server::bind("twin-sync", "127.0.0.1:0").unwrap().start();
        let pipe_server = Server::bind("twin-pipe", "127.0.0.1:0").unwrap().start();

        let mut sync_conn = TcpRemote::connect(sync_server.addr()).unwrap();
        let mut pipe_conn = TcpRemote::connect_with(
            pipe_server.addr(),
            PipelineConfig { max_ops: window, max_bytes: byte_budget },
        )
        .unwrap();
        prop_assert!(!sync_conn.is_pipelined());
        prop_assert!(pipe_conn.is_pipelined());

        let (sync_reads, sync_errors) = run(&mut sync_conn, &ops);
        let (pipe_reads, pipe_errors) = run(&mut pipe_conn, &ops);

        // Reads are round trips in both modes and FIFO ordering makes
        // every posted write visible to later reads: outcomes must agree
        // op for op.
        prop_assert_eq!(sync_reads, pipe_reads);
        // Write refusals surface inline in sync mode and at barriers in
        // pipelined mode — the multiset must be identical.
        prop_assert_eq!(sync_errors, pipe_errors);
        // And the authoritative test: the bytes the servers hold.
        prop_assert_eq!(image(&sync_server), image(&pipe_server));

        sync_server.shutdown();
        pipe_server.shutdown();
    }
}
