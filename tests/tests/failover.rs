//! Mirror failover: degraded commits while a mirror is down, epoch
//! fencing of its stale image, backoff-paced reconnect probing, and
//! online re-mirroring back to full redundancy — including exhaustive
//! crash sweeps over the degraded-commit and resync paths.

use perseas_core::{
    FaultPlan, MetaHeader, MirrorHealth, Perseas, PerseasConfig, ReadReplica, RecordingTracer,
    RegionId, TraceEvent, TxnError, OFF_COMMIT, OFF_EPOCH,
};
use perseas_integration::reopen;
use perseas_rnram::{RemoteMemory, RemoteSegment, RnError, SimRemote};
use perseas_sci::{NodeMemory, SciLink, SciParams, SegmentId};
use perseas_simtime::SimClock;

fn setup2_with(
    cfg: PerseasConfig,
) -> (
    Perseas<SimRemote>,
    RegionId,
    NodeMemory,
    NodeMemory,
    SciLink,
) {
    let clock = SimClock::new();
    let a = SimRemote::with_parts(
        clock.clone(),
        NodeMemory::new("a"),
        SciParams::dolphin_1998(),
    );
    let b = SimRemote::with_parts(
        clock.clone(),
        NodeMemory::new("b"),
        SciParams::dolphin_1998(),
    );
    let (na, nb, lb) = (a.node().clone(), b.node().clone(), b.link().clone());
    let mut db = Perseas::init_with_clock(vec![a, b], cfg, clock).unwrap();
    let r = db.malloc(64).unwrap();
    db.init_remote_db().unwrap();
    (db, r, na, nb, lb)
}

fn setup2() -> (
    Perseas<SimRemote>,
    RegionId,
    NodeMemory,
    NodeMemory,
    SciLink,
) {
    setup2_with(PerseasConfig::default())
}

fn commit_fill<M: perseas_rnram::RemoteMemory>(
    db: &mut Perseas<M>,
    r: RegionId,
    at: usize,
    byte: u8,
) -> Result<(), TxnError> {
    db.begin_transaction()?;
    db.set_range(r, at, 8)?;
    db.write(r, at, &[byte; 8])?;
    db.commit_transaction()
}

/// Reads a mirror's metadata header and full region images straight off
/// its node memory, for byte-level comparisons between mirrors.
fn mirror_image(node: &NodeMemory) -> (MetaHeader, Vec<Vec<u8>>) {
    let mut backend = reopen(node);
    let meta = backend.connect_segment(perseas_core::META_TAG).unwrap();
    let mut image = vec![0u8; meta.len];
    backend.remote_read(meta.id, 0, &mut image).unwrap();
    let header = MetaHeader::decode(&image).unwrap();
    let mut regions = Vec::new();
    for i in 0..header.region_count as usize {
        let (seg_id, len) = perseas_core::decode_region_entry(&image, i).unwrap();
        let mut data = vec![0u8; len as usize];
        backend
            .remote_read(SegmentId::from_raw(seg_id), 0, &mut data)
            .unwrap();
        regions.push(data);
    }
    (header, regions)
}

#[test]
fn degraded_commit_survives_mirror_loss() {
    let (mut db, r, na, _nb, lb) = setup2();
    let tracer = RecordingTracer::new();
    db.set_tracer(Box::new(tracer.clone()));
    commit_fill(&mut db, r, 0, 1).unwrap();

    // Mirror b's link dies; the next transaction still commits.
    lb.cut_after_packets(0);
    commit_fill(&mut db, r, 8, 2).unwrap();
    assert_eq!(db.last_committed(), 2);
    assert_eq!(db.mirror_count(), 2);
    assert_eq!(db.healthy_mirror_count(), 1);
    assert_eq!(db.current_epoch(), 2, "one fence bumps the epoch once");

    // mirror_status reports the dead mirror.
    let status = db.mirror_status();
    assert_eq!(status[0].health, MirrorHealth::Healthy);
    assert_eq!(status[1].health, MirrorHealth::Down);
    assert_eq!(status[1].node, "b");
    assert_eq!(status[1].index, 1);

    // The failover is traced.
    let events = tracer.events();
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::MirrorDown { index: 1, .. })));
    assert!(events.contains(&TraceEvent::EpochBump { epoch: 2 }));
    assert!(events.contains(&TraceEvent::DegradedCommit {
        id: 2,
        healthy: 1,
        mirrors: 2
    }));

    // The degraded commit is durable on the survivor.
    db.crash();
    let (db2, report) = Perseas::recover(reopen(&na), PerseasConfig::default()).unwrap();
    assert_eq!(report.last_committed, 2);
    assert_eq!(report.epoch, 2);
    assert_eq!(&db2.region_snapshot(r).unwrap()[8..16], &[2; 8]);
}

#[test]
fn stale_epoch_mirror_is_fenced_out() {
    let (mut db, r, na, nb, lb) = setup2();
    commit_fill(&mut db, r, 0, 1).unwrap();
    lb.cut_after_packets(0);
    commit_fill(&mut db, r, 8, 2).unwrap();
    let fence_epoch = db.current_epoch();
    lb.heal(); // b is reachable again but holds a stale, fenced image

    // recover: the fenced mirror is refused at the survivor's epoch.
    let err = Perseas::recover(
        reopen(&nb),
        PerseasConfig::default().with_min_epoch(fence_epoch),
    )
    .unwrap_err();
    assert!(
        matches!(err, TxnError::FencedMirror { epoch: 1, required, .. } if required == fence_epoch),
        "got {err:?}"
    );

    // ReadReplica::attach: same refusal, clearly typed.
    let err = ReadReplica::attach(
        reopen(&nb),
        PerseasConfig::default().with_min_epoch(fence_epoch),
    )
    .unwrap_err();
    assert!(
        matches!(err, TxnError::FencedMirror { epoch: 1, .. }),
        "got {err:?}"
    );

    // The survivor passes the same admission bar.
    let (_, report) = Perseas::recover(
        reopen(&na),
        PerseasConfig::default().with_min_epoch(fence_epoch),
    )
    .unwrap();
    assert_eq!(report.last_committed, 2);

    // recover_best ranks by epoch first, so the fenced image loses even
    // without an explicit min_epoch.
    db.crash();
    let (best, report) = Perseas::recover_best(
        vec![reopen(&na), reopen(&nb)],
        PerseasConfig::default(),
        SimClock::new(),
    )
    .unwrap();
    assert_eq!(report.last_committed, 2);
    assert_eq!(&best.region_snapshot(r).unwrap()[8..16], &[2; 8]);
}

#[test]
fn probing_is_bounded_and_promotes_reachable_mirrors() {
    let (mut db, r, _na, nb, _lb) = setup2();
    commit_fill(&mut db, r, 0, 1).unwrap();
    nb.crash();
    commit_fill(&mut db, r, 8, 2).unwrap();
    assert_eq!(db.mirror_status()[1].health, MirrorHealth::Down);

    // While the node stays dead, probes keep failing and the attempt
    // counter climbs (pacing the exponential backoff); time for the
    // waits is charged to the shared virtual clock.
    let before = db.clock().now();
    assert_eq!(db.probe_down_mirrors(), Vec::<usize>::new());
    assert_eq!(db.probe_down_mirrors(), Vec::<usize>::new());
    assert_eq!(db.mirror_status()[1].probes, 2);
    assert!(db.clock().now() > before, "probe delays are charged");

    // The node reboots (empty memory). The next probe gets a real answer
    // and promotes the mirror to Suspect — reachable, but stale until it
    // is resynced.
    nb.restart();
    assert_eq!(db.probe_down_mirrors(), vec![1]);
    assert_eq!(db.mirror_status()[1].health, MirrorHealth::Suspect);
    assert_eq!(db.mirror_status()[1].probes, 0);
    // A Suspect mirror still gets no writes.
    commit_fill(&mut db, r, 16, 3).unwrap();
    assert_eq!(db.healthy_mirror_count(), 1);
}

#[test]
fn rejoin_restores_byte_identical_redundancy() {
    let (mut db, r, na, nb, _lb) = setup2();
    let tracer = RecordingTracer::new();
    db.set_tracer(Box::new(tracer.clone()));
    commit_fill(&mut db, r, 0, 1).unwrap();
    nb.crash();
    commit_fill(&mut db, r, 8, 2).unwrap();
    nb.restart();
    assert_eq!(db.probe_down_mirrors(), vec![1]);

    db.rejoin_mirror(1).unwrap();
    assert_eq!(db.mirror_status()[1].health, MirrorHealth::Healthy);
    assert_eq!(db.healthy_mirror_count(), 2);
    let epoch = db.current_epoch();
    assert!(tracer
        .events()
        .contains(&TraceEvent::MirrorRejoined { index: 1, epoch }));

    // Byte-identical redundancy: both mirrors carry the same epoch, the
    // same commit record, and the same region bytes.
    let (ha, ra) = mirror_image(&na);
    let (hb, rb) = mirror_image(&nb);
    assert_eq!(ha.epoch, epoch);
    assert_eq!(hb.epoch, epoch);
    assert_eq!(ha.last_committed, hb.last_committed);
    assert_eq!(ra, rb, "region images must match byte for byte");

    // The rejoined mirror serves writes again and alone sustains a later
    // recovery.
    commit_fill(&mut db, r, 16, 3).unwrap();
    db.crash();
    let (db2, report) = Perseas::recover(reopen(&nb), PerseasConfig::default()).unwrap();
    assert_eq!(report.last_committed, 3);
    let snap = db2.region_snapshot(r).unwrap();
    assert_eq!(&snap[0..8], &[1; 8]);
    assert_eq!(&snap[8..16], &[2; 8]);
    assert_eq!(&snap[16..24], &[3; 8]);
}

#[test]
fn rejoin_refuses_healthy_mirrors_and_bad_indices() {
    let (mut db, _r, _na, _nb, _lb) = setup2();
    assert!(matches!(db.rejoin_mirror(0), Err(TxnError::Unavailable(_))));
    assert!(matches!(db.rejoin_mirror(9), Err(TxnError::Unavailable(_))));
}

#[test]
fn every_crash_point_mid_degraded_commit_is_recoverable() {
    // Baseline run to count the degraded transaction's protocol steps.
    let (mut db, r, _na, nb, _lb) = setup2();
    commit_fill(&mut db, r, 0, 1).unwrap();
    nb.crash();
    db.set_fault_plan(FaultPlan::none()); // reset the step counter
    commit_fill(&mut db, r, 8, 2).unwrap();
    let total = db.steps_taken();
    assert!(total >= 3, "degraded txn still takes remote steps: {total}");

    let pre = |snap: &[u8]| snap[..8] == [1; 8] && snap[8..16] == [0; 8];
    let post = |snap: &[u8]| snap[..8] == [1; 8] && snap[8..16] == [2; 8];

    for crash_at in 0..=total {
        let (mut db, r, na, nb, _lb) = setup2();
        commit_fill(&mut db, r, 0, 1).unwrap();
        nb.crash();
        db.set_fault_plan(FaultPlan::crash_after(crash_at));
        let res = commit_fill(&mut db, r, 8, 2);

        // Only the survivor can serve recovery; it must hold exactly the
        // pre- or post-state, and the post-state if the commit was
        // reported durable.
        let (db2, report) = Perseas::recover(reopen(&na), PerseasConfig::default())
            .unwrap_or_else(|e| panic!("crash_at={crash_at}: survivor unrecoverable: {e}"));
        let snap = db2.region_snapshot(r).unwrap();
        assert!(
            pre(&snap) || post(&snap),
            "crash_at={crash_at}: survivor holds a partial state"
        );
        if res.is_ok() {
            assert!(post(&snap), "crash_at={crash_at}: durable txn lost");
            assert_eq!(report.last_committed, 2);
        }
    }
}

#[test]
fn every_crash_point_mid_resync_is_recoverable() {
    // Scenario: txn 1 on both mirrors, mirror b dies and loses its
    // memory, txn 2 commits degraded, b reboots empty, b rejoins.
    let build = || {
        let (mut db, r, na, nb, lb) = setup2();
        commit_fill(&mut db, r, 0, 1).unwrap();
        nb.crash();
        commit_fill(&mut db, r, 8, 2).unwrap();
        nb.restart();
        assert_eq!(db.probe_down_mirrors(), vec![1]);
        (db, r, na, nb, lb)
    };

    let (mut db, _r, _na, _nb, _lb) = build();
    db.set_fault_plan(FaultPlan::none()); // reset the step counter
    db.rejoin_mirror(1).unwrap();
    let total = db.steps_taken();
    assert!(
        total >= 5,
        "resync streams meta, undo, and regions: {total}"
    );

    for crash_at in 0..total {
        let (mut db, r, na, nb, _lb) = build();
        db.set_fault_plan(FaultPlan::crash_after(crash_at));
        let res = db.rejoin_mirror(1);
        assert!(res.is_err(), "crash_at={crash_at}: plan must fire");

        // Whatever half-state the crash left on the rejoiner, recovery
        // from the pair must converge on the degraded-committed state —
        // the half-resynced image can never outrank the survivor.
        let (db2, report) = Perseas::recover_best(
            vec![reopen(&na), reopen(&nb)],
            PerseasConfig::default(),
            SimClock::new(),
        )
        .unwrap_or_else(|e| panic!("crash_at={crash_at}: unrecoverable: {e}"));
        assert_eq!(report.last_committed, 2, "crash_at={crash_at}");
        let snap = db2.region_snapshot(r).unwrap();
        assert_eq!(&snap[0..8], &[1; 8], "crash_at={crash_at}");
        assert_eq!(&snap[8..16], &[2; 8], "crash_at={crash_at}");
    }
}

#[test]
fn replica_attached_to_survivor_sees_degraded_commits() {
    let (mut db, r, na, _nb, lb) = setup2();
    commit_fill(&mut db, r, 0, 1).unwrap();
    lb.cut_after_packets(0);
    commit_fill(&mut db, r, 8, 2).unwrap();

    // Attach mid-failover: the replica follows the surviving mirror.
    let mut replica = ReadReplica::attach(reopen(&na), PerseasConfig::default()).unwrap();
    assert_eq!(replica.last_committed(), 2);
    assert_eq!(replica.epoch(), db.current_epoch());
    let mut buf = [0u8; 8];
    replica.read(r, 8, &mut buf).unwrap();
    assert_eq!(buf, [2; 8]);

    // Further degraded commits become visible on refresh.
    commit_fill(&mut db, r, 16, 3).unwrap();
    assert_eq!(replica.refresh().unwrap(), 3);
    replica.read(r, 16, &mut buf).unwrap();
    assert_eq!(buf, [3; 8]);
}

/// Delegating backend that moves the mirror's commit record forward on
/// every commit-record read, so a replica's snapshot never settles:
/// perpetual snapshot contention without any transport failure.
#[derive(Debug)]
struct ContentiousRemote {
    inner: SimRemote,
    node: NodeMemory,
    meta: Option<SegmentId>,
}

impl RemoteMemory for ContentiousRemote {
    fn remote_malloc(&mut self, len: usize, tag: u64) -> Result<RemoteSegment, RnError> {
        self.inner.remote_malloc(len, tag)
    }
    fn remote_free(&mut self, seg: SegmentId) -> Result<(), RnError> {
        self.inner.remote_free(seg)
    }
    fn remote_write(&mut self, seg: SegmentId, offset: usize, data: &[u8]) -> Result<(), RnError> {
        self.inner.remote_write(seg, offset, data)
    }
    fn remote_read(
        &mut self,
        seg: SegmentId,
        offset: usize,
        buf: &mut [u8],
    ) -> Result<(), RnError> {
        if self.meta == Some(seg) && offset == OFF_COMMIT && buf.len() == 8 {
            let mut current = [0u8; 8];
            self.node.read(seg, OFF_COMMIT, &mut current).unwrap();
            let next = u64::from_le_bytes(current) + 1;
            self.node
                .write(seg, OFF_COMMIT, &next.to_le_bytes())
                .unwrap();
        }
        self.inner.remote_read(seg, offset, buf)
    }
    fn connect_segment(&mut self, tag: u64) -> Result<RemoteSegment, RnError> {
        let seg = self.inner.connect_segment(tag)?;
        self.meta = Some(seg.id);
        Ok(seg)
    }
    fn segment_info(&mut self, seg: SegmentId) -> Result<RemoteSegment, RnError> {
        self.inner.segment_info(seg)
    }
    fn node_name(&self) -> String {
        self.inner.node_name()
    }
}

#[test]
fn tcp_mirror_failover_and_rejoin() {
    use perseas_rnram::server::Server;
    use perseas_rnram::{BackoffPolicy, ReconnectingRemote, TcpRemote};

    let sa = Server::bind("ta", "127.0.0.1:0").unwrap().start();
    let sb = Server::bind("tb", "127.0.0.1:0").unwrap().start();
    let addr_b = sb.addr();
    let node_b = sb.node().clone();

    // Reconnecting backends so the rejoin can find the restarted server;
    // no backoff sleeps to keep the test fast.
    let a = ReconnectingRemote::with_backoff(sa.addr(), 2, BackoffPolicy::none()).unwrap();
    let b = ReconnectingRemote::with_backoff(addr_b, 2, BackoffPolicy::none()).unwrap();
    let cfg = PerseasConfig::default().with_probe_backoff(BackoffPolicy::none());
    let mut db = Perseas::init(vec![a, b], cfg).unwrap();
    let r = db.malloc(64).unwrap();
    db.init_remote_db().unwrap();
    commit_fill(&mut db, r, 0, 1).unwrap();

    // Kill mirror b: the database keeps committing, degraded.
    sb.shutdown();
    commit_fill(&mut db, r, 8, 2).unwrap();
    assert_eq!(db.last_committed(), 2);
    assert_eq!(db.mirror_status()[1].health, MirrorHealth::Down);
    assert_eq!(db.healthy_mirror_count(), 1);

    // While the server is down, probes fail and count up.
    assert_eq!(db.probe_down_mirrors(), Vec::<usize>::new());
    assert!(db.mirror_status()[1].probes >= 1);

    // The server restarts on the same address with its memory intact
    // (UPS-backed node, software-only restart): probe, then resync.
    let sb2 = Server::with_node(node_b, addr_b).unwrap().start();
    assert_eq!(db.probe_down_mirrors(), vec![1]);
    assert_eq!(db.mirror_status()[1].health, MirrorHealth::Suspect);
    db.rejoin_mirror(1).unwrap();
    assert_eq!(db.healthy_mirror_count(), 2);

    // Full redundancy: a fresh connection to the rejoined mirror alone
    // recovers everything, including a post-rejoin commit.
    commit_fill(&mut db, r, 16, 3).unwrap();
    drop(db);
    let fresh = TcpRemote::connect(sb2.addr()).unwrap();
    let (db2, report) = Perseas::recover(fresh, PerseasConfig::default()).unwrap();
    assert_eq!(report.last_committed, 3);
    let snap = db2.region_snapshot(r).unwrap();
    assert_eq!(&snap[0..8], &[1; 8]);
    assert_eq!(&snap[8..16], &[2; 8]);
    assert_eq!(&snap[16..24], &[3; 8]);
    sb2.shutdown();
    sa.shutdown();
}

#[test]
fn failed_commit_leaves_the_transaction_abortable() {
    // Strict quorum, so losing one of two mirrors mid-commit fails the
    // transaction *before* the durability point.
    let (mut db, r, na, nb, _lb) = setup2_with(PerseasConfig::default().with_commit_quorum(2));
    commit_fill(&mut db, r, 0, 1).unwrap();
    let (_, before) = mirror_image(&na);

    db.begin_transaction().unwrap();
    db.set_range(r, 8, 8).unwrap();
    db.write(r, 8, &[2; 8]).unwrap();
    nb.crash(); // dies between the undo push and the commit
    let err = db.commit_transaction().unwrap_err();
    assert!(matches!(err, TxnError::Unavailable(_)), "got {err:?}");

    // The failed commit leaves the transaction open — the instance must
    // not be wedged with the phase still InTxn but the state gone.
    assert!(db.in_transaction());
    db.abort_transaction().unwrap();
    assert!(!db.in_transaction());
    assert_eq!(&db.region_snapshot(r).unwrap()[8..16], &[0; 8]);

    // The surviving mirror had already received the aborted bytes; the
    // abort must push the before-images back, or the next degraded
    // commit would bake them in as committed state.
    let (_, after) = mirror_image(&na);
    assert_eq!(before, after, "aborted bytes left on the survivor");
}

/// Delegating backend that refuses the packet-atomic commit-record write
/// once armed: a mirror dying exactly at the durability point, after
/// every earlier commit phase succeeded.
#[derive(Debug)]
struct CommitRecordFirewall {
    inner: SimRemote,
    meta: Option<SegmentId>,
    armed: std::sync::Arc<std::sync::atomic::AtomicBool>,
}

impl CommitRecordFirewall {
    fn new(name: &str, clock: SimClock) -> Self {
        CommitRecordFirewall {
            inner: SimRemote::with_parts(clock, NodeMemory::new(name), SciParams::dolphin_1998()),
            meta: None,
            armed: std::sync::Arc::default(),
        }
    }
}

impl RemoteMemory for CommitRecordFirewall {
    fn remote_malloc(&mut self, len: usize, tag: u64) -> Result<RemoteSegment, RnError> {
        let seg = self.inner.remote_malloc(len, tag)?;
        if tag == perseas_core::META_TAG {
            self.meta = Some(seg.id);
        }
        Ok(seg)
    }
    fn remote_free(&mut self, seg: SegmentId) -> Result<(), RnError> {
        self.inner.remote_free(seg)
    }
    fn remote_write(&mut self, seg: SegmentId, offset: usize, data: &[u8]) -> Result<(), RnError> {
        if self.armed.load(std::sync::atomic::Ordering::Relaxed)
            && self.meta == Some(seg)
            && offset == OFF_COMMIT
        {
            return Err(RnError::Io(std::io::Error::other(
                "NIC died at the commit record",
            )));
        }
        self.inner.remote_write(seg, offset, data)
    }
    fn remote_read(
        &mut self,
        seg: SegmentId,
        offset: usize,
        buf: &mut [u8],
    ) -> Result<(), RnError> {
        self.inner.remote_read(seg, offset, buf)
    }
    fn connect_segment(&mut self, tag: u64) -> Result<RemoteSegment, RnError> {
        self.inner.connect_segment(tag)
    }
    fn segment_info(&mut self, seg: SegmentId) -> Result<RemoteSegment, RnError> {
        self.inner.segment_info(seg)
    }
    fn node_name(&self) -> String {
        self.inner.node_name()
    }
}

#[test]
fn durability_point_quorum_failure_is_commit_in_doubt() {
    // Strict quorum again, but this time the mirror fails the 8-byte
    // commit-record write itself. By then the record already reached
    // the survivor, so the transaction IS durable there — the library
    // must complete the commit and say so, not claim unavailability
    // (a client retry on "unavailable" would double-apply).
    let clock = SimClock::new();
    let a = CommitRecordFirewall::new("a", clock.clone());
    let b = CommitRecordFirewall::new("b", clock.clone());
    let na = a.inner.node().clone();
    let arm_b = b.armed.clone();
    let cfg = PerseasConfig::default().with_commit_quorum(2);
    let mut db = Perseas::init_with_clock(vec![a, b], cfg, clock).unwrap();
    let r = db.malloc(64).unwrap();
    db.init_remote_db().unwrap();
    commit_fill(&mut db, r, 0, 1).unwrap();

    arm_b.store(true, std::sync::atomic::Ordering::Relaxed);
    let err = commit_fill(&mut db, r, 8, 2).unwrap_err();
    assert!(
        matches!(
            err,
            TxnError::CommitInDoubt {
                id: 2,
                healthy: 1,
                quorum: 2
            }
        ),
        "got {err:?}"
    );
    assert!(err.to_string().contains("do not retry"), "{err}");

    // Committed locally: applied, counted, and the transaction closed.
    assert!(!db.in_transaction());
    assert_eq!(db.last_committed(), 2);
    assert_eq!(&db.region_snapshot(r).unwrap()[8..16], &[2; 8]);

    // And durable: the survivor replays it as committed.
    db.crash();
    let (db2, report) = Perseas::recover(reopen(&na), PerseasConfig::default()).unwrap();
    assert_eq!(report.last_committed, 2);
    assert_eq!(&db2.region_snapshot(r).unwrap()[8..16], &[2; 8]);
}

#[test]
fn failed_rejoins_leak_no_segments_on_the_rejoiner() {
    // Control run: the footprint a clean resync leaves on the rejoiner.
    let expected = {
        let (mut db, r, _na, nb, _lb) = setup2();
        commit_fill(&mut db, r, 0, 1).unwrap();
        nb.crash();
        commit_fill(&mut db, r, 8, 2).unwrap();
        nb.restart();
        assert_eq!(db.probe_down_mirrors(), vec![1]);
        db.rejoin_mirror(1).unwrap();
        nb.used_bytes()
    };
    assert!(expected > 0);

    // Sweep a link cut across every packet of the resync stream: the
    // segments a failed attempt allocated must be reclaimed — directly,
    // or via the orphan list when the free itself raced the dead link —
    // so repeated failures never eat the rejoiner's memory.
    for cut in 0..24u64 {
        let (mut db, r, na, nb, lb) = setup2();
        commit_fill(&mut db, r, 0, 1).unwrap();
        nb.crash();
        commit_fill(&mut db, r, 8, 2).unwrap();
        nb.restart();
        assert_eq!(db.probe_down_mirrors(), vec![1]);

        lb.cut_after_packets(cut);
        let res = db.rejoin_mirror(1);
        lb.heal();
        if let Err(e) = res {
            assert!(matches!(e, TxnError::Unavailable(_)), "cut={cut}: {e:?}");
            assert_eq!(db.probe_down_mirrors(), vec![1], "cut={cut}");
            db.rejoin_mirror(1).unwrap();
        }
        assert_eq!(db.healthy_mirror_count(), 2, "cut={cut}");
        assert_eq!(nb.used_bytes(), expected, "cut={cut}: leaked segments");

        // The recovered redundancy is real, not just accounted for.
        let (ha, ra) = mirror_image(&na);
        let (hb, rb) = mirror_image(&nb);
        assert_eq!(ha.epoch, hb.epoch, "cut={cut}");
        assert_eq!(ha.last_committed, hb.last_committed, "cut={cut}");
        assert_eq!(ra, rb, "cut={cut}: region images diverge");
    }
}

#[test]
fn remove_mirror_fences_survivors_before_the_membership_change() {
    let (mut db, r, _na, nb, _lb) = setup2();
    let tracer = RecordingTracer::new();
    db.set_tracer(Box::new(tracer.clone()));
    commit_fill(&mut db, r, 0, 1).unwrap();

    // Retire the (healthy) mirror b.
    let backend = db.remove_mirror(1).unwrap();
    assert_eq!(db.mirror_count(), 1);
    assert_eq!(db.current_epoch(), 2);

    // The survivors moved to the new epoch *before* the removal took
    // effect...
    let events = tracer.events();
    let bump = events
        .iter()
        .position(|e| matches!(e, TraceEvent::EpochBump { epoch: 2 }))
        .expect("epoch bump traced");
    let removed = events
        .iter()
        .position(|e| matches!(e, TraceEvent::MirrorRemoved { index: 1 }))
        .expect("removal traced");
    assert!(bump < removed, "fence must precede the membership change");

    // ...and the leaver was excluded from the fence: its image keeps the
    // old epoch, permanently outranked by the survivors.
    drop(backend);
    let (hb, _) = mirror_image(&nb);
    assert_eq!(hb.epoch, 1);

    // A crash during the fence leaves the membership unchanged — no
    // mirror silently dropped without the survivors being fenced.
    let (mut db, _r, _na, _nb, _lb) = setup2();
    let tracer = RecordingTracer::new();
    db.set_tracer(Box::new(tracer.clone()));
    db.set_fault_plan(FaultPlan::crash_after(0));
    let err = db.remove_mirror(1).unwrap_err();
    assert_eq!(err, TxnError::Crashed);
    assert_eq!(db.mirror_count(), 2);
    assert!(!tracer
        .events()
        .iter()
        .any(|e| matches!(e, TraceEvent::MirrorRemoved { .. })));
}

#[test]
fn snapshot_contention_is_a_distinct_error() {
    let (mut db, r, na, _nb, _lb) = setup2();
    commit_fill(&mut db, r, 0, 1).unwrap();

    let backend = ContentiousRemote {
        inner: reopen(&na),
        node: na.clone(),
        meta: None,
    };
    let err = ReadReplica::attach(backend, PerseasConfig::default().with_snapshot_retries(3))
        .unwrap_err();
    assert!(
        matches!(err, TxnError::SnapshotContention { attempts: 3 }),
        "contention must not be reported as a transport failure: {err:?}"
    );
    assert!(err.to_string().contains("retry"), "{err}");
}

/// Like [`ContentiousRemote`], but after `fence_at - 1` header reads it
/// lowers the mirror's epoch below the replica's admission floor: the
/// refresh burns retries on contention first, then hits the fence.
#[derive(Debug)]
struct ContentiousThenFencedRemote {
    inner: SimRemote,
    node: NodeMemory,
    meta: Option<SegmentId>,
    header_reads: usize,
    fence_at: usize,
}

impl RemoteMemory for ContentiousThenFencedRemote {
    fn remote_malloc(&mut self, len: usize, tag: u64) -> Result<RemoteSegment, RnError> {
        self.inner.remote_malloc(len, tag)
    }
    fn remote_free(&mut self, seg: SegmentId) -> Result<(), RnError> {
        self.inner.remote_free(seg)
    }
    fn remote_write(&mut self, seg: SegmentId, offset: usize, data: &[u8]) -> Result<(), RnError> {
        self.inner.remote_write(seg, offset, data)
    }
    fn remote_read(
        &mut self,
        seg: SegmentId,
        offset: usize,
        buf: &mut [u8],
    ) -> Result<(), RnError> {
        if self.meta == Some(seg) {
            if offset == 0 && buf.len() > 8 {
                // A full header read opens each refresh attempt.
                self.header_reads += 1;
                if self.header_reads >= self.fence_at {
                    self.node
                        .write(seg, OFF_EPOCH, &0u64.to_le_bytes())
                        .unwrap();
                }
            } else if offset == OFF_COMMIT && buf.len() == 8 {
                // The commit-record re-check closes it: bump the record so
                // the cut looks fuzzy. Also covers the vectored path, which
                // degrades to per-range `remote_read` calls here.
                let mut current = [0u8; 8];
                self.node.read(seg, OFF_COMMIT, &mut current).unwrap();
                let next = u64::from_le_bytes(current) + 1;
                self.node
                    .write(seg, OFF_COMMIT, &next.to_le_bytes())
                    .unwrap();
            }
        }
        self.inner.remote_read(seg, offset, buf)
    }
    fn connect_segment(&mut self, tag: u64) -> Result<RemoteSegment, RnError> {
        let seg = self.inner.connect_segment(tag)?;
        self.meta = Some(seg.id);
        Ok(seg)
    }
    fn segment_info(&mut self, seg: SegmentId) -> Result<RemoteSegment, RnError> {
        self.inner.segment_info(seg)
    }
    fn node_name(&self) -> String {
        self.inner.node_name()
    }
}

#[test]
fn fence_after_contention_reports_the_final_attempt_count() {
    let (mut db, r, na, _nb, _lb) = setup2();
    commit_fill(&mut db, r, 0, 1).unwrap();

    // Two attempts lose to contention; the third finds the mirror fenced.
    let backend = ContentiousThenFencedRemote {
        inner: reopen(&na),
        node: na.clone(),
        meta: None,
        header_reads: 0,
        fence_at: 3,
    };
    let cfg = PerseasConfig::default()
        .with_snapshot_retries(5)
        .with_min_epoch(1);
    let err = ReadReplica::attach(backend, cfg).unwrap_err();
    assert!(
        matches!(
            err,
            TxnError::FencedMirror {
                epoch: 0,
                required: 1,
                attempts: 3,
            }
        ),
        "a fence diagnosed after retries must carry the final attempt count, \
         not the first: {err:?}"
    );
}
