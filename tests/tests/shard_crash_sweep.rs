//! Exhaustive crash-point sweep over the cross-shard commit protocol.
//!
//! A fixed cross-shard transaction touching all three shards of a
//! 3-shard cluster is crashed after every protocol step of every shard
//! in turn (prepare records, intent slots, the decision record, the
//! commit fan-out, and the lazy clears), then the *whole* cluster is
//! recovered through [`ShardedPerseas::recover`]. Every recovery must
//! land on the serial oracle's all-in or all-out image — the same state
//! on every shard — and whenever `commit_g` reported success, on
//! all-in. A second sweep cuts each shard's SCI link after every packet
//! instead, so torn intent and decision records (rejected by their
//! slot CRCs) are exercised too.

use perseas_core::{FaultPlan, PerseasConfig, RegionId, ShardedPerseas, TxnError};
use perseas_integration::shard_harness::{build_sharded, pre_image, reopen_sharded, ShardCluster};
use perseas_rnram::SimRemote;

const K: usize = 3;

/// The swept transaction: one range per shard, all three shards
/// touched, so the full prepare → intent → decision → fan-out pipeline
/// runs with shard 0 as home.
fn run_xtxn(db: &mut ShardedPerseas<SimRemote>, regions: &[RegionId]) -> Result<(), TxnError> {
    let g = db.begin_global()?;
    for (s, &r) in regions.iter().enumerate() {
        let (off, len) = range_of(s);
        db.set_range_g(g, r, off, len)?;
        db.write_g(g, r, off, &vec![0xC1 + s as u8; len])?;
    }
    db.commit_g(g)
}

/// Shard `s`'s written range — distinct offsets and lengths per shard
/// so a partial application is visible.
fn range_of(s: usize) -> (usize, usize) {
    (8 + 16 * s, 16 + 8 * s)
}

fn post_image(s: usize) -> Vec<u8> {
    let mut img = pre_image(s);
    let (off, len) = range_of(s);
    img[off..off + len].fill(0xC1 + s as u8);
    img
}

/// Recovers the whole cluster and classifies it: `true` all-in, `false`
/// all-out. Panics on a mixed or partial state.
fn recovered_state(cluster: &ShardCluster, regions: &[RegionId], ctx: &str) -> bool {
    let (db2, report) = ShardedPerseas::recover(reopen_sharded(cluster), PerseasConfig::default())
        .unwrap_or_else(|e| panic!("{ctx}: cluster unrecoverable: {e}"));
    assert_eq!(report.shards.len(), K, "{ctx}: wrong shard count");
    let mut verdicts = Vec::with_capacity(K);
    for (s, &r) in regions.iter().enumerate() {
        let img = db2.region_snapshot(r).unwrap();
        let verdict = if img == post_image(s) {
            true
        } else if img == pre_image(s) {
            false
        } else {
            panic!("{ctx}: shard {s} holds a partial state");
        };
        verdicts.push(verdict);
    }
    assert!(
        verdicts.iter().all(|&v| v == verdicts[0]),
        "{ctx}: atomicity violated — per-shard verdicts {verdicts:?}"
    );
    verdicts[0]
}

/// Crash shard `shard` after every protocol step of the cross-shard
/// commit (0 = before any step, through one past its last step), and
/// demand all-in/all-out on every shard after whole-cluster recovery.
fn sweep_shard(shard: usize) {
    // Count the shard's protocol steps across one clean run.
    let (mut db, regions, _cluster) = build_sharded(K, 2);
    let before = db.steps_taken(shard);
    run_xtxn(&mut db, &regions).unwrap();
    let steps = db.steps_taken(shard) - before;
    assert!(
        steps >= 4,
        "shard {shard} took only {steps} steps — the sweep would be vacuous"
    );

    for crash_at in 0..=steps + 1 {
        let ctx = format!("shard={shard} crash_at={crash_at}");
        let (mut db, regions, cluster) = build_sharded(K, 2);
        db.set_fault_plan(shard, FaultPlan::crash_after(crash_at));
        let res = run_xtxn(&mut db, &regions);
        if crash_at > steps {
            res.as_ref()
                .unwrap_or_else(|e| panic!("{ctx}: outlived plan failed: {e}"));
        }
        drop(db);
        let all_in = recovered_state(&cluster, &regions, &ctx);
        match &res {
            Ok(()) => assert!(all_in, "{ctx}: durable cross-shard txn lost"),
            // The decision record is the commit point: recovery decides,
            // but it must decide the same way everywhere (checked above).
            Err(TxnError::CommitInDoubt { .. }) | Err(TxnError::Crashed) => {}
            Err(TxnError::Unavailable(_)) => assert!(
                !all_in,
                "{ctx}: presumed-aborted txn resurfaced after recovery"
            ),
            Err(e) => panic!("{ctx}: unexpected error {e}"),
        }
    }
}

#[test]
fn crashing_shard_0_at_every_step_stays_atomic() {
    sweep_shard(0); // home shard: holds the decision record
}

#[test]
fn crashing_shard_1_at_every_step_stays_atomic() {
    sweep_shard(1);
}

#[test]
fn crashing_shard_2_at_every_step_stays_atomic() {
    sweep_shard(2);
}

/// A crash *point* is one remote operation, but the SCI link can die
/// mid-message, delivering a packet-aligned prefix — a torn prepare
/// record, intent slot, or decision record. Cut each shard's (single)
/// link after every packet of the protocol: slot CRCs must make every
/// torn coordination record read as absent, and recovery must still be
/// all-or-nothing across the cluster.
#[test]
fn torn_packets_on_any_shard_stay_atomic() {
    for shard in 0..K {
        // Packets this shard's link carries across one clean run.
        let (mut db, regions, cluster) = build_sharded(K, 1);
        let stats = cluster.links[shard][0].stats();
        let before = stats.packets64 + stats.packets16;
        run_xtxn(&mut db, &regions).unwrap();
        let stats = cluster.links[shard][0].stats();
        let packets = stats.packets64 + stats.packets16 - before;
        assert!(packets >= 4, "shard {shard} sent only {packets} packets");

        for cut_at in 0..=packets {
            let ctx = format!("shard={shard} cut_at={cut_at}");
            let (mut db, regions, cluster) = build_sharded(K, 1);
            cluster.links[shard][0].cut_after_packets(cut_at);
            let res = run_xtxn(&mut db, &regions);
            drop(db);
            let all_in = recovered_state(&cluster, &regions, &ctx);
            if res.is_ok() {
                assert!(all_in, "{ctx}: durable cross-shard txn lost");
            }
        }
    }
}
