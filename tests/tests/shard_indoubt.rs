//! In-doubt resolution regressions for the cross-shard commit.
//!
//! The staged phase methods (`prepare_parts` → `write_intents` →
//! `write_decision` → `fan_out_commits`) let these tests park a
//! cross-shard transaction at an exact protocol boundary and kill the
//! coordinator there. Recovery must then resolve the prepared,
//! in-doubt parts from durable state alone: no decision record means
//! presumed abort on every shard; a durable decision record means the
//! commit is finished on every shard — even when a shard's mirror set
//! is degraded — and the [`ShardRecoveryReport`] must account for every
//! resolution.
//!
//! [`ShardRecoveryReport`]: perseas_core::ShardRecoveryReport

use perseas_core::{GlobalToken, PerseasConfig, RegionId, ShardedPerseas, TxnError};
use perseas_integration::shard_harness::{build_sharded, pre_image, reopen_sharded};
use perseas_rnram::SimRemote;

const K: usize = 3;
const FILL: u8 = 0xE7;

/// Opens a cross-shard transaction writing `[FILL; 24]` at offset 16 of
/// every shard's region and returns it still open.
fn stage_writes(db: &mut ShardedPerseas<SimRemote>, regions: &[RegionId]) -> GlobalToken {
    let g = db.begin_global().unwrap();
    for &r in regions {
        db.set_range_g(g, r, 16, 24).unwrap();
        db.write_g(g, r, 16, &[FILL; 24]).unwrap();
    }
    g
}

fn post_image(s: usize) -> Vec<u8> {
    let mut img = pre_image(s);
    img[16..40].fill(FILL);
    img
}

fn assert_all(db: &ShardedPerseas<SimRemote>, regions: &[RegionId], image: fn(usize) -> Vec<u8>) {
    for (s, &r) in regions.iter().enumerate() {
        assert_eq!(
            db.region_snapshot(r).unwrap(),
            image(s),
            "shard {s} holds the wrong image"
        );
    }
}

/// Coordinator death after every part is prepared and every intent slot
/// is durable, but before the decision record: presumed abort. Recovery
/// rolls the prepared parts back on all three shards and reports one
/// resolved abort per shard.
#[test]
fn death_before_the_decision_aborts_everywhere() {
    let (mut db, regions, cluster) = build_sharded(K, 2);
    let g = stage_writes(&mut db, &regions);
    db.prepare_parts(g).unwrap();
    db.write_intents(g).unwrap();
    db.crash();

    let (db2, report) =
        ShardedPerseas::recover(reopen_sharded(&cluster), PerseasConfig::default()).unwrap();
    assert_eq!(
        report.resolved_aborts,
        vec![1; K],
        "one in-doubt part per shard"
    );
    assert_eq!(report.resolved_commits, vec![0; K]);
    assert_all(&db2, &regions, pre_image);
}

/// Coordinator death after the decision record is durable but before
/// any commit record of the fan-out: the transaction *is* committed.
/// Recovery finishes the fan-out on all three shards and reports one
/// resolved commit per shard.
#[test]
fn death_after_the_decision_commits_everywhere() {
    let (mut db, regions, cluster) = build_sharded(K, 2);
    let g = stage_writes(&mut db, &regions);
    db.prepare_parts(g).unwrap();
    db.write_intents(g).unwrap();
    db.write_decision(g).unwrap();
    db.crash();

    let (db2, report) =
        ShardedPerseas::recover(reopen_sharded(&cluster), PerseasConfig::default()).unwrap();
    assert_eq!(
        report.resolved_commits,
        vec![1; K],
        "one in-doubt part per shard"
    );
    assert_eq!(report.resolved_aborts, vec![0; K]);
    assert_all(&db2, &regions, post_image);
}

/// Same death point, but the cluster recovers degraded: the home shard
/// lost one mirror and another shard lost the other. The decision
/// record and the prepared parts live on every healthy mirror, so the
/// surviving ones are enough to finish the commit.
#[test]
fn degraded_shards_still_resolve_from_the_decision_record() {
    let (mut db, regions, cluster) = build_sharded(K, 2);
    let g = stage_writes(&mut db, &regions);
    db.prepare_parts(g).unwrap();
    db.write_intents(g).unwrap();
    db.write_decision(g).unwrap();
    db.crash();

    let mut backends = reopen_sharded(&cluster);
    backends[0].remove(1); // home shard: one mirror gone
    backends[2].remove(0); // another shard: the other mirror gone
    let (db2, report) = ShardedPerseas::recover(backends, PerseasConfig::default()).unwrap();
    assert_eq!(report.resolved_commits, vec![1; K]);
    assert_all(&db2, &regions, post_image);
}

/// And the mirror image: a degraded cluster with *no* decision record
/// must still abort everywhere — losing a mirror never flips a
/// presumed abort into a commit.
#[test]
fn degraded_shards_still_presume_abort_without_a_decision() {
    let (mut db, regions, cluster) = build_sharded(K, 2);
    let g = stage_writes(&mut db, &regions);
    db.prepare_parts(g).unwrap();
    db.write_intents(g).unwrap();
    db.crash();

    let mut backends = reopen_sharded(&cluster);
    backends[1].remove(1);
    let (db2, report) = ShardedPerseas::recover(backends, PerseasConfig::default()).unwrap();
    assert_eq!(report.resolved_aborts, vec![1; K]);
    assert_all(&db2, &regions, pre_image);
}

/// A recovered database is fully operational: the resolved transaction
/// has released its claims and slots, so a fresh cross-shard commit
/// over the same ranges goes through cleanly.
#[test]
fn recovery_releases_the_resolved_transactions_slots() {
    let (mut db, regions, cluster) = build_sharded(K, 2);
    let g = stage_writes(&mut db, &regions);
    db.prepare_parts(g).unwrap();
    db.write_intents(g).unwrap();
    db.write_decision(g).unwrap();
    db.crash();

    let (mut db2, _) =
        ShardedPerseas::recover(reopen_sharded(&cluster), PerseasConfig::default()).unwrap();
    let g2 = db2.begin_global().unwrap();
    for &r in &regions {
        db2.set_range_g(g2, r, 16, 24).unwrap();
        db2.write_g(g2, r, 16, &[0x11; 24]).unwrap();
    }
    db2.commit_g(g2).unwrap();
    for &r in &regions {
        let mut buf = [0u8; 24];
        db2.read_g(r, 16, &mut buf).unwrap();
        assert_eq!(buf, [0x11; 24]);
    }
}

/// The staged methods refuse to run out of order — a regression net for
/// the stage machine the crash-point tests rely on.
#[test]
fn phases_enforce_their_order() {
    let (mut db, regions, _cluster) = build_sharded(K, 2);
    let g = stage_writes(&mut db, &regions);
    assert!(matches!(db.write_intents(g), Err(TxnError::Unavailable(_))));
    assert!(matches!(
        db.write_decision(g),
        Err(TxnError::Unavailable(_))
    ));
    assert!(matches!(
        db.fan_out_commits(g),
        Err(TxnError::Unavailable(_))
    ));
    db.prepare_parts(g).unwrap();
    assert!(matches!(db.prepare_parts(g), Err(TxnError::Unavailable(_))));
    db.write_intents(g).unwrap();
    db.write_decision(g).unwrap();
    db.fan_out_commits(g).unwrap();
}

/// A stale intent slot left over from a transaction that completed
/// before the crash must not be re-resolved: the lazy slot clears are
/// advisory, and recovery's committed-ness check is what protects them.
#[test]
fn completed_transactions_are_not_re_resolved() {
    let (mut db, regions, cluster) = build_sharded(K, 2);
    let g = stage_writes(&mut db, &regions);
    db.commit_g(g).unwrap();
    db.crash();

    let (db2, report) =
        ShardedPerseas::recover(reopen_sharded(&cluster), PerseasConfig::default()).unwrap();
    assert_eq!(report.resolved_commits, vec![0; K]);
    assert_eq!(report.resolved_aborts, vec![0; K]);
    assert_all(&db2, &regions, post_image);
}
