//! Threaded soak of the session multiplexer (ISSUE 8): real OS threads
//! drive many [`MuxSession`]s over a handful of shared sockets at once —
//! the TSan target of the CI `mux-matrix` job. Every thread's writes
//! must land intact in its own lane, session churn (create/drop with
//! windows in flight) must never corrupt a neighbour, and the server's
//! session gauge must return to zero.

use std::sync::{Arc, Barrier};
use std::thread;

use perseas_rnram::server::Server;
use perseas_rnram::{RemoteMemory, SessionMux};

const THREADS: usize = 8;
const ROUNDS: usize = 25;
const LANE: usize = 32;

#[test]
fn threaded_sessions_soak_their_own_lanes() {
    let registry = perseas_obs::Registry::new();
    let server = Server::bind("soak", "127.0.0.1:0")
        .unwrap()
        .with_metrics(&registry)
        .start();

    // Two shared sockets; threads alternate between them.
    let muxes = [
        SessionMux::connect(server.addr()).unwrap(),
        SessionMux::connect(server.addr()).unwrap(),
    ];

    // One shared segment, one disjoint lane per thread; plus a scratch
    // segment the churn sessions scribble on (its content is not
    // asserted — their writes race by design).
    let mut setup = muxes[0].session();
    let seg = setup.remote_malloc(THREADS * LANE, 7).unwrap();
    let scratch = setup.remote_malloc(THREADS * 8, 8).unwrap();
    drop(setup);

    let gate = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let mut s = muxes[t % muxes.len()].session();
            let churn_mux = muxes[(t + 1) % muxes.len()].clone();
            let gate = Arc::clone(&gate);
            thread::spawn(move || {
                gate.wait();
                for round in 0..ROUNDS {
                    let fill = (t * ROUNDS + round) as u8;
                    // Posted writes across the lane, confirmed at a
                    // barrier, then read back through the same session.
                    for chunk in 0..LANE / 8 {
                        s.remote_write(seg.id, t * LANE + chunk * 8, &[fill; 8])
                            .unwrap();
                    }
                    s.flush().unwrap();
                    let mut got = vec![0u8; LANE];
                    s.remote_read(seg.id, t * LANE, &mut got).unwrap();
                    assert_eq!(got, vec![fill; LANE], "thread {t} lane torn");

                    // Churn: a short-lived session on the *other* socket
                    // dies with a write still in flight.
                    if round % 5 == 0 {
                        let mut ephemeral = churn_mux.session();
                        ephemeral
                            .remote_write(scratch.id, t * 8, &[fill; 8])
                            .unwrap();
                        drop(ephemeral);
                    }
                }
                s
            })
        })
        .collect();

    let sessions: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Final sweep: every lane holds its thread's last fill.
    let mut check = muxes[1].session();
    for t in 0..THREADS {
        let mut got = vec![0u8; LANE];
        check.remote_read(seg.id, t * LANE, &mut got).unwrap();
        assert_eq!(
            got,
            vec![(t * ROUNDS + ROUNDS - 1) as u8; LANE],
            "thread {t} final lane wrong"
        );
    }

    // Closing every session drains the server's gauge to the one
    // checker session still open.
    drop(sessions);
    check.ping().unwrap(); // forces the SessClose frames to be consumed
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
    loop {
        let text = registry.render();
        let line = text
            .lines()
            .find(|l| l.starts_with("perseas_server_sessions "))
            .unwrap()
            .to_string();
        if line == "perseas_server_sessions 1" {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "session gauge stuck: {line}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    drop(check);
    server.shutdown();
}
