//! Backpressure and admission-control fault injection (ISSUE 8): a slow
//! server with a deliberately tiny shared window pool must queue to its
//! bound, refuse the overflow with typed `Overloaded` errors (never
//! applying the refused ops), drain cleanly once the pressure lifts, and
//! account for all of it in the `perseas-obs` registry. Plus the
//! retry-layer rule: a mux socket that dies with sessions in flight
//! surfaces `Unavailable` through [`ReconnectingRemote`] instead of
//! silently re-dialing, and `Server::shutdown` stays prompt with a
//! thousand live sessions.

use std::time::{Duration, Instant};

use perseas_rnram::server::Server;
use perseas_rnram::{
    AdmissionConfig, PipelineConfig, ReconnectingRemote, RemoteMemory, RnError, SessionMux,
};

/// Extracts the value of an unlabelled metric from a Prometheus
/// exposition.
fn metric_value(text: &str, name: &str) -> i64 {
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("{name} missing from exposition"))
        .trim()
        .parse()
        .unwrap()
}

#[test]
fn overflow_is_refused_typed_and_never_applied() {
    let registry = perseas_obs::Registry::new();
    let server = Server::bind("tiny-pool", "127.0.0.1:0")
        .unwrap()
        .with_metrics(&registry)
        .with_admission(AdmissionConfig {
            max_inflight: 2,
            max_queue: 3,
        })
        .with_request_latency(Duration::from_millis(120))
        .start();
    let mux = SessionMux::connect(server.addr()).unwrap();
    let mut s = mux.session_with(PipelineConfig {
        max_ops: 64,
        max_bytes: 1 << 20,
    });

    let seg = s.remote_malloc(64, 0).unwrap();
    // Burst 12 one-byte writes, each marking its own offset, into a pool
    // that holds at most 2 in flight + 3 queued. The overflow must be
    // refused without being applied.
    const BURST: usize = 12;
    for i in 0..BURST {
        s.remote_write(seg.id, i, &[0xEE]).unwrap();
    }
    let mut refused = 0;
    loop {
        match s.flush() {
            Ok(_) => break,
            Err(RnError::Overloaded) => refused += 1,
            Err(e) => panic!("expected typed Overloaded, got {e}"),
        }
    }
    assert!(refused > 0, "burst of {BURST} should overflow 2+3 slots");
    assert!(
        refused <= BURST - 2,
        "at least the admitted head must have been applied"
    );

    // Refused ops were never applied; admitted ops all were. The image
    // must account for exactly BURST - refused markers.
    let mut image = [0u8; BURST];
    s.remote_read(seg.id, 0, &mut image).unwrap();
    let applied = image.iter().filter(|&&b| b == 0xEE).count();
    assert_eq!(
        applied,
        BURST - refused,
        "applied + refused must cover the burst exactly: {image:?}"
    );

    // Drain-after-relief: with the queue empty again the same session
    // posts and flushes cleanly.
    s.remote_write(seg.id, 0, &[0x11]).unwrap();
    s.flush().unwrap();
    let mut one = [0u8; 1];
    s.remote_read(seg.id, 0, &mut one).unwrap();
    assert_eq!(one, [0x11]);

    // The registry accounted for the episode, and the transient gauges
    // return to zero once the pool goes idle. The server decrements them
    // just *after* the response bytes reach the socket, so give its
    // thread a moment to win that race.
    let deadline = Instant::now() + Duration::from_secs(2);
    let text = loop {
        let text = registry.render();
        let idle = metric_value(&text, "perseas_server_mux_queue_depth") == 0
            && metric_value(&text, "perseas_server_mux_inflight") == 0;
        if idle || Instant::now() > deadline {
            break text;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(
        metric_value(&text, "perseas_server_admission_refusals_total"),
        refused as i64
    );
    assert_eq!(metric_value(&text, "perseas_server_mux_queue_depth"), 0);
    assert_eq!(metric_value(&text, "perseas_server_mux_inflight"), 0);
    assert_eq!(metric_value(&text, "perseas_server_sessions"), 1);

    drop(s);
    server.shutdown();
}

#[test]
fn a_starved_session_does_not_block_its_neighbours_for_good() {
    // Two sessions share one refused-heavy socket: refusals land only in
    // the lane that earned them.
    let server = Server::bind("fair", "127.0.0.1:0")
        .unwrap()
        .with_admission(AdmissionConfig {
            max_inflight: 1,
            max_queue: 2,
        })
        .with_request_latency(Duration::from_millis(100))
        .start();
    let mux = SessionMux::connect(server.addr()).unwrap();
    let mut greedy = mux.session();
    let mut modest = mux.session();
    let seg = greedy.remote_malloc(64, 0).unwrap();

    for i in 0..8usize {
        greedy.remote_write(seg.id, i, &[1]).unwrap();
    }
    // One modest write rides the same saturated pool; it may be refused
    // or admitted, but always with a typed outcome, and the session
    // stays usable either way.
    modest.remote_write(seg.id, 32, &[2]).unwrap();
    let mut modest_refusals = 0;
    loop {
        match modest.flush() {
            Ok(_) => break,
            Err(RnError::Overloaded) => modest_refusals += 1,
            Err(e) => panic!("modest lane saw {e}"),
        }
    }
    assert!(modest_refusals <= 1, "one post risks at most one refusal");
    let mut greedy_refusals = 0;
    loop {
        match greedy.flush() {
            Ok(_) => break,
            Err(RnError::Overloaded) => greedy_refusals += 1,
            Err(e) => panic!("greedy lane saw {e}"),
        }
    }
    assert!(greedy_refusals > 0, "the 8-deep burst must overflow 1+2");

    // Both lanes work after relief.
    modest.remote_write(seg.id, 33, &[3]).unwrap();
    modest.flush().unwrap();
    greedy.remote_write(seg.id, 34, &[4]).unwrap();
    greedy.flush().unwrap();
    server.shutdown();
}

#[test]
fn lost_mux_window_surfaces_unavailable_not_a_silent_retry() {
    // A slow, tight server guarantees the shutdown drops queued writes:
    // the client's posted window dies with the socket.
    let server = Server::bind("doomed", "127.0.0.1:0")
        .unwrap()
        .with_admission(AdmissionConfig {
            max_inflight: 1,
            max_queue: 8,
        })
        .with_request_latency(Duration::from_millis(200))
        .start();
    let node = server.node().clone();
    let addr = server.addr();

    let mut r = ReconnectingRemote::connect_mux(addr, 5).unwrap();
    let seg = r.remote_malloc(64, 1).unwrap();
    for i in 0..4usize {
        r.remote_write(seg.id, i, &[9]).unwrap();
    }
    assert!(r.in_flight() > 0);

    // Shutdown drops the queued writes (only already-applied responses
    // are drained), then a fully working replacement accepts on the same
    // address — so a silent retry would *succeed*. Unavailable is proof
    // the lost window surfaced instead.
    server.shutdown();
    let server2 = Server::with_node(node, addr).unwrap().start();

    let err = r.segment_info(seg.id).unwrap_err();
    assert!(err.is_unavailable(), "lost window surfaces: {err}");
    assert_eq!(r.in_flight(), 0, "the loss was reported and cleared");

    // With the loss on record, the wrapper re-dials the shared mux for
    // new work.
    assert_eq!(r.segment_info(seg.id).unwrap().id, seg.id);
    server2.shutdown();
}

#[test]
fn shutdown_with_a_thousand_live_sessions_is_prompt() {
    let registry = perseas_obs::Registry::new();
    let server = Server::bind("crowded", "127.0.0.1:0")
        .unwrap()
        .with_metrics(&registry)
        .start();

    // 1000 live sessions over 4 shared sockets, each touched once so the
    // server has really opened it.
    let muxes: Vec<SessionMux> = (0..4)
        .map(|_| SessionMux::connect(server.addr()).unwrap())
        .collect();
    let mut scratch = muxes[0].session();
    let seg = scratch.remote_malloc(8, 99).unwrap();
    drop(scratch);
    let mut sessions = Vec::with_capacity(1000);
    for mux in &muxes {
        for _ in 0..250 {
            let mut s = mux.session();
            // Posted, so opening 1000 sessions doesn't serialize on
            // round trips; the flush below confirms the whole batch.
            s.remote_write(seg.id, 0, &[1]).unwrap();
            sessions.push(s);
        }
    }
    for s in &mut sessions {
        s.flush().unwrap();
    }
    assert_eq!(
        metric_value(&registry.render(), "perseas_server_sessions"),
        1000
    );

    // The old implementation needed a dummy connection to unblock its
    // accept loop and could serve one request after the stop flag; the
    // event loop must go down promptly with every session still open.
    let t0 = Instant::now();
    server.shutdown();
    let elapsed = t0.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "shutdown with 1000 live sessions took {elapsed:?}"
    );
    drop(sessions); // best-effort SessClose against the dead socket: no panic
}
