//! Crash and eviction sweeps for snapshot reads: the version store is
//! volatile, so every failure mode must surface as a *typed* error —
//! [`TxnError::Crashed`] on a crashed instance, [`TxnError::SnapshotTooOld`]
//! for tokens that predate a recovery or lost their versions to budget
//! pressure — and never as torn or stale bytes.

use perseas_core::{FaultPlan, Perseas, PerseasConfig, RegionId, TxnError};
use perseas_integration::reopen;
use perseas_rnram::SimRemote;
use perseas_sci::NodeMemory;

const LEN: usize = 256;

fn cfg() -> PerseasConfig {
    PerseasConfig::default().with_mvcc(true)
}

fn setup(c: PerseasConfig) -> (Perseas<SimRemote>, RegionId, NodeMemory) {
    let backend = SimRemote::new("snap-crash");
    let node = backend.node().clone();
    let mut db = Perseas::init(vec![backend], c).unwrap();
    let r = db.malloc(LEN).unwrap();
    db.init_remote_db().unwrap();
    (db, r, node)
}

fn base_txn(db: &mut Perseas<SimRemote>, r: RegionId) {
    db.begin_transaction().unwrap();
    db.set_range(r, 0, 64).unwrap();
    db.write(r, 0, &[0xA1; 64]).unwrap();
    db.commit_transaction().unwrap();
}

fn second_txn(db: &mut Perseas<SimRemote>, r: RegionId) -> Result<(), TxnError> {
    db.begin_transaction()?;
    db.set_range(r, 32, 64)?;
    db.write(r, 32, &[0xB2; 64])?;
    db.commit_transaction()
}

/// Kills the commit at every protocol step while a snapshot is open. On
/// every crash point: reads on the dead instance fail `Crashed`, the
/// recovered instance refuses the stale token typed, and a fresh
/// snapshot on it serves the recovered image exactly.
#[test]
fn crash_at_every_commit_step_invalidates_open_snapshots_typed() {
    // Count the protocol steps of one clean run of the second
    // transaction alone (the sweep arms its plan after the base commit).
    let (mut db, r, _) = setup(cfg());
    base_txn(&mut db, r);
    let before = db.steps_taken();
    second_txn(&mut db, r).unwrap();
    let total = db.steps_taken() - before;
    assert!(total > 0, "commit must take protocol steps");

    for crash_at in 0..=total + 1 {
        let (mut db, r, node) = setup(cfg());
        base_txn(&mut db, r);
        let snap = db.begin_snapshot().unwrap();
        let pinned = db.region_snapshot(r).unwrap();

        db.set_fault_plan(FaultPlan::crash_after(crash_at));
        let res = second_txn(&mut db, r);
        if crash_at >= total {
            // The plan outlived the transaction: the snapshot still
            // serves its pinned pre-transaction image, exactly.
            res.unwrap_or_else(|e| panic!("crash_at={crash_at}: outlived plan failed: {e}"));
            assert_eq!(
                db.read_range_s(snap, r, 0, LEN).unwrap(),
                pinned,
                "crash_at={crash_at}: snapshot must pin the pre-commit image"
            );
            db.end_snapshot(snap);
            continue;
        }
        assert!(
            res.is_err(),
            "crash_at={crash_at} of {total}: the fault plan must kill the commit"
        );

        // Dead instance: typed refusal, and the caller's buffer is
        // untouched — never torn bytes.
        let mut buf = [0xEEu8; 8];
        assert!(
            matches!(db.read_s(snap, r, 0, &mut buf), Err(TxnError::Crashed)),
            "crash_at={crash_at}: reads on a crashed instance fail typed"
        );
        assert_eq!(buf, [0xEE; 8], "failed reads leave the buffer untouched");

        // Recovered instance: the stale token names a snapshot whose
        // volatile versions died with the process — typed refusal again.
        let (mut db2, _) = Perseas::recover(reopen(&node), cfg())
            .unwrap_or_else(|e| panic!("crash_at={crash_at}: recovery failed: {e}"));
        let mut buf = [0xEEu8; 8];
        assert!(
            matches!(
                db2.read_s(snap, r, 0, &mut buf),
                Err(TxnError::SnapshotTooOld { .. })
            ),
            "crash_at={crash_at}: recovered instances refuse pre-crash tokens"
        );
        assert_eq!(buf, [0xEE; 8]);

        // And a fresh snapshot on the recovered instance is exact.
        let image = db2.region_snapshot(r).unwrap();
        let fresh = db2.begin_snapshot().unwrap();
        assert_eq!(
            db2.read_range_s(fresh, r, 0, LEN).unwrap(),
            image,
            "crash_at={crash_at}: post-recovery snapshots serve the recovered image"
        );
        db2.end_snapshot(fresh);
    }
}

/// Same sweep through the concurrent engine's group commit: two
/// transactions commit as one group at every crash point while a
/// snapshot is open. The group lands all-or-nothing and the stale token
/// is refused typed either way.
#[test]
fn group_commit_crash_sweep_with_open_snapshot() {
    let conc = cfg().with_concurrent(true);
    let run_group = |db: &mut Perseas<SimRemote>, r: RegionId| -> Result<(), TxnError> {
        let t1 = db.begin_concurrent()?;
        let t2 = db.begin_concurrent()?;
        db.set_range_t(t1, r, 0, 32)?;
        db.write_t(t1, r, 0, &[0xC1; 32])?;
        db.set_range_t(t2, r, 128, 32)?;
        db.write_t(t2, r, 128, &[0xC2; 32])?;
        db.commit_group(&[t1, t2])
    };

    let (mut db, r, _) = setup(conc);
    let before = db.steps_taken();
    run_group(&mut db, r).unwrap();
    let total = db.steps_taken() - before;

    for crash_at in 0..=total {
        let (mut db, r, node) = setup(conc);
        let snap = db.begin_snapshot().unwrap();
        db.set_fault_plan(FaultPlan::crash_after(crash_at));
        let res = run_group(&mut db, r);

        let (db2, _) = Perseas::recover(reopen(&node), conc)
            .unwrap_or_else(|e| panic!("crash_at={crash_at}: recovery failed: {e}"));
        let image = db2.region_snapshot(r).unwrap();
        let pre = vec![0u8; LEN];
        let mut post = vec![0u8; LEN];
        post[0..32].fill(0xC1);
        post[128..160].fill(0xC2);
        assert!(
            image == pre || image == post,
            "crash_at={crash_at}: the group must land all-or-nothing"
        );
        if res.is_ok() {
            assert_eq!(image, post, "crash_at={crash_at}: durable group missing");
        }
        assert!(
            matches!(
                db2.read_range_s(snap, r, 0, LEN),
                Err(TxnError::SnapshotTooOld { .. })
            ),
            "crash_at={crash_at}: stale tokens refused after group-commit crash"
        );
    }
}

/// Commits past the byte budget while a snapshot is open: the eviction
/// raises the reconstruction floor past the snapshot, whose next read
/// fails typed — the caller's buffer is never filled with wrong bytes.
#[test]
fn byte_budget_eviction_fails_pinned_snapshots_typed() {
    let (mut db, r, _) = setup(cfg().with_version_budget(64, 1024));
    base_txn(&mut db, r);

    let snap = db.begin_snapshot().unwrap();
    let pinned = db.region_snapshot(r).unwrap();

    // A small commit fits the budget: the snapshot still serves its
    // exact image.
    db.begin_transaction().unwrap();
    db.set_range(r, 0, 16).unwrap();
    db.write(r, 0, &[0xD1; 16]).unwrap();
    db.commit_transaction().unwrap();
    assert_eq!(db.read_range_s(snap, r, 0, LEN).unwrap(), pinned);
    assert!(db.version_store_bytes() <= 64);

    // Blow the budget: 3 x 32-byte before-images cannot all stay.
    for i in 0..3 {
        db.begin_transaction().unwrap();
        db.set_range(r, i * 32, 32).unwrap();
        db.write(r, i * 32, &[0xD2 + i as u8; 32]).unwrap();
        db.commit_transaction().unwrap();
    }
    let mut buf = [0xEEu8; 8];
    match db.read_s(snap, r, 0, &mut buf) {
        Err(TxnError::SnapshotTooOld {
            read_seq,
            floor_seq,
        }) => {
            assert!(
                floor_seq > read_seq,
                "the floor rose past the snapshot's pin"
            );
        }
        other => panic!("expected SnapshotTooOld, got {other:?}"),
    }
    assert_eq!(buf, [0xEE; 8], "evicted snapshots never yield bytes");
    // Every later read fails the same way — the failure is sticky.
    assert!(db.read_range_s(snap, r, 0, 8).is_err());
    db.end_snapshot(snap);

    // A snapshot pinned above the new floor is unaffected.
    let fresh = db.begin_snapshot().unwrap();
    assert_eq!(
        db.read_range_s(fresh, r, 0, LEN).unwrap(),
        db.region_snapshot(r).unwrap()
    );
    db.end_snapshot(fresh);
    assert_eq!(db.version_store_bytes(), 0);
}

/// The entry budget behaves like the byte budget: more retained commits
/// than slots evicts oldest-first past the pinned snapshot.
#[test]
fn entry_budget_eviction_fails_pinned_snapshots_typed() {
    let (mut db, r, _) = setup(cfg().with_version_budget(1 << 20, 2));
    base_txn(&mut db, r);
    let snap = db.begin_snapshot().unwrap();

    for i in 0..3u8 {
        db.begin_transaction().unwrap();
        db.set_range(r, 8 * i as usize, 8).unwrap();
        db.write(r, 8 * i as usize, &[i; 8]).unwrap();
        db.commit_transaction().unwrap();
    }
    assert!(
        matches!(
            db.read_range_s(snap, r, 0, 8),
            Err(TxnError::SnapshotTooOld { .. })
        ),
        "entry pressure evicts past the open snapshot"
    );
    db.end_snapshot(snap);
}
