//! Exhaustive crash-point sweep over the commit pipeline, on BOTH the
//! legacy per-range path and the batched vectored path.
//!
//! A fixed multi-range, multi-region workload is crashed after every
//! possible protocol step `k` (from 0 to past the last step), then
//! recovered from each surviving mirror independently. Every recovery
//! must observe either the full pre-state or the full post-state
//! (atomicity), and whenever the commit reported success, every mirror
//! must hold the post-state (durability). On the batched path a crash
//! point is a whole vectored write, so recovery must also cope with
//! partially applied batches (torn-prefix delivery inside one message).

use perseas_core::{FaultPlan, Perseas, PerseasConfig, RegionId, TxnError};
use perseas_integration::reopen;
use perseas_rnram::SimRemote;
use perseas_sci::{NodeMemory, SciParams};
use perseas_simtime::SimClock;

const LEN_A: usize = 256;
const LEN_B: usize = 128;

fn setup2(batched: bool) -> (Perseas<SimRemote>, [RegionId; 2], NodeMemory, NodeMemory) {
    let clock = SimClock::new();
    let a = SimRemote::with_parts(
        clock.clone(),
        NodeMemory::new("a"),
        SciParams::dolphin_1998(),
    );
    let b = SimRemote::with_parts(
        clock.clone(),
        NodeMemory::new("b"),
        SciParams::dolphin_1998(),
    );
    let (na, nb) = (a.node().clone(), b.node().clone());
    let cfg = PerseasConfig::default().with_batched_commit(batched);
    let mut db = Perseas::init_with_clock(vec![a, b], cfg, clock).unwrap();
    let ra = db.malloc(LEN_A).unwrap();
    let rb = db.malloc(LEN_B).unwrap();
    let (pa, pb) = pre();
    db.write(ra, 0, &pa).unwrap();
    db.write(rb, 0, &pb).unwrap();
    db.init_remote_db().unwrap();
    (db, [ra, rb], na, nb)
}

/// One multi-range transaction touching both regions with overlapping and
/// adjacent declarations (so coalescing and alignment widening both kick
/// in).
fn run_txn(db: &mut Perseas<SimRemote>, r: [RegionId; 2]) -> Result<(), TxnError> {
    db.begin_transaction()?;
    db.set_range(r[0], 0, 40)?;
    db.write(r[0], 0, &[0xA1; 40])?;
    db.set_range(r[0], 32, 32)?; // overlaps the first declaration
    db.write(r[0], 32, &[0xA2; 32])?;
    db.set_ranges(&[(r[0], 100, 24), (r[1], 0, 16), (r[1], 16, 8)])?;
    db.write(r[0], 100, &[0xA3; 24])?;
    db.write(r[1], 0, &[0xB1; 16])?;
    db.write(r[1], 16, &[0xB2; 8])?;
    db.set_range(r[0], 200, 8)?;
    db.write(r[0], 200, &[0xA4; 8])?;
    db.commit_transaction()
}

fn pre() -> (Vec<u8>, Vec<u8>) {
    (
        (0..LEN_A).map(|i| i as u8).collect(),
        (0..LEN_B).map(|i| (i as u8) ^ 0x5A).collect(),
    )
}

fn post() -> (Vec<u8>, Vec<u8>) {
    let (mut a, mut b) = pre();
    a[0..40].fill(0xA1);
    a[32..64].fill(0xA2);
    a[100..124].fill(0xA3);
    a[200..208].fill(0xA4);
    b[0..16].fill(0xB1);
    b[16..24].fill(0xB2);
    (a, b)
}

fn sweep(batched: bool) -> u64 {
    // Count the protocol steps of one clean run.
    let (mut db, r, _, _) = setup2(batched);
    run_txn(&mut db, r).unwrap();
    let total = db.steps_taken();

    // Crash after every step, including one plan the transaction outlives.
    for crash_at in 0..=total + 1 {
        let (mut db, r, na, nb) = setup2(batched);
        db.set_fault_plan(FaultPlan::crash_after(crash_at));
        let res = run_txn(&mut db, r);
        if crash_at > total {
            res.as_ref().unwrap_or_else(|e| {
                panic!("batched={batched} crash_at={crash_at}: outlived plan failed: {e}")
            });
        }

        let (pa, pb) = pre();
        let (qa, qb) = post();
        for (name, node) in [("a", &na), ("b", &nb)] {
            let (db2, _) =
                Perseas::recover(reopen(node), PerseasConfig::default()).unwrap_or_else(|e| {
                    panic!(
                        "batched={batched} crash_at={crash_at}: mirror {name} unrecoverable: {e}"
                    )
                });
            let ga = db2.region_snapshot(r[0]).unwrap();
            let gb = db2.region_snapshot(r[1]).unwrap();
            let is_pre = ga == pa && gb == pb;
            let is_post = ga == qa && gb == qb;
            assert!(
                is_pre || is_post,
                "batched={batched} crash_at={crash_at}: mirror {name} holds a partial state"
            );
            if res.is_ok() {
                assert!(
                    is_post,
                    "batched={batched} crash_at={crash_at}: durable txn missing on mirror {name}"
                );
            }
        }
    }
    total
}

#[test]
fn legacy_path_survives_every_crash_point() {
    let total = sweep(false);
    // 6 set_range records x 2 mirrors + 4 coalesced ranges x 2 mirrors
    // + 2 commit records.
    assert!(total >= 12, "legacy path unexpectedly short: {total}");
}

#[test]
fn batched_path_survives_every_crash_point() {
    let total = sweep(true);
    // Exactly one crash point per vectored write: 3 phases x 2 mirrors.
    assert_eq!(total, 6, "batched path should have 3 writes per mirror");
}

/// A vectored write is one crash *point*, but the SCI link can still die
/// mid-message, leaving a packet-aligned prefix of the batch applied.
/// Sweep the cut across every packet of the three commit batches: the
/// recovered state must always be all-or-nothing.
#[test]
fn torn_vectored_batches_roll_back_cleanly() {
    for cut_at in 0..=24u64 {
        let clock = SimClock::new();
        let backend = SimRemote::with_parts(
            clock.clone(),
            NodeMemory::new("m"),
            SciParams::dolphin_1998(),
        );
        let node = backend.node().clone();
        let link = backend.link().clone();
        let cfg = PerseasConfig::default().with_batched_commit(true);
        let mut db = Perseas::init_with_clock(vec![backend], cfg, clock).unwrap();
        let ra = db.malloc(LEN_A).unwrap();
        let rb = db.malloc(LEN_B).unwrap();
        let (pa, pb) = pre();
        db.write(ra, 0, &pa).unwrap();
        db.write(rb, 0, &pb).unwrap();
        db.init_remote_db().unwrap();

        link.cut_after_packets(cut_at);
        let res = run_txn(&mut db, [ra, rb]);
        link.heal();
        if let Err(e) = &res {
            assert!(
                matches!(e, TxnError::Unavailable(_)),
                "cut_at={cut_at}: unexpected error {e}"
            );
        }

        let (db2, _) = Perseas::recover(reopen(&node), PerseasConfig::default())
            .unwrap_or_else(|e| panic!("cut_at={cut_at}: unrecoverable: {e}"));
        let ga = db2.region_snapshot(ra).unwrap();
        let gb = db2.region_snapshot(rb).unwrap();
        let (qa, qb) = post();
        let is_pre = ga == pa && gb == pb;
        let is_post = ga == qa && gb == qb;
        assert!(
            is_pre || is_post,
            "cut_at={cut_at}: torn batch left a partial state"
        );
        if res.is_ok() {
            assert!(is_post, "cut_at={cut_at}: durable txn lost");
        }
    }
}

#[test]
fn batching_shrinks_the_crash_surface() {
    let (mut legacy_db, r, _, _) = setup2(false);
    run_txn(&mut legacy_db, r).unwrap();
    let (mut batched_db, r, _, _) = setup2(true);
    run_txn(&mut batched_db, r).unwrap();
    assert!(
        batched_db.steps_taken() < legacy_db.steps_taken(),
        "batched {} vs legacy {}",
        batched_db.steps_taken(),
        legacy_db.steps_taken()
    );
}
