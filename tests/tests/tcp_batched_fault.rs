//! TCP robustness of the batched commit pipeline: the only mirror dying
//! mid-commit must surface `TxnError::Unavailable` promptly (bounded by
//! the reconnecting client's attempt budget, never hanging), one of two
//! mirrors dying must be fenced while the commit proceeds degraded on
//! the survivor, and the database must recover against a restarted
//! server.

use std::time::{Duration, Instant};

use perseas_core::{Perseas, PerseasConfig, TxnError};
use perseas_rnram::server::Server;
use perseas_rnram::{ReconnectingRemote, TcpRemote};

fn batched() -> PerseasConfig {
    PerseasConfig::default().with_batched_commit(true)
}

#[test]
fn dead_server_fails_batched_commit_without_hanging_then_recovers() {
    let server = Server::bind("kill-me", "127.0.0.1:0").unwrap().start();
    let node = server.node().clone();
    let addr = server.addr();

    let mirror = ReconnectingRemote::connect(addr, 2).unwrap();
    let mut db = Perseas::init(vec![mirror], batched()).unwrap();
    let r = db.malloc(256).unwrap();
    db.init_remote_db().unwrap();

    db.begin_transaction().unwrap();
    db.set_range(r, 0, 64).unwrap();
    db.write(r, 0, &[1; 64]).unwrap();
    db.commit_transaction().unwrap();

    // The server dies. In batched mode set_range is local, so the open
    // transaction only notices at commit — which must fail with
    // Unavailable after the client's bounded reconnect attempts.
    server.shutdown();
    db.begin_transaction().unwrap();
    db.set_range(r, 64, 64).unwrap();
    db.write(r, 64, &[2; 64]).unwrap();
    let started = Instant::now();
    let err = db.commit_transaction().unwrap_err();
    assert!(matches!(err, TxnError::Unavailable(_)), "{err}");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "commit failure took {:?} — retry bound not honoured",
        started.elapsed()
    );

    // Same memory comes back on the same port (a UPS-backed restart);
    // only the committed transaction survives.
    let server2 = Server::with_node(node, addr).unwrap().start();
    let (mut db2, report) = Perseas::recover(TcpRemote::connect(addr).unwrap(), batched()).unwrap();
    assert_eq!(report.last_committed, 1);
    let snap = db2.region_snapshot(r).unwrap();
    assert_eq!(&snap[..64], &[1; 64][..]);
    assert_eq!(
        &snap[64..128],
        &[0; 64][..],
        "failed txn must not be durable"
    );

    // The recovered database commits batched transactions normally.
    db2.begin_transaction().unwrap();
    db2.set_range(r, 128, 32).unwrap();
    db2.write(r, 128, &[3; 32]).unwrap();
    db2.commit_transaction().unwrap();
    assert_eq!(&db2.region_snapshot(r).unwrap()[128..160], &[3; 32][..]);
    server2.shutdown();
}

#[test]
fn two_tcp_mirrors_commit_batched_in_parallel_and_survive_one_loss() {
    let sa = Server::bind("ma", "127.0.0.1:0").unwrap().start();
    let sb = Server::bind("mb", "127.0.0.1:0").unwrap().start();
    let addr_a = sa.addr();

    let mut db = Perseas::init(
        vec![
            TcpRemote::connect(addr_a).unwrap(),
            TcpRemote::connect(sb.addr()).unwrap(),
        ],
        batched(),
    )
    .unwrap();
    let r = db.malloc(512).unwrap();
    db.init_remote_db().unwrap();

    // No fault plan armed and no sim clocks: these commits take the
    // scoped-thread fan-out path, one writer thread per mirror.
    for i in 0..20u64 {
        db.begin_transaction().unwrap();
        let slot = (i as usize % 16) * 16;
        db.set_range(r, slot, 16).unwrap();
        db.write(r, slot, &[i as u8; 16]).unwrap();
        db.set_range(r, 256 + slot, 8).unwrap();
        db.write(r, 256 + slot, &[!(i as u8); 8]).unwrap();
        db.commit_transaction().unwrap();
    }
    assert_eq!(db.last_committed(), 20);

    // Mirror b dies mid-life: the parallel fan-out must fence the dead
    // mirror and commit degraded on the survivor instead of panicking
    // or hanging (the default quorum is 1).
    sb.shutdown();
    db.begin_transaction().unwrap();
    db.set_range(r, 0, 16).unwrap();
    db.write(r, 0, &[0xFF; 16]).unwrap();
    db.commit_transaction().unwrap();
    assert_eq!(
        db.mirror_status()[1].health,
        perseas_core::MirrorHealth::Down
    );

    // Mirror a recovers the full history including the degraded commit.
    let (db2, report) = Perseas::recover(TcpRemote::connect(addr_a).unwrap(), batched()).unwrap();
    assert_eq!(report.last_committed, 21);
    let snap = db2.region_snapshot(r).unwrap();
    assert_eq!(&snap[..16], &[0xFF; 16][..]);
    sa.shutdown();
}
