//! TCP robustness of the batched commit pipeline: the only mirror dying
//! mid-commit must surface `TxnError::Unavailable` promptly (bounded by
//! the reconnecting client's attempt budget, never hanging), one of two
//! mirrors dying must be fenced while the commit proceeds degraded on
//! the survivor, and the database must recover against a restarted
//! server.

use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use perseas_core::{MetaHeader, Perseas, PerseasConfig, RegionId, TxnError, META_TAG};
use perseas_rnram::protocol::{read_frame, write_frame};
use perseas_rnram::server::Server;
use perseas_rnram::{PipelineConfig, ReconnectingRemote, TcpRemote};

fn batched() -> PerseasConfig {
    PerseasConfig::default().with_batched_commit(true)
}

#[test]
fn dead_server_fails_batched_commit_without_hanging_then_recovers() {
    let server = Server::bind("kill-me", "127.0.0.1:0").unwrap().start();
    let node = server.node().clone();
    let addr = server.addr();

    let mirror = ReconnectingRemote::connect_auto(addr, 2).unwrap();
    let mut db = Perseas::init(vec![mirror], batched()).unwrap();
    let r = db.malloc(256).unwrap();
    db.init_remote_db().unwrap();

    db.begin_transaction().unwrap();
    db.set_range(r, 0, 64).unwrap();
    db.write(r, 0, &[1; 64]).unwrap();
    db.commit_transaction().unwrap();

    // The server dies. In batched mode set_range is local, so the open
    // transaction only notices at commit — which must fail with
    // Unavailable after the client's bounded reconnect attempts.
    server.shutdown();
    db.begin_transaction().unwrap();
    db.set_range(r, 64, 64).unwrap();
    db.write(r, 64, &[2; 64]).unwrap();
    let started = Instant::now();
    let err = db.commit_transaction().unwrap_err();
    assert!(matches!(err, TxnError::Unavailable(_)), "{err}");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "commit failure took {:?} — retry bound not honoured",
        started.elapsed()
    );

    // Same memory comes back on the same port (a UPS-backed restart);
    // only the committed transaction survives.
    let server2 = Server::with_node(node, addr).unwrap().start();
    let (mut db2, report) =
        Perseas::recover(TcpRemote::connect_auto(addr).unwrap(), batched()).unwrap();
    assert_eq!(report.last_committed, 1);
    let snap = db2.region_snapshot(r).unwrap();
    assert_eq!(&snap[..64], &[1; 64][..]);
    assert_eq!(
        &snap[64..128],
        &[0; 64][..],
        "failed txn must not be durable"
    );

    // The recovered database commits batched transactions normally.
    db2.begin_transaction().unwrap();
    db2.set_range(r, 128, 32).unwrap();
    db2.write(r, 128, &[3; 32]).unwrap();
    db2.commit_transaction().unwrap();
    assert_eq!(&db2.region_snapshot(r).unwrap()[128..160], &[3; 32][..]);
    server2.shutdown();
}

#[test]
fn two_tcp_mirrors_commit_batched_in_parallel_and_survive_one_loss() {
    let sa = Server::bind("ma", "127.0.0.1:0").unwrap().start();
    let sb = Server::bind("mb", "127.0.0.1:0").unwrap().start();
    let addr_a = sa.addr();

    let mut db = Perseas::init(
        vec![
            TcpRemote::connect_auto(addr_a).unwrap(),
            TcpRemote::connect_auto(sb.addr()).unwrap(),
        ],
        batched(),
    )
    .unwrap();
    let r = db.malloc(512).unwrap();
    db.init_remote_db().unwrap();

    // No fault plan armed and no sim clocks: these commits take the
    // scoped-thread fan-out path, one writer thread per mirror.
    for i in 0..20u64 {
        db.begin_transaction().unwrap();
        let slot = (i as usize % 16) * 16;
        db.set_range(r, slot, 16).unwrap();
        db.write(r, slot, &[i as u8; 16]).unwrap();
        db.set_range(r, 256 + slot, 8).unwrap();
        db.write(r, 256 + slot, &[!(i as u8); 8]).unwrap();
        db.commit_transaction().unwrap();
    }
    assert_eq!(db.last_committed(), 20);

    // Mirror b dies mid-life: the parallel fan-out must fence the dead
    // mirror and commit degraded on the survivor instead of panicking
    // or hanging (the default quorum is 1).
    sb.shutdown();
    db.begin_transaction().unwrap();
    db.set_range(r, 0, 16).unwrap();
    db.write(r, 0, &[0xFF; 16]).unwrap();
    db.commit_transaction().unwrap();
    assert_eq!(
        db.mirror_status()[1].health,
        perseas_core::MirrorHealth::Down
    );

    // Mirror a recovers the full history including the degraded commit.
    let (db2, report) =
        Perseas::recover(TcpRemote::connect_auto(addr_a).unwrap(), batched()).unwrap();
    assert_eq!(report.last_committed, 21);
    let snap = db2.region_snapshot(r).unwrap();
    assert_eq!(&snap[..16], &[0xFF; 16][..]);
    sa.shutdown();
}

// ---------------------------------------------------------------------
// Pipelined crash sweep (ISSUE 4): the connection to the mirror dies at
// *every* request-frame boundary of a transaction driven over the
// pipelined transport — i.e. at every in-flight window position, barrier
// not yet acked. A frame-counting proxy sits between the client and the
// server and stops forwarding after exactly `k` frames, which is the
// only way to make "the server died after the k-th posted write" exact
// over real sockets. The client must surface a bounded `Unavailable`
// (never hang, never silently retry the lost window), and recovery
// against the restarted server must reproduce the durability oracle
// read from the mirror's own metadata bytes, as in
// `group_commit_sweep.rs`.
// ---------------------------------------------------------------------

/// A single-connection TCP proxy that forwards request frames to the
/// server until its budget runs out, then severs both directions.
/// Responses are pumped back verbatim. `remaining` starts unlimited;
/// arm it with `store(k)` while the client is idle.
struct CutProxy {
    addr: SocketAddr,
    remaining: Arc<AtomicU64>,
    forwarded: Arc<AtomicU64>,
}

fn spawn_cut_proxy(server_addr: SocketAddr) -> CutProxy {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let remaining = Arc::new(AtomicU64::new(u64::MAX));
    let forwarded = Arc::new(AtomicU64::new(0));
    let (rem, fwd) = (Arc::clone(&remaining), Arc::clone(&forwarded));
    std::thread::spawn(move || {
        let (client, _) = match listener.accept() {
            Ok(c) => c,
            Err(_) => return,
        };
        let upstream = match TcpStream::connect(server_addr) {
            Ok(u) => u,
            Err(_) => return,
        };
        let mut up_read = upstream.try_clone().unwrap();
        let mut client_write = client.try_clone().unwrap();
        let pump = std::thread::spawn(move || {
            let _ = std::io::copy(&mut up_read, &mut client_write);
        });
        let mut client_read = client;
        let mut up_write = upstream;
        while let Ok(body) = read_frame(&mut client_read) {
            if rem.load(Ordering::SeqCst) == 0 {
                break; // budget exhausted: this frame is never delivered
            }
            rem.fetch_sub(1, Ordering::SeqCst);
            if write_frame(&mut up_write, &body).is_err() {
                break;
            }
            fwd.fetch_add(1, Ordering::SeqCst);
        }
        let _ = client_read.shutdown(Shutdown::Both);
        let _ = up_write.shutdown(Shutdown::Both);
        let _ = pump.join();
        // The listener dies with this thread: a re-dial after the cut is
        // refused, so the attempt budget is what bounds the failure.
    });
    CutProxy {
        addr,
        remaining,
        forwarded,
    }
}

const SWEEP_REGION: usize = 256;
const SWEEP_OPS: usize = 8;

/// Builds a pipelined database through the proxy and commits the
/// baseline transaction (id 1: `[1; 32]` at offset 0).
fn sweep_setup(proxy: &CutProxy, cfg: PerseasConfig) -> (Perseas<ReconnectingRemote>, RegionId) {
    let mirror = ReconnectingRemote::connect(proxy.addr, 2)
        .unwrap()
        .with_pipeline(PipelineConfig::default());
    let mut db = Perseas::init(vec![mirror], cfg).unwrap();
    let r = db.malloc(SWEEP_REGION).unwrap();
    db.init_remote_db().unwrap();
    db.begin_transaction().unwrap();
    db.set_range(r, 0, 32).unwrap();
    db.write(r, 0, &[1; 32]).unwrap();
    db.commit_transaction().unwrap();
    (db, r)
}

/// The swept transaction (id 2): SWEEP_OPS disjoint 8-byte ranges — a
/// full in-flight window of posted writes before the commit barrier.
fn sweep_txn(db: &mut Perseas<ReconnectingRemote>, r: RegionId) -> Result<(), TxnError> {
    db.begin_transaction()?;
    for i in 0..SWEEP_OPS {
        let off = 64 + i * 16;
        db.set_range(r, off, 8)?;
        db.write(r, off, &[0xB0 + i as u8; 8])?;
    }
    db.commit_transaction()
}

/// The serial oracle: baseline plus the swept transaction iff durable.
fn sweep_oracle(txn2_durable: bool) -> Vec<u8> {
    let mut img = vec![0u8; SWEEP_REGION];
    img[..32].fill(1);
    if txn2_durable {
        for i in 0..SWEEP_OPS {
            let off = 64 + i * 16;
            img[off..off + 8].fill(0xB0 + i as u8);
        }
    }
    img
}

/// The durable watermark read straight from the mirror's metadata bytes.
fn durable_watermark(server: &perseas_rnram::server::ServerHandle) -> u64 {
    let seg = server.node().find_by_tag(META_TAG).expect("meta segment");
    let mut image = vec![0u8; seg.len];
    server.node().read(seg.id, 0, &mut image).unwrap();
    MetaHeader::decode(&image).unwrap().last_committed
}

fn pipelined_window_sweep(cfg: PerseasConfig, min_positions: u64) {
    // Shape first: a clean run through the proxy counts the frames the
    // swept transaction sends. The budget is armed only between
    // transactions (the window is drained, so the count is exact).
    let total = {
        let server = Server::bind("shape", "127.0.0.1:0").unwrap().start();
        let proxy = spawn_cut_proxy(server.addr());
        let (mut db, r) = sweep_setup(&proxy, cfg);
        let before = proxy.forwarded.load(Ordering::SeqCst);
        sweep_txn(&mut db, r).unwrap();
        let total = proxy.forwarded.load(Ordering::SeqCst) - before;
        assert_eq!(db.last_committed(), 2);
        server.shutdown();
        total
    };
    assert!(
        total >= min_positions,
        "swept txn sent {total} frames — window sweep has lost its breadth"
    );

    for cut_at in 0..total {
        let server = Server::bind("sweep", "127.0.0.1:0").unwrap().start();
        let node = server.node().clone();
        let addr = server.addr();
        let proxy = spawn_cut_proxy(addr);
        let (mut db, r) = sweep_setup(&proxy, cfg);

        proxy.remaining.store(cut_at, Ordering::SeqCst);
        let started = Instant::now();
        let err = sweep_txn(&mut db, r).unwrap_err();
        assert!(
            matches!(err, TxnError::Unavailable(_)),
            "cut_at={cut_at}: {err}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "cut_at={cut_at}: failure took {:?} — not bounded",
            started.elapsed()
        );
        drop(db);

        // The commit record is the transaction's last frame, and the
        // replacement listener refuses re-dials: with any earlier frame
        // undelivered the transaction must not be durable. Check the
        // oracle against the mirror's own bytes, then against recovery
        // over a restarted server.
        server.shutdown();
        let server2 = Server::with_node(node, addr).unwrap().start();
        let watermark = durable_watermark(&server2);
        assert_eq!(
            watermark, 1,
            "cut_at={cut_at}: txn 2 became durable with its record frame cut"
        );

        let (db2, report) = Perseas::recover(TcpRemote::connect(addr).unwrap(), cfg)
            .unwrap_or_else(|e| panic!("cut_at={cut_at}: recovery failed: {e}"));
        assert_eq!(report.last_committed, 1, "cut_at={cut_at}");
        assert_eq!(
            db2.region_snapshot(r).unwrap(),
            sweep_oracle(false),
            "cut_at={cut_at}: recovered image diverges from the durability oracle"
        );
        server2.shutdown();
    }
}

#[test]
fn pipelined_window_sweep_legacy_commit() {
    // The legacy path posts one frame per undo record and per data range:
    // the sweep spans every position of a full 8-write window plus the
    // commit record.
    pipelined_window_sweep(PerseasConfig::default(), SWEEP_OPS as u64 + 1);
}

#[test]
fn pipelined_window_sweep_batched_commit() {
    // The batched path coalesces into vectored frames; the sweep still
    // cuts at every one of its (fewer) boundaries.
    pipelined_window_sweep(batched(), 3);
}
