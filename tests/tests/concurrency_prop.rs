//! Serializability property suite for the concurrent engine.
//!
//! Each case derives a full schedule — transaction mix, interleaving,
//! group-commit boundaries — from one seed through the deterministic
//! harness (`perseas_integration::interleave`). The harness panics with
//! the seed in the message, so any failing case replays byte-for-byte
//! with `run_schedule(seed, ntxns)`.

use proptest::prelude::*;

use perseas_integration::interleave::{run_schedule, REGION_LEN};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random transaction mixes over a shared region must match some
    /// serial order of the committed subset (the harness checks the
    /// commit-order oracle on both the local image and the recovered
    /// mirror bytes), and aborted or conflicted transactions leave no
    /// trace in the mirror.
    #[test]
    fn concurrent_serializability_prop(seed in any::<u64>(), ntxns in 2usize..8) {
        let (recovered, committed) = run_schedule(seed, ntxns);
        prop_assert_eq!(recovered.len(), REGION_LEN);
        // Every byte is either untouched or written by a *committed*
        // transaction: the harness's fill bytes are 1 + (plan % 250), so
        // any non-zero byte must map back to a committed plan index.
        for (at, &b) in recovered.iter().enumerate() {
            if b == 0 {
                continue;
            }
            let writer = (b - 1) as usize;
            prop_assert!(
                committed.contains(&writer),
                "seed {}: byte {} holds {} from uncommitted txn {}",
                seed, at, b, writer
            );
        }
    }
}
