//! Threaded stress of the `Send + Sync` handle layer
//! ([`ConcurrentPerseas`]): real OS threads drive transactions against
//! one instance, in sim mode and over real TCP mirrors. This is the
//! loom-style smoke test of the CI `concurrency` job (loom itself cannot
//! be vendored).

use std::sync::{Arc, Barrier};
use std::thread;

use perseas_core::{ConcurrentPerseas, Perseas, PerseasConfig, RegionId, TxnError};
use perseas_rnram::server::Server;
use perseas_rnram::{RemoteMemory, SimRemote, TcpRemote};

const THREADS: usize = 8;
const TXNS_PER_THREAD: usize = 10;

fn conc_cfg() -> PerseasConfig {
    PerseasConfig::default().with_concurrent(true)
}

fn publish<M: RemoteMemory>(mirrors: Vec<M>) -> (ConcurrentPerseas<M>, RegionId) {
    let mut db = Perseas::init(mirrors, conc_cfg()).unwrap();
    // Thread t's counter lives at t*16; the tail 32 bytes belong to the
    // two-open smoke test so the areas never overlap.
    let r = db.malloc(THREADS * 16 + 32).unwrap();
    db.init_remote_db().unwrap();
    (ConcurrentPerseas::new(db).unwrap(), r)
}

/// Two transactions genuinely open at once — both begin before either
/// commits — and both commit, from two racing threads.
fn two_open_then_commit<M: RemoteMemory + 'static>(shared: &ConcurrentPerseas<M>, r: RegionId) {
    let base = THREADS * 16;
    let a = shared.begin_transaction().unwrap();
    let b = shared.begin_transaction().unwrap();
    assert_eq!(shared.open_txn_count(), 2);
    a.update(r, base, &[0xA1; 8]).unwrap();
    b.update(r, base + 16, &[0xB2; 8]).unwrap();

    let gate = Arc::new(Barrier::new(2));
    let (ga, gb) = (Arc::clone(&gate), gate);
    let ta = thread::spawn(move || {
        ga.wait();
        a.commit()
    });
    let tb = thread::spawn(move || {
        gb.wait();
        b.commit()
    });
    ta.join().unwrap().unwrap();
    tb.join().unwrap().unwrap();

    let mut buf = [0u8; 8];
    shared.read(r, base, &mut buf).unwrap();
    assert_eq!(buf, [0xA1; 8]);
    shared.read(r, base + 16, &mut buf).unwrap();
    assert_eq!(buf, [0xB2; 8]);
    assert_eq!(shared.open_txn_count(), 0);
}

/// N threads, each incrementing its own 8-byte counter in its own slice:
/// no conflicts, every commit must land.
fn disjoint_stress<M: RemoteMemory + 'static>(shared: &ConcurrentPerseas<M>, r: RegionId) {
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = shared.clone();
            thread::spawn(move || {
                for _ in 0..TXNS_PER_THREAD {
                    db.transaction(|tx| {
                        let mut buf = [0u8; 8];
                        tx.read(r, t * 16, &mut buf)?;
                        let next = u64::from_le_bytes(buf) + 1;
                        tx.update(r, t * 16, &next.to_le_bytes())
                    })
                    .unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    for t in 0..THREADS {
        let mut buf = [0u8; 8];
        shared.read(r, t * 16, &mut buf).unwrap();
        assert_eq!(
            u64::from_le_bytes(buf),
            TXNS_PER_THREAD as u64,
            "thread {t} lost an increment"
        );
    }
    assert_eq!(shared.open_txn_count(), 0);
}

/// All threads fight over one range: exactly one claim wins at a time,
/// losers see `Conflict` and retry; the counter must still total every
/// successful increment.
fn contended_stress<M: RemoteMemory + 'static>(shared: &ConcurrentPerseas<M>, r: RegionId) {
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let db = shared.clone();
            thread::spawn(move || {
                let mut done = 0usize;
                while done < TXNS_PER_THREAD {
                    match db.transaction(|tx| {
                        let mut buf = [0u8; 8];
                        tx.read(r, 8, &mut buf)?;
                        let next = u64::from_le_bytes(buf) + 1;
                        tx.update(r, 8, &next.to_le_bytes())
                    }) {
                        Ok(()) => done += 1,
                        Err(TxnError::Conflict { .. }) => thread::yield_now(),
                        Err(e) => panic!("unexpected error under contention: {e}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut buf = [0u8; 8];
    shared.read(r, 8, &mut buf).unwrap();
    assert_eq!(u64::from_le_bytes(buf), (4 * TXNS_PER_THREAD) as u64);
}

#[test]
fn sim_mode_threads() {
    let (shared, r) = publish(vec![SimRemote::new("m1"), SimRemote::new("m2")]);
    two_open_then_commit(&shared, r);
    disjoint_stress(&shared, r);
    contended_stress(&shared, r);
    let stats = shared.stats();
    assert_eq!(
        stats.commits,
        2 + (THREADS * TXNS_PER_THREAD) as u64 + (4 * TXNS_PER_THREAD) as u64
    );
}

#[test]
fn tcp_mode_threads() {
    let server = Server::bind("tcp-mirror", "127.0.0.1:0").unwrap().start();
    let remote = TcpRemote::connect(server.addr()).unwrap();
    let (shared, r) = publish(vec![remote]);
    two_open_then_commit(&shared, r);
    disjoint_stress(&shared, r);

    // The data really lives on the TCP mirror: recover from a second
    // connection and compare.
    let db = shared.try_unwrap().ok().expect("sole handle");
    drop(db);
    let reconnect = TcpRemote::connect(server.addr()).unwrap();
    let (db2, _) = Perseas::recover(reconnect, conc_cfg()).unwrap();
    for t in 0..THREADS {
        let snap = db2.region_snapshot(r).unwrap();
        let got = u64::from_le_bytes(snap[t * 16..t * 16 + 8].try_into().unwrap());
        assert_eq!(got, TXNS_PER_THREAD as u64, "mirror lost thread {t}'s data");
    }
}
