//! The REDO-only commit path over the real TCP backend: commits append
//! to the segmented log across a genuine socket/thread boundary, a
//! snapshot retires the covered history, and a recovering connection
//! replays only the live tail.
//!
//! Connections go through [`AnyRemote::connect_auto`], so the CI matrix
//! replays the scenario over the synchronous, pipelined
//! (`PERSEAS_TCP_PIPELINE`), and session-multiplexed
//! (`PERSEAS_TCP_MUX`) transports.

use perseas_core::{Perseas, PerseasConfig};
use perseas_rnram::server::Server;
use perseas_rnram::AnyRemote;

fn redo_cfg() -> PerseasConfig {
    PerseasConfig::default()
        .with_redo(true)
        .with_redo_log(4096, 8)
}

#[test]
fn redo_commit_snapshot_crash_recover_over_tcp() {
    let server = Server::bind("redo-tcp", "127.0.0.1:0").unwrap().start();

    let mirror = AnyRemote::connect_auto(server.addr()).unwrap();
    let mut db = Perseas::init(vec![mirror], redo_cfg()).unwrap();
    let r = db.malloc(1024).unwrap();
    db.init_remote_db().unwrap();

    for i in 0..48u64 {
        db.begin_transaction().unwrap();
        let slot = (i as usize % 128) * 8;
        db.set_range(r, slot, 8).unwrap();
        db.write(r, slot, &i.to_le_bytes()).unwrap();
        db.commit_transaction().unwrap();
        // Snapshot 8 transactions before the crash: the covered log
        // prefix is retired, so recovery replays only the tail.
        if i == 39 {
            db.redo_snapshot().unwrap();
        }
    }
    db.crash();

    let reconnect = AnyRemote::connect_auto(server.addr()).unwrap();
    let (db2, report) = Perseas::recover(reconnect, redo_cfg()).unwrap();
    assert_eq!(report.last_committed, 48);
    assert_eq!(report.replayed_records, 8, "only the tail replays");
    let mut buf = [0u8; 8];
    db2.read(r, 47 * 8, &mut buf).unwrap();
    assert_eq!(u64::from_le_bytes(buf), 47);
    server.shutdown();
}

#[test]
fn redo_in_flight_transaction_vanishes_over_tcp() {
    let server = Server::bind("redo-tcp-abort", "127.0.0.1:0").unwrap().start();
    let mirror = AnyRemote::connect_auto(server.addr()).unwrap();
    let mut db = Perseas::init(vec![mirror], redo_cfg()).unwrap();
    let r = db.malloc(256).unwrap();
    db.write(r, 0, &[1; 256]).unwrap();
    db.init_remote_db().unwrap();

    // In redo mode nothing reaches the log before commit, so an
    // in-flight transaction leaves no trace at all.
    db.begin_transaction().unwrap();
    db.set_range(r, 0, 64).unwrap();
    db.write(r, 0, &[2; 64]).unwrap();
    db.crash();

    let reconnect = AnyRemote::connect_auto(server.addr()).unwrap();
    let (db2, report) = Perseas::recover(reconnect, redo_cfg()).unwrap();
    assert_eq!(report.last_committed, 0);
    assert_eq!(report.replayed_records, 0);
    let mut buf = [0u8; 64];
    db2.read(r, 0, &mut buf).unwrap();
    assert_eq!(buf, [1; 64]);
    server.shutdown();
}
