//! Failure injection beyond the primary: mirror loss, link loss, and the
//! degraded-operation paths the paper's reliability argument rests on.

use perseas_core::{Perseas, PerseasConfig, TxnError};
use perseas_integration::{perseas_with_node, reopen};
use perseas_rnram::SimRemote;
use perseas_sci::{NodeMemory, SciParams};
use perseas_simtime::SimClock;

fn two_mirror_db_with(cfg: PerseasConfig) -> (Perseas<SimRemote>, NodeMemory, NodeMemory) {
    let clock = SimClock::new();
    let a = SimRemote::with_parts(
        clock.clone(),
        NodeMemory::new("a"),
        SciParams::dolphin_1998(),
    );
    let b = SimRemote::with_parts(
        clock.clone(),
        NodeMemory::new("b"),
        SciParams::dolphin_1998(),
    );
    let (na, nb) = (a.node().clone(), b.node().clone());
    let db = Perseas::init_with_clock(vec![a, b], cfg, clock).unwrap();
    (db, na, nb)
}

fn two_mirror_db() -> (Perseas<SimRemote>, NodeMemory, NodeMemory) {
    two_mirror_db_with(PerseasConfig::default())
}

#[test]
fn full_quorum_makes_mirror_crash_fail_the_commit() {
    // A quorum equal to the mirror count disables degraded mode: the old
    // strict behaviour, where any mirror loss fails the transaction.
    let (mut db, na, nb) = two_mirror_db_with(PerseasConfig::default().with_commit_quorum(2));
    let r = db.malloc(64).unwrap();
    db.init_remote_db().unwrap();

    db.begin_transaction().unwrap();
    db.set_range(r, 0, 8).unwrap();
    db.write(r, 0, &[1; 8]).unwrap();
    db.commit_transaction().unwrap();

    // Mirror b dies; the next commit must report unavailability.
    nb.crash();
    db.begin_transaction().unwrap();
    let res = db
        .set_range(r, 8, 8)
        .and_then(|_| db.write(r, 8, &[2; 8]))
        .and_then(|_| db.commit_transaction());
    assert!(matches!(res, Err(TxnError::Unavailable(_))));

    // Mirror a still has the committed prefix.
    let (db2, report) = Perseas::recover(reopen(&na), PerseasConfig::default()).unwrap();
    assert_eq!(report.last_committed, 1);
    assert_eq!(&db2.region_snapshot(r).unwrap()[..8], &[1; 8]);
}

#[test]
fn below_quorum_set_keeps_refusing_new_transactions() {
    // A set that degraded below quorum in an *earlier* operation must
    // keep refusing admission — not only the one transaction that
    // watched a mirror die (when no further mirror fails, fence_failed
    // never runs and only the unconditional check stands in the way).
    let (mut db, _na, nb) = two_mirror_db_with(PerseasConfig::default().with_commit_quorum(2));
    let r = db.malloc(64).unwrap();
    db.init_remote_db().unwrap();

    nb.crash();
    db.begin_transaction().unwrap();
    let res = db.set_range(r, 0, 8); // the undo push observes the loss
    assert!(matches!(res, Err(TxnError::Unavailable(_))));
    db.abort_transaction().unwrap();

    // No failure left to observe; admission itself must refuse.
    let err = db.begin_transaction().unwrap_err();
    assert!(matches!(err, TxnError::Unavailable(_)), "got {err:?}");

    // Restoring redundancy lifts the refusal.
    nb.restart();
    assert_eq!(db.probe_down_mirrors(), vec![1]);
    db.rejoin_mirror(1).unwrap();
    db.begin_transaction().unwrap();
    db.set_range(r, 0, 8).unwrap();
    db.write(r, 0, &[4; 8]).unwrap();
    db.commit_transaction().unwrap();
    // The aborted attempt consumed id 1; the degraded-set refusals did
    // not burn ids (they never began).
    assert_eq!(db.last_committed(), 2);
}

#[test]
fn degraded_operation_after_removing_dead_mirror() {
    let (mut db, _na, nb) = two_mirror_db();
    let r = db.malloc(64).unwrap();
    db.init_remote_db().unwrap();

    nb.crash();
    // Drop the dead mirror; the database keeps running on one mirror.
    let dead = (0..db.mirror_count())
        .find(|&i| db.mirror_backend(i).is_some_and(|m| m.node().is_crashed()))
        .expect("dead mirror");
    db.remove_mirror(dead).unwrap();
    assert_eq!(db.mirror_count(), 1);

    db.begin_transaction().unwrap();
    db.set_range(r, 0, 8).unwrap();
    db.write(r, 0, &[3; 8]).unwrap();
    db.commit_transaction().unwrap();
    assert_eq!(db.last_committed(), 1);
}

#[test]
fn cannot_remove_the_last_mirror() {
    let (mut db, _) = perseas_with_node();
    let _ = db.malloc(8).unwrap();
    db.init_remote_db().unwrap();
    assert!(matches!(db.remove_mirror(0), Err(TxnError::Unavailable(_))));
    assert!(matches!(db.remove_mirror(7), Err(TxnError::Unavailable(_))));
}

#[test]
fn link_cut_during_commit_is_unavailable_then_recoverable() {
    let clock = SimClock::new();
    let backend = SimRemote::with_parts(
        clock.clone(),
        NodeMemory::new("m"),
        SciParams::dolphin_1998(),
    );
    let node = backend.node().clone();
    let link = backend.link().clone();
    let mut db = Perseas::init_with_clock(vec![backend], PerseasConfig::default(), clock).unwrap();
    let r = db.malloc(256).unwrap();
    db.init_remote_db().unwrap();

    db.begin_transaction().unwrap();
    db.set_range(r, 0, 64).unwrap();
    db.write(r, 0, &[9; 64]).unwrap();
    link.cut_after_packets(1); // dies mid data propagation
    let err = db.commit_transaction().unwrap_err();
    assert!(matches!(err, TxnError::Unavailable(_)));

    // The mirror holds a torn prefix; recovery rolls it back.
    link.heal();
    let (db2, report) = Perseas::recover(reopen(&node), PerseasConfig::default()).unwrap();
    assert!(report.rolled_back_txn.is_some());
    assert_eq!(db2.region_snapshot(r).unwrap(), vec![0; 256]);
}

#[test]
fn scrubbed_node_recovers_nothing() {
    let (mut db, node) = perseas_with_node();
    let r = db.malloc(64).unwrap();
    db.init_remote_db().unwrap();
    db.begin_transaction().unwrap();
    db.set_range(r, 0, 8).unwrap();
    db.write(r, 0, &[1; 8]).unwrap();
    db.commit_transaction().unwrap();
    db.crash();

    let mut backend = reopen(&node);
    Perseas::scrub_mirror(&mut backend, &PerseasConfig::default()).unwrap();
    assert_eq!(node.used_bytes(), 0, "scrub must free every segment");
    let err = Perseas::recover(reopen(&node), PerseasConfig::default()).unwrap_err();
    assert!(matches!(err, TxnError::Unavailable(_)));
}

#[test]
fn recover_best_skips_dead_mirrors() {
    let (mut db, na, nb) = two_mirror_db();
    let r = db.malloc(64).unwrap();
    db.init_remote_db().unwrap();
    db.begin_transaction().unwrap();
    db.set_range(r, 0, 8).unwrap();
    db.write(r, 0, &[5; 8]).unwrap();
    db.commit_transaction().unwrap();
    db.crash();
    na.crash();

    let (db2, report) = Perseas::recover_best(
        vec![reopen(&na), reopen(&nb)],
        PerseasConfig::default(),
        SimClock::new(),
    )
    .unwrap();
    assert_eq!(report.last_committed, 1);
    assert_eq!(&db2.region_snapshot(r).unwrap()[..8], &[5; 8]);

    // With every mirror dead, recovery reports unavailability.
    nb.crash();
    let err = Perseas::<SimRemote>::recover_best(
        vec![reopen(&na), reopen(&nb)],
        PerseasConfig::default(),
        SimClock::new(),
    )
    .unwrap_err();
    assert!(matches!(err, TxnError::Unavailable(_)));
}

#[test]
fn tcp_server_restart_preserves_exported_memory() {
    use perseas_rnram::server::Server;
    use perseas_rnram::TcpRemote;

    let server = Server::bind("restartable", "127.0.0.1:0").unwrap().start();
    let node = server.node().clone();

    let mirror = TcpRemote::connect(server.addr()).unwrap();
    let mut db = Perseas::init(vec![mirror], PerseasConfig::default()).unwrap();
    let r = db.malloc(64).unwrap();
    db.init_remote_db().unwrap();
    db.begin_transaction().unwrap();
    db.set_range(r, 0, 8).unwrap();
    db.write(r, 0, &[7; 8]).unwrap();
    db.commit_transaction().unwrap();

    // The server process restarts (new port, same exported memory, as a
    // UPS-backed node would after a software-only restart).
    server.shutdown();
    let err = db.transaction(|tx| tx.update(r, 8, &[8; 8])).unwrap_err();
    assert!(matches!(err, TxnError::Unavailable(_)));

    let server2 = Server::with_node(node, "127.0.0.1:0").unwrap().start();
    let reconnect = TcpRemote::connect(server2.addr()).unwrap();
    let (db2, report) = Perseas::recover(reconnect, PerseasConfig::default()).unwrap();
    assert_eq!(report.last_committed, 1);
    assert_eq!(&db2.region_snapshot(r).unwrap()[..8], &[7; 8]);
    server2.shutdown();
}
