//! End-to-end: real workloads crashed at arbitrary protocol steps, then
//! recovered — the workload invariants must hold on the recovered
//! database, and exactly the committed prefix must survive.

use perseas_core::{FaultPlan, Perseas, PerseasConfig};
use perseas_integration::{perseas_with_node, reopen};
use perseas_txn::TxnError;
use perseas_workloads::{DebitCredit, DebitCreditScale, OrderEntry, OrderEntryScale, Workload};

#[test]
fn debit_credit_survives_crashes_at_every_step() {
    // First, count the steps of one debit-credit transaction.
    let (mut db, _) = perseas_with_node();
    let mut wl = DebitCredit::new(DebitCreditScale::tiny(), 3);
    wl.setup(&mut db).expect("setup");
    wl.run_txn(&mut db).expect("txn");
    let steps_per_txn = db.steps_taken();

    for crash_at in 0..steps_per_txn {
        let (mut db, node) = perseas_with_node();
        let mut wl = DebitCredit::new(DebitCreditScale::tiny(), 3);
        wl.setup(&mut db).expect("setup");
        // Ten committed transactions, then a crash inside the eleventh.
        for _ in 0..10 {
            wl.run_txn(&mut db).expect("txn");
        }
        db.set_fault_plan(FaultPlan::crash_after(crash_at));
        let crashed = wl.run_txn(&mut db);
        assert_eq!(crashed.unwrap_err(), TxnError::Crashed, "step {crash_at}");

        let (db2, report) =
            Perseas::recover(reopen(&node), PerseasConfig::default()).expect("recover");
        assert_eq!(report.last_committed, 10, "step {crash_at}");
        // The workload model believes 10 transactions happened (it only
        // counts successes); its invariants must hold on the recovered DB.
        wl.check(&db2)
            .unwrap_or_else(|e| panic!("invariants broken at step {crash_at}: {e}"));
    }
}

#[test]
fn order_entry_survives_mid_run_crash() {
    let (mut db, node) = perseas_with_node();
    let mut wl = OrderEntry::new(OrderEntryScale::tiny(), 11);
    wl.setup(&mut db).expect("setup");
    for _ in 0..50 {
        wl.run_txn(&mut db).expect("txn");
    }
    // Crash somewhere inside the next transaction (an order-entry txn has
    // dozens of steps; pick one in the middle).
    db.set_fault_plan(FaultPlan::crash_after(17));
    let _ = wl.run_txn(&mut db).expect_err("must crash");

    let (db2, report) = Perseas::recover(reopen(&node), PerseasConfig::default()).expect("recover");
    assert_eq!(report.last_committed, 50);
    wl.check(&db2).expect("stock ledger reconciles after crash");
}

#[test]
fn repeated_crash_recover_cycles_converge() {
    // Crash -> recover -> run more -> crash ... five times; the workload
    // invariants must hold at every generation.
    let (mut db, node) = perseas_with_node();
    let mut wl = DebitCredit::new(DebitCreditScale::tiny(), 21);
    wl.setup(&mut db).expect("setup");

    let mut committed = 0u64;
    for generation in 0..5 {
        for _ in 0..8 {
            wl.run_txn(&mut db).expect("txn");
            committed += 1;
        }
        db.set_fault_plan(FaultPlan::crash_after(2));
        let _ = wl.run_txn(&mut db).expect_err("must crash");

        let (recovered, report) =
            Perseas::recover(reopen(&node), PerseasConfig::default()).expect("recover");
        db = recovered;
        assert!(
            report.last_committed >= committed,
            "generation {generation}: lost committed transactions"
        );
        wl.check(&db)
            .unwrap_or_else(|e| panic!("generation {generation}: {e}"));
        db.set_fault_plan(FaultPlan::none());
    }
}

#[test]
fn recovery_report_counts_bytes_of_all_regions() {
    let (mut db, node) = perseas_with_node();
    let mut wl = DebitCredit::new(DebitCreditScale::tiny(), 9);
    wl.setup(&mut db).expect("setup");
    wl.run_txn(&mut db).expect("txn");
    db.crash();
    let (_, report) = Perseas::recover(reopen(&node), PerseasConfig::default()).expect("recover");
    assert_eq!(report.regions, 4); // accounts, tellers, branches, history
    assert!(report.bytes_recovered > 0);
}

#[test]
fn filesys_survives_crashes_at_every_step() {
    use perseas_workloads::{FileSys, FileSysScale};
    // Steps per op vary; sweep a generous range and skip plans that the
    // transaction outlives.
    for crash_at in 0..10 {
        let (mut db, node) = perseas_with_node();
        let mut wl = FileSys::new(FileSysScale::tiny(), 17);
        wl.setup(&mut db).expect("setup");
        for _ in 0..30 {
            wl.run_txn(&mut db).expect("txn");
        }
        db.set_fault_plan(FaultPlan::crash_after(crash_at));
        let crashed = wl.run_txn(&mut db);
        let (db2, _) = Perseas::recover(reopen(&node), PerseasConfig::default()).expect("recover");
        if crashed.is_err() {
            // The in-flight metadata update must vanish atomically: the
            // durable state is the one after 30 transactions, for which
            // we lack the shadow — but the *invariants* must hold, which
            // is what torn metadata would break (dangling dentries,
            // wrong link counts, bad superblock accounting).
            use perseas_txn::RegionId;
            let auditor = FileSys::attach(
                FileSysScale::tiny(),
                RegionId::from_raw(0),
                RegionId::from_raw(1),
                RegionId::from_raw(2),
            );
            auditor.check(&db2).unwrap_or_else(|e| {
                panic!("crash_at={crash_at}: file-system invariants broken: {e}")
            });
        } else {
            wl.check(&db2)
                .unwrap_or_else(|e| panic!("crash_at={crash_at}: {e}"));
        }
    }
}
