//! Skewed-workload scenario suite for MVCC snapshot reads.
//!
//! The claim-table engine makes *readers* abort exactly when key choice
//! is skewed: a zipfian debit-credit mix hammers a few hot accounts, so a
//! reader that must claim its ranges keeps losing first-claimer-wins
//! races. Snapshot reads take no claims at all. Each scenario here runs a
//! skewed writer mix and proves the dichotomy: snapshot readers never
//! see `Conflict` or `SnapshotContention` (their reads are consistent
//! cuts — balance conservation holds inside every snapshot), while the
//! legacy claimed-read path aborts under the same interleavings.

use perseas_core::{Perseas, PerseasConfig, ReadReplica, RegionId, SnapshotToken, TxnError};
use perseas_integration::reopen;
use perseas_rnram::SimRemote;
use perseas_sci::NodeMemory;
use perseas_simtime::det_rng;
use perseas_workloads::{Hotspot, ReadMix, Zipfian};

const ACCOUNTS: usize = 64;
const CELL: usize = 8;
const OPENING_BALANCE: i64 = 1_000;

/// Builds a concurrent-engine, MVCC-enabled instance holding `ACCOUNTS`
/// i64 balances, each opened at `OPENING_BALANCE`.
fn build_bank() -> (Perseas<SimRemote>, RegionId, NodeMemory) {
    let backend = SimRemote::new("bank-mirror");
    let node = backend.node().clone();
    let cfg = PerseasConfig::default()
        .with_concurrent(true)
        .with_mvcc(true);
    let mut db = Perseas::init(vec![backend], cfg).unwrap();
    let r = db.malloc(ACCOUNTS * CELL).unwrap();
    db.init_remote_db().unwrap();
    let t = db.begin_concurrent().unwrap();
    db.set_range_t(t, r, 0, ACCOUNTS * CELL).unwrap();
    for i in 0..ACCOUNTS {
        db.write_t(t, r, i * CELL, &OPENING_BALANCE.to_le_bytes())
            .unwrap();
    }
    db.commit_group(&[t]).unwrap();
    (db, r, node)
}

fn balance_at(bytes: &[u8], account: usize) -> i64 {
    i64::from_le_bytes(
        bytes[account * CELL..(account + 1) * CELL]
            .try_into()
            .expect("8-byte cell"),
    )
}

fn total(bytes: &[u8]) -> i64 {
    (0..ACCOUNTS).map(|i| balance_at(bytes, i)).sum()
}

/// Commits one zipfian transfer: moves `amount` between two (possibly
/// hot) accounts. Returns the two accounts touched.
fn transfer(
    db: &mut Perseas<SimRemote>,
    r: RegionId,
    from: usize,
    to: usize,
    amount: i64,
) -> (usize, usize) {
    let t = db.begin_concurrent().unwrap();
    db.set_range_t(t, r, from * CELL, CELL).unwrap();
    let mut buf = [0u8; CELL];
    db.read(r, from * CELL, &mut buf).unwrap();
    let f = i64::from_le_bytes(buf) - amount;
    db.write_t(t, r, from * CELL, &f.to_le_bytes()).unwrap();
    if to != from {
        db.set_range_t(t, r, to * CELL, CELL).unwrap();
    }
    db.read(r, to * CELL, &mut buf).unwrap();
    let g = i64::from_le_bytes(buf) + amount;
    db.write_t(t, r, to * CELL, &g.to_le_bytes()).unwrap();
    db.commit_group(&[t]).unwrap();
    (from, to)
}

/// Reads the whole table at `snap`, asserting the read itself can never
/// abort: any error other than a bounds bug fails the scenario.
fn snapshot_table(db: &Perseas<SimRemote>, snap: SnapshotToken, r: RegionId) -> Vec<u8> {
    db.read_range_s(snap, r, 0, ACCOUNTS * CELL)
        .expect("snapshot reads never conflict")
}

#[test]
fn zipfian_transfers_conserve_balances_inside_every_snapshot() {
    let (mut db, r, _node) = build_bank();
    let zipf = Zipfian::new(ACCOUNTS);
    let mut rng = det_rng(0x5EED);

    // Snapshots opened at different watermarks stay open across many
    // commits; each remembers its first full-table image.
    let mut open: Vec<(SnapshotToken, Vec<u8>)> = Vec::new();
    for round in 0..150 {
        let from = zipf.sample(&mut rng);
        let to = zipf.sample(&mut rng);
        let amount = rng.gen_range(500) as i64;
        transfer(&mut db, r, from, to, amount);

        if round % 7 == 0 {
            let snap = db.begin_snapshot().unwrap();
            let image = snapshot_table(&db, snap, r);
            assert_eq!(
                total(&image),
                ACCOUNTS as i64 * OPENING_BALANCE,
                "a snapshot is a consistent cut: transfers conserve the total"
            );
            open.push((snap, image));
        }
        // Every open snapshot re-reads byte-identically, no matter how
        // many commits have landed since it was pinned.
        for (snap, image) in &open {
            assert_eq!(
                &snapshot_table(&db, *snap, r),
                image,
                "repeated reads within one snapshot are byte-identical"
            );
        }
        if open.len() > 4 {
            let (snap, _) = open.remove(0);
            db.end_snapshot(snap);
        }
    }
    for (snap, _) in open {
        db.end_snapshot(snap);
    }
    assert_eq!(db.open_snapshot_count(), 0);
    assert_eq!(
        db.version_store_bytes(),
        0,
        "closing the last snapshot drains the version store"
    );
}

#[test]
fn legacy_claimed_readers_abort_under_skew_where_snapshots_do_not() {
    let (mut db, r, _node) = build_bank();
    let hot = Hotspot::ninety_ten(ACCOUNTS);
    let mut rng = det_rng(0xCAFE);

    let mut legacy_conflicts = 0usize;
    let mut legacy_retries = 0usize;
    let mut snapshot_reads = 0usize;
    for _ in 0..60 {
        // A writer holds its claims on a hot account, mid-transaction.
        let target = hot.sample(&mut rng);
        let w = db.begin_concurrent().unwrap();
        db.set_range_t(w, r, target * CELL, CELL).unwrap();
        db.write_t(w, r, target * CELL, &7i64.to_le_bytes())
            .unwrap();

        // Legacy path: a reader must claim the range it reads, and keeps
        // losing to the writer until the writer is gone.
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            let reader = db.begin_concurrent().unwrap();
            match db.set_range_t(reader, r, target * CELL, CELL) {
                Ok(()) => {
                    db.abort_t(reader).unwrap();
                    break;
                }
                Err(TxnError::Conflict { holder, .. }) => {
                    assert_eq!(holder, w.id(), "the open writer holds the claim");
                    legacy_conflicts += 1;
                    db.abort_t(reader).unwrap();
                    if attempts >= 3 {
                        legacy_retries += attempts - 1;
                        break;
                    }
                }
                Err(e) => panic!("unexpected claim error: {e}"),
            }
        }

        // MVCC path: the same read at the same moment, zero aborts — and
        // it sees the *committed* balance, not the writer's dirty bytes.
        let snap = db.begin_snapshot().unwrap();
        let mut buf = [0u8; CELL];
        db.read_s(snap, r, target * CELL, &mut buf)
            .expect("snapshot readers never conflict");
        assert_ne!(
            i64::from_le_bytes(buf),
            7,
            "uncommitted writer bytes are masked"
        );
        snapshot_reads += 1;
        db.end_snapshot(snap);

        db.abort_t(w).unwrap();
    }
    assert!(
        legacy_conflicts >= 60,
        "skewed claimed reads must conflict (got {legacy_conflicts})"
    );
    assert!(legacy_retries > 0, "legacy readers burned retries");
    assert_eq!(snapshot_reads, 60, "every snapshot read succeeded");
}

#[test]
fn long_scans_see_the_pinned_image_despite_concurrent_writers() {
    let (mut db, r, _node) = build_bank();
    let zipf = Zipfian::new(ACCOUNTS);
    let mut rng = det_rng(0x5CA4);

    let snap = db.begin_snapshot().unwrap();
    let expected = db.region_snapshot(r).unwrap();

    // Scan the table one cell at a time; between every two steps a
    // skewed writer commits, dirtying earlier *and* later scan positions.
    let mut scanned = Vec::with_capacity(ACCOUNTS * CELL);
    for i in 0..ACCOUNTS {
        let from = zipf.sample(&mut rng);
        let to = zipf.sample(&mut rng);
        transfer(&mut db, r, from, to, 13);
        scanned.extend_from_slice(&db.read_range_s(snap, r, i * CELL, CELL).unwrap());
    }
    assert_eq!(
        scanned, expected,
        "a long scan reassembles the exact image pinned at begin_snapshot"
    );
    db.end_snapshot(snap);

    // The live image has genuinely moved on — the scan was not trivially
    // reading an idle database.
    assert_ne!(db.region_snapshot(r).unwrap(), expected);
}

#[test]
fn read_mixes_95_5_and_50_50_never_abort_snapshot_readers() {
    for (read_permille, seed) in [(950u64, 0x95_05u64), (500, 0x50_50)] {
        let (mut db, r, _node) = build_bank();
        let hot = Hotspot::ninety_ten(ACCOUNTS);
        let mix = ReadMix::new(read_permille);
        let mut rng = det_rng(seed);

        let mut reads = 0usize;
        let mut writes = 0usize;
        for _ in 0..400 {
            if mix.is_read(&mut rng) {
                let snap = db.begin_snapshot().unwrap();
                let account = hot.sample(&mut rng);
                let mut buf = [0u8; CELL];
                db.read_s(snap, r, account * CELL, &mut buf)
                    .expect("snapshot readers never conflict in any mix");
                db.end_snapshot(snap);
                reads += 1;
            } else {
                let from = hot.sample(&mut rng);
                let to = hot.sample(&mut rng);
                transfer(&mut db, r, from, to, rng.gen_range(100) as i64);
                writes += 1;
            }
        }
        assert_eq!(reads + writes, 400);
        assert!(
            reads * 1000 >= 400 * (read_permille as usize - 100),
            "mix {read_permille}: got {reads} reads"
        );
        // The mix conserved money throughout.
        assert_eq!(
            total(&db.region_snapshot(r).unwrap()),
            ACCOUNTS as i64 * OPENING_BALANCE
        );
    }
}

#[test]
fn replicas_serve_snapshot_reads_while_the_primary_commits() {
    let (mut db, r, node) = build_bank();
    let zipf = Zipfian::new(ACCOUNTS);
    let mut rng = det_rng(0x4EB1);
    let cfg = PerseasConfig::default().with_concurrent(true);

    let mut replicas: Vec<ReadReplica<SimRemote>> = (0..3)
        .map(|_| ReadReplica::attach(reopen(&node), cfg).expect("attach replica"))
        .collect();
    let mut watermarks = vec![0u64; replicas.len()];

    for round in 0..40 {
        let from = zipf.sample(&mut rng);
        let to = zipf.sample(&mut rng);
        transfer(&mut db, r, from, to, rng.gen_range(200) as i64);

        // Leave a transaction in flight during some refreshes: its dirty
        // bytes must never leak into any replica's snapshot.
        let in_flight = if round % 3 == 0 {
            let w = db.begin_concurrent().unwrap();
            let a = zipf.sample(&mut rng);
            db.set_range_t(w, r, a * CELL, CELL).unwrap();
            db.write_t(w, r, a * CELL, &i64::MIN.to_le_bytes()).unwrap();
            Some(w)
        } else {
            None
        };

        for (i, replica) in replicas.iter_mut().enumerate() {
            let last = replica.refresh().expect("replica refresh never conflicts");
            assert!(
                last >= watermarks[i],
                "replica watermarks advance monotonically"
            );
            watermarks[i] = last;
            let image = replica.region_snapshot(r).unwrap();
            assert_eq!(
                total(&image),
                ACCOUNTS as i64 * OPENING_BALANCE,
                "replica snapshots are consistent cuts"
            );
            assert!(
                (0..ACCOUNTS).all(|a| balance_at(&image, a) != i64::MIN),
                "in-flight writer bytes never leak into a replica"
            );
        }

        if let Some(w) = in_flight {
            db.abort_t(w).unwrap();
        }
    }
}
