//! Multi-mirror correctness: with k = 2 mirrors every protocol step is
//! duplicated, and a crash at any point must leave *both* mirrors
//! individually recoverable to a consistent state — with the guarantee
//! that a transaction reported durable survives on every mirror.

use perseas_core::{FaultPlan, Perseas, PerseasConfig, RegionId, TxnError};
use perseas_integration::reopen;
use perseas_rnram::SimRemote;
use perseas_sci::NodeMemory;
use perseas_simtime::SimClock;

fn setup2() -> (Perseas<SimRemote>, RegionId, NodeMemory, NodeMemory) {
    let clock = SimClock::new();
    let a = SimRemote::with_parts(
        clock.clone(),
        NodeMemory::new("a"),
        perseas_sci::SciParams::dolphin_1998(),
    );
    let b = SimRemote::with_parts(
        clock.clone(),
        NodeMemory::new("b"),
        perseas_sci::SciParams::dolphin_1998(),
    );
    let (na, nb) = (a.node().clone(), b.node().clone());
    let mut db = Perseas::init_with_clock(vec![a, b], PerseasConfig::default(), clock).unwrap();
    let r = db.malloc(128).unwrap();
    let init: Vec<u8> = (0..128).map(|i| i as u8).collect();
    db.write(r, 0, &init).unwrap();
    db.init_remote_db().unwrap();
    (db, r, na, nb)
}

fn run_txn(db: &mut Perseas<SimRemote>, r: RegionId) -> Result<(), TxnError> {
    db.begin_transaction()?;
    db.set_range(r, 0, 16)?;
    db.write(r, 0, &[0xAA; 16])?;
    db.set_range(r, 64, 16)?;
    db.write(r, 64, &[0xBB; 16])?;
    db.commit_transaction()
}

fn pre() -> Vec<u8> {
    (0..128).map(|i| i as u8).collect()
}

fn post() -> Vec<u8> {
    let mut v = pre();
    v[0..16].fill(0xAA);
    v[64..80].fill(0xBB);
    v
}

#[test]
fn every_crash_point_leaves_both_mirrors_recoverable() {
    let (mut db, r, _, _) = setup2();
    run_txn(&mut db, r).unwrap();
    let total = db.steps_taken();
    assert!(total >= 10, "two mirrors double the steps: {total}");

    for crash_at in 0..=total {
        let (mut db, r, na, nb) = setup2();
        db.set_fault_plan(FaultPlan::crash_after(crash_at));
        let res = run_txn(&mut db, r);

        for (name, node) in [("a", &na), ("b", &nb)] {
            let (db2, _) =
                Perseas::recover(reopen(node), PerseasConfig::default()).unwrap_or_else(|e| {
                    panic!("crash_at={crash_at}: mirror {name} unrecoverable: {e}")
                });
            let got = db2.region_snapshot(r).unwrap();
            assert!(
                got == pre() || got == post(),
                "crash_at={crash_at}: mirror {name} holds a partial state"
            );
            if res.is_ok() {
                // Reported durable: every mirror must have it.
                assert_eq!(
                    got,
                    post(),
                    "crash_at={crash_at}: durable txn missing on mirror {name}"
                );
            }
        }
    }
}

#[test]
fn recover_best_is_at_least_as_new_as_any_single_mirror() {
    let (mut db, r, na, nb) = setup2();
    run_txn(&mut db, r).unwrap();
    // Crash mid-way through a second transaction so the mirrors may
    // diverge by one commit record.
    db.set_fault_plan(FaultPlan::crash_after(7));
    let _ = {
        db.begin_transaction().and_then(|_| {
            db.set_range(r, 32, 8)?;
            db.write(r, 32, &[0xCC; 8])?;
            db.commit_transaction()
        })
    };

    let (from_a, ra) = Perseas::recover(reopen(&na), PerseasConfig::default()).unwrap();
    let (from_b, rb) = Perseas::recover(reopen(&nb), PerseasConfig::default()).unwrap();
    // Fresh handles: the per-mirror recoveries above already consumed
    // the rolled-back ids, so recover_best sees the post-recovery state.
    let (best, report) = Perseas::recover_best(
        vec![reopen(&na), reopen(&nb)],
        PerseasConfig::default(),
        SimClock::new(),
    )
    .unwrap();
    assert!(report.last_committed >= ra.last_committed.min(rb.last_committed));
    assert_eq!(best.mirror_count(), 2);
    drop((from_a, from_b));
}

#[test]
fn divergent_mirrors_converge_after_recover_best() {
    let (mut db, r, na, nb) = setup2();
    run_txn(&mut db, r).unwrap();
    db.crash();

    let (mut best, _) = Perseas::recover_best(
        vec![reopen(&na), reopen(&nb)],
        PerseasConfig::default(),
        SimClock::new(),
    )
    .unwrap();
    // Commit on the re-unified database, then verify both mirrors again
    // agree byte-for-byte.
    best.begin_transaction().unwrap();
    best.set_range(r, 96, 8).unwrap();
    best.write(r, 96, &[0xDD; 8]).unwrap();
    best.commit_transaction().unwrap();
    let want = best.region_snapshot(r).unwrap();
    best.crash();

    for node in [&na, &nb] {
        let (db2, _) = Perseas::recover(reopen(node), PerseasConfig::default()).unwrap();
        assert_eq!(db2.region_snapshot(r).unwrap(), want);
    }
}
