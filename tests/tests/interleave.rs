//! Fixed-seed sweeps of the deterministic interleaving harness
//! (`perseas_integration::interleave`), plus the conflict-release and
//! scope-propagation regression tests.

use perseas_core::TxnError;
use perseas_integration::interleave::{build_concurrent, run_schedule};

#[test]
fn interleaving_sweep_matches_serial_oracle() {
    for seed in 0..48u64 {
        let ntxns = 2 + (seed as usize % 5);
        run_schedule(seed, ntxns);
    }
}

#[test]
fn failing_schedules_replay_byte_for_byte() {
    // The whole point of the harness: the same seed must reproduce the
    // same interleaving, the same committed set, and the same bytes.
    for seed in [0u64, 7, 0xDEAD_BEEF, u64::MAX / 3] {
        let first = run_schedule(seed, 5);
        let second = run_schedule(seed, 5);
        assert_eq!(first, second, "seed {seed}: schedule replay diverged");
    }
}

#[test]
fn conflicted_txn_frees_claims_and_undo_immediately() {
    // Regression: a conflicted loser (and any aborted transaction) must
    // release its conflict-table claims and undo extent right away — not
    // at the next group commit — so other transactions can reuse the
    // range while the winner is still open.
    let (mut db, r, _) = build_concurrent();
    let a = db.begin_concurrent().unwrap();
    db.set_range_t(a, r, 0, 16).unwrap();

    let b = db.begin_concurrent().unwrap();
    db.set_range_t(b, r, 100, 16).unwrap();
    let err = db.set_range_t(b, r, 8, 8).unwrap_err();
    assert!(
        matches!(err, TxnError::Conflict { holder, .. } if holder == a.id()),
        "expected a conflict against txn a, got {err}"
    );
    // b is still open (the failed claim is not granted); it aborts and
    // its [100, 116) claim must be reusable immediately, with no commit
    // in between and while a is still open.
    db.abort_t(b).unwrap();
    let c = db.begin_concurrent().unwrap();
    db.set_range_t(c, r, 100, 16)
        .expect("aborted transaction's claim must be released immediately");
    db.write_t(c, r, 100, &[3; 16]).unwrap();
    db.commit_t(c).unwrap();

    // a was never disturbed and still commits.
    db.write_t(a, r, 0, &[1; 16]).unwrap();
    db.commit_t(a).unwrap();
    let snap = db.region_snapshot(r).unwrap();
    assert_eq!(&snap[0..16], &[1; 16]);
    assert_eq!(&snap[100..116], &[3; 16]);
}

#[test]
fn scope_propagates_conflict_without_wedging() {
    // Regression: `Perseas::transaction` must surface `Conflict` from
    // inside the closure and leave the instance fully usable.
    let (mut db, r, _) = build_concurrent();
    let a = db.begin_concurrent().unwrap();
    db.set_range_t(a, r, 0, 16).unwrap();

    let err = db
        .transaction(|tx| {
            tx.set_range(r, 8, 8)?;
            tx.write(r, 8, &[9; 8])
        })
        .unwrap_err();
    assert!(
        matches!(err, TxnError::Conflict { holder, .. } if holder == a.id()),
        "scope swallowed the conflict: {err}"
    );
    assert!(!db.in_transaction(), "scope left a transaction open");

    // Not wedged: a disjoint scoped transaction succeeds while a is
    // still open, and a itself still commits.
    db.transaction(|tx| {
        tx.set_range(r, 64, 8)?;
        tx.write(r, 64, &[4; 8])
    })
    .unwrap();
    db.write_t(a, r, 0, &[1; 16]).unwrap();
    db.commit_t(a).unwrap();
    let snap = db.region_snapshot(r).unwrap();
    assert_eq!(&snap[0..16], &[1; 16]);
    assert_eq!(&snap[64..72], &[4; 8]);
}
