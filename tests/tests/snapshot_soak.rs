//! Threaded soak of the snapshot-read API on the `Send + Sync` handle
//! layer ([`ConcurrentPerseas`]): OS-thread writers transfer balances
//! between accounts while reader threads open snapshots and scan the
//! table. Every snapshot scan must be a consistent cut (balances
//! conserved, repeated reads byte-identical) and must never abort —
//! this is the ThreadSanitizer target of the CI `snapshot` job.

use std::thread;

use perseas_core::{ConcurrentPerseas, Perseas, PerseasConfig, RegionId, TxnError};
use perseas_rnram::server::Server;
use perseas_rnram::{RemoteMemory, SimRemote, TcpRemote};
use perseas_simtime::det_rng;

const ACCOUNTS: usize = 16;
const CELL: usize = 8;
const OPENING_BALANCE: i64 = 100;
const WRITER_THREADS: usize = 4;
const READER_THREADS: usize = 4;
const TRANSFERS_PER_WRITER: usize = 20;
const SNAPSHOTS_PER_READER: usize = 40;

fn cfg() -> PerseasConfig {
    PerseasConfig::default()
        .with_concurrent(true)
        .with_mvcc(true)
}

fn publish<M: RemoteMemory>(mirrors: Vec<M>) -> (ConcurrentPerseas<M>, RegionId) {
    let mut db = Perseas::init(mirrors, cfg()).unwrap();
    let r = db.malloc(ACCOUNTS * CELL).unwrap();
    db.init_remote_db().unwrap();
    let shared = ConcurrentPerseas::new(db).unwrap();
    shared
        .transaction(|tx| {
            for i in 0..ACCOUNTS {
                tx.update(r, i * CELL, &OPENING_BALANCE.to_le_bytes())?;
            }
            Ok(())
        })
        .unwrap();
    (shared, r)
}

fn total(table: &[u8]) -> i64 {
    (0..ACCOUNTS)
        .map(|i| i64::from_le_bytes(table[i * CELL..(i + 1) * CELL].try_into().unwrap()))
        .sum()
}

/// Writers move money between random accounts (retrying claim
/// conflicts); readers concurrently scan snapshots that must always be
/// consistent cuts and must never see a reader abort.
fn soak<M: RemoteMemory + 'static>(shared: &ConcurrentPerseas<M>, r: RegionId) {
    let writers: Vec<_> = (0..WRITER_THREADS)
        .map(|w| {
            let db = shared.clone();
            thread::spawn(move || {
                let mut rng = det_rng(0x50AC + w as u64);
                for _ in 0..TRANSFERS_PER_WRITER {
                    let from = rng.gen_index(ACCOUNTS);
                    let to = rng.gen_index(ACCOUNTS);
                    loop {
                        // Undo-based writes land in place, so the second
                        // read sees the debit even when `to == from`.
                        match db.transaction(|tx| {
                            let mut buf = [0u8; CELL];
                            tx.read(r, from * CELL, &mut buf)?;
                            let f = i64::from_le_bytes(buf) - 1;
                            tx.update(r, from * CELL, &f.to_le_bytes())?;
                            tx.read(r, to * CELL, &mut buf)?;
                            let g = i64::from_le_bytes(buf) + 1;
                            tx.update(r, to * CELL, &g.to_le_bytes())
                        }) {
                            Ok(()) => break,
                            Err(TxnError::Conflict { .. }) => thread::yield_now(),
                            Err(e) => panic!("unexpected writer error: {e}"),
                        }
                    }
                }
            })
        })
        .collect();

    let readers: Vec<_> = (0..READER_THREADS)
        .map(|_| {
            let db = shared.clone();
            thread::spawn(move || {
                for _ in 0..SNAPSHOTS_PER_READER {
                    let snap = db.begin_snapshot().expect("begin snapshot");
                    let mut table = [0u8; ACCOUNTS * CELL];
                    db.read_snapshot(snap, r, 0, &mut table)
                        .expect("snapshot reads never conflict");
                    assert_eq!(
                        total(&table),
                        ACCOUNTS as i64 * OPENING_BALANCE,
                        "a snapshot scan is a consistent cut"
                    );
                    let mut again = [0u8; ACCOUNTS * CELL];
                    db.read_snapshot(snap, r, 0, &mut again).unwrap();
                    assert_eq!(table, again, "repeated snapshot reads are identical");
                    db.end_snapshot(snap);
                    thread::yield_now();
                }
            })
        })
        .collect();

    for h in writers.into_iter().chain(readers) {
        h.join().unwrap();
    }

    // Quiesced: balances conserved and the version store drained.
    let mut table = [0u8; ACCOUNTS * CELL];
    shared.read(r, 0, &mut table).unwrap();
    assert_eq!(total(&table), ACCOUNTS as i64 * OPENING_BALANCE);
    assert_eq!(shared.open_txn_count(), 0);
}

#[test]
fn sim_mode_snapshot_soak() {
    let (shared, r) = publish(vec![
        SimRemote::new("snap-soak-1"),
        SimRemote::new("snap-soak-2"),
    ]);
    soak(&shared, r);
}

#[test]
fn tcp_mode_snapshot_soak() {
    let server = Server::bind("snap-soak-tcp", "127.0.0.1:0")
        .unwrap()
        .start();
    let remote = TcpRemote::connect(server.addr()).unwrap();
    let (shared, r) = publish(vec![remote]);
    soak(&shared, r);
    drop(shared);
    server.shutdown();
}
