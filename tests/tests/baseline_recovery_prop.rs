//! Property tests across the baselines: RVM and Vista recoveries against
//! the same reference model used for PERSEAS, so all three recovery
//! implementations are held to the same standard.

use proptest::prelude::*;

use perseas_baselines::{VistaSystem, WalConfig, WalSystem};
use perseas_simtime::SimClock;
use perseas_txn::{RegionId, TransactionalMemory};

const REGION_LEN: usize = 256;

#[derive(Debug, Clone)]
struct Op {
    ranges: Vec<(usize, usize, u8)>,
    commit: bool,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        prop::collection::vec(
            (0usize..REGION_LEN, 1usize..32, any::<u8>()).prop_map(|(off, len, b)| {
                let len = len.min(REGION_LEN - off).max(1);
                (off, len, b)
            }),
            1..4,
        ),
        any::<bool>(),
    )
        .prop_map(|(ranges, commit)| Op { ranges, commit })
}

fn apply(tm: &mut dyn TransactionalMemory, r: RegionId, model: &mut [u8], op: &Op) {
    tm.begin_transaction().unwrap();
    let mut staged = model.to_vec();
    for &(off, len, b) in &op.ranges {
        tm.set_range(r, off, len).unwrap();
        tm.write(r, off, &vec![b; len]).unwrap();
        staged[off..off + len].fill(b);
    }
    if op.commit {
        tm.commit_transaction().unwrap();
        model.copy_from_slice(&staged);
    } else {
        tm.abort_transaction().unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// RVM recovery from stable storage (with the volatile write buffer
    /// lost) reproduces exactly the committed history.
    #[test]
    fn rvm_recovery_matches_model(
        ops in prop::collection::vec(op_strategy(), 1..12),
        in_flight in op_strategy(),
    ) {
        let cfg = WalConfig::new();
        let mut tm = WalSystem::rvm(SimClock::new(), cfg);
        let r = tm.alloc_region(REGION_LEN).unwrap();
        tm.publish().unwrap();
        let mut model = vec![0u8; REGION_LEN];
        for op in &ops {
            apply(&mut tm, r, &mut model, op);
        }
        // Leave one transaction open at the crash.
        tm.begin_transaction().unwrap();
        for &(off, len, b) in &in_flight.ranges {
            tm.set_range(r, off, len).unwrap();
            tm.write(r, off, &vec![b; len]).unwrap();
        }
        let store = tm.store().clone();
        drop(tm);
        store.disk().crash_volatile();

        let recovered = WalSystem::recover(store, cfg);
        let mut got = vec![0u8; REGION_LEN];
        recovered.read(r, 0, &mut got).unwrap();
        prop_assert_eq!(got, model);
    }

    /// Vista recovery from reliable memory likewise reproduces the
    /// committed history, rolling back the in-flight transaction.
    #[test]
    fn vista_recovery_matches_model(
        ops in prop::collection::vec(op_strategy(), 1..12),
        in_flight in op_strategy(),
    ) {
        let mut tm = VistaSystem::new(SimClock::new());
        let r = tm.alloc_region(REGION_LEN).unwrap();
        tm.publish().unwrap();
        let mut model = vec![0u8; REGION_LEN];
        for op in &ops {
            apply(&mut tm, r, &mut model, op);
        }
        tm.begin_transaction().unwrap();
        for &(off, len, b) in &in_flight.ranges {
            tm.set_range(r, off, len).unwrap();
            tm.write(r, off, &vec![b; len]).unwrap();
        }
        let handle = tm.handle();
        drop(tm);

        let recovered = VistaSystem::recover(handle);
        let mut got = vec![0u8; REGION_LEN];
        recovered.read(r, 0, &mut got).unwrap();
        prop_assert_eq!(got, model);
    }

    /// Group-committed RVM after a crash yields a *prefix* of the
    /// committed history: everything synced survives, nothing uncommitted
    /// appears, and the result equals the model of some prefix.
    #[test]
    fn group_commit_recovers_a_prefix(
        ops in prop::collection::vec(op_strategy(), 1..16),
    ) {
        let cfg = WalConfig::new().with_group_commit(4);
        let mut tm = WalSystem::rvm(SimClock::new(), cfg);
        let r = tm.alloc_region(REGION_LEN).unwrap();
        tm.publish().unwrap();

        // Track the model after every commit.
        let mut snapshots: Vec<Vec<u8>> = vec![vec![0u8; REGION_LEN]];
        let mut model = vec![0u8; REGION_LEN];
        for op in &ops {
            apply(&mut tm, r, &mut model, op);
            if op.commit {
                snapshots.push(model.clone());
            }
        }
        let store = tm.store().clone();
        drop(tm);
        store.disk().crash_volatile();

        let recovered = WalSystem::recover(store, cfg);
        let mut got = vec![0u8; REGION_LEN];
        recovered.read(r, 0, &mut got).unwrap();
        prop_assert!(
            snapshots.iter().any(|s| s == &got),
            "recovered state is not any committed prefix"
        );
    }
}
