//! Crash-point sweep over multi-transaction group commits.
//!
//! A group commit is three vectored fan-outs (undo arena, data, commit
//! records + watermark). This sweep cuts the pipeline at every fault
//! step and — separately — at every SCI packet boundary, then checks the
//! fundamental guarantee: recovery commits exactly the transactions
//! whose commit records are durable on the mirror, rolls back every
//! other member, and the recovered bytes equal the serial oracle of the
//! durable subset.

use perseas_core::{
    commit_table_offset, decode_commit_table, FaultPlan, MetaHeader, Perseas, PerseasConfig,
    RegionId, TxnError, TxnToken, META_TAG, OFF_COMMIT,
};
use perseas_integration::reopen;
use perseas_rnram::SimRemote;
use perseas_sci::NodeMemory;

const REGION_LEN: usize = 256;
const GROUP: usize = 3;

fn conc_cfg() -> PerseasConfig {
    PerseasConfig::default().with_concurrent(true)
}

fn setup(mirrors: &[&str]) -> (Perseas<SimRemote>, RegionId, Vec<NodeMemory>) {
    let backends: Vec<SimRemote> = mirrors.iter().map(|n| SimRemote::new(*n)).collect();
    let nodes: Vec<NodeMemory> = backends.iter().map(|b| b.node().clone()).collect();
    let mut db = Perseas::init(backends, conc_cfg()).unwrap();
    let r = db.malloc(REGION_LEN).unwrap();
    let init: Vec<u8> = (0..REGION_LEN).map(|i| i as u8).collect();
    db.write(r, 0, &init).unwrap();
    db.init_remote_db().unwrap();
    (db, r, nodes)
}

/// Opens the canonical group: GROUP transactions with disjoint 32-byte
/// ranges, fills 0x10 * (i + 1).
fn open_group(db: &mut Perseas<SimRemote>, r: RegionId) -> Vec<TxnToken> {
    (0..GROUP)
        .map(|i| {
            let t = db.begin_concurrent().unwrap();
            let off = i * 64;
            db.set_range_t(t, r, off, 32).unwrap();
            db.write_t(t, r, off, &[0x10 * (i as u8 + 1); 32]).unwrap();
            t
        })
        .collect()
}

/// The serial oracle for a given committed subset of the group. Member
/// ids are dense starting at `first_id`.
fn oracle(first_id: u64, committed: impl Fn(u64) -> bool) -> Vec<u8> {
    let mut img: Vec<u8> = (0..REGION_LEN).map(|i| i as u8).collect();
    for i in 0..GROUP {
        let id = first_id + i as u64;
        if committed(id) {
            img[i * 64..i * 64 + 32].fill(0x10 * (i as u8 + 1));
        }
    }
    img
}

/// Reads the durable commit state straight from the mirror's metadata
/// bytes: `(watermark, commit table)`.
fn durable_state(node: &NodeMemory) -> (u64, Vec<u64>) {
    let seg = node.find_by_tag(META_TAG).expect("meta segment");
    let mut image = vec![0u8; seg.len];
    node.read(seg.id, 0, &mut image).unwrap();
    let header = MetaHeader::decode(&image).unwrap();
    assert!(
        header.commit_slots > 0,
        "concurrent image must carry a commit table"
    );
    (
        header.last_committed,
        decode_commit_table(&image, header.commit_slots as usize),
    )
}

fn is_durable(id: u64, watermark: u64, table: &[u64]) -> bool {
    id <= watermark || table.contains(&id)
}

#[test]
fn group_commit_fault_step_sweep() {
    // Count the fault steps of a clean two-mirror group commit first.
    let (mut db, r, _) = setup(&["a", "b"]);
    db.set_fault_plan(FaultPlan::none());
    let tokens = open_group(&mut db, r);
    db.commit_group(&tokens).unwrap();
    let total = db.steps_taken();
    // 3 fan-out phases x 2 mirrors.
    assert_eq!(total, 6, "group commit fan-out shape changed");

    for crash_at in 0..=total {
        let (mut db, r, nodes) = setup(&["a", "b"]);
        db.set_fault_plan(FaultPlan::crash_after(crash_at));
        let tokens = open_group(&mut db, r);
        let res = db.commit_group(&tokens);
        if crash_at < total {
            assert_eq!(res.unwrap_err(), TxnError::Crashed, "crash_at={crash_at}");
        } else {
            res.unwrap();
            db.crash();
        }

        // Recovery ranks the mirrors; each must individually satisfy the
        // invariant, and the recovered image must match the winner's
        // durable subset.
        let candidates: Vec<Vec<u8>> = nodes
            .iter()
            .map(|n| {
                let (w, table) = durable_state(n);
                oracle(1, |id| is_durable(id, w, &table))
            })
            .collect();
        let (db2, report) = Perseas::recover_best(
            nodes.iter().map(reopen).collect(),
            conc_cfg(),
            perseas_simtime::SimClock::new(),
        )
        .unwrap_or_else(|e| panic!("crash_at={crash_at}: recovery failed: {e}"));
        let got = db2.region_snapshot(r).unwrap();
        assert!(
            candidates.contains(&got),
            "crash_at={crash_at}: recovered image matches no mirror's durable subset \
             (report: rolled_back={:?} last_committed={})",
            report.rolled_back_txns,
            report.last_committed
        );
        // Each member (ids 1..=3) is durable iff its bytes survived, and
        // the report must agree.
        for i in 0..GROUP as u64 {
            let id = 1 + i;
            let committed_bytes =
                got[i as usize * 64..i as usize * 64 + 32] == [0x10 * (i as u8 + 1); 32];
            assert_eq!(
                committed_bytes,
                !report.rolled_back_txns.contains(&id) && report.last_committed >= id,
                "crash_at={crash_at}: txn {id} durability disagrees with the report"
            );
        }
    }
}

#[test]
fn group_commit_packet_cut_sweep() {
    // Single mirror, cut the SCI link after every packet count inside the
    // group commit. The commit-record fan-out writes each member's slot
    // (one packet each) before the watermark (last packet): a torn cut
    // must durably commit exactly a prefix-closed subset readable from
    // the mirror's own bytes.
    let mut saw_partial_group = false;
    for cut_after in 0..96u64 {
        let backend = SimRemote::new("mirror");
        let node = backend.node().clone();
        let link = backend.link().clone();
        let mut db = Perseas::init(vec![backend], conc_cfg()).unwrap();
        let r = db.malloc(REGION_LEN).unwrap();
        let init: Vec<u8> = (0..REGION_LEN).map(|i| i as u8).collect();
        db.write(r, 0, &init).unwrap();
        db.init_remote_db().unwrap();

        let tokens = open_group(&mut db, r);
        link.cut_after_packets(cut_after);
        let res = db.commit_group(&tokens);
        link.heal();

        let (watermark, table) = durable_state(&node);
        let durable: Vec<u64> = (1..=GROUP as u64)
            .filter(|&id| is_durable(id, watermark, &table))
            .collect();
        if res.is_ok() {
            assert_eq!(
                durable.len(),
                GROUP,
                "cut {cut_after}: commit reported success but records are missing"
            );
        } else if !durable.is_empty() && durable.len() < GROUP {
            saw_partial_group = true;
        }

        db.crash();
        let (db2, _) = Perseas::recover(reopen(&node), conc_cfg())
            .unwrap_or_else(|e| panic!("cut {cut_after}: recovery failed: {e}"));
        let got = db2.region_snapshot(r).unwrap();
        let want = oracle(1, |id| durable.contains(&id));
        assert_eq!(
            got, want,
            "cut {cut_after}: recovered image diverges from the durable subset \
             (watermark {watermark}, table {table:?})"
        );
    }
    assert!(
        saw_partial_group,
        "the sweep never produced a torn group — widen the cut range"
    );
}

#[test]
fn torn_watermark_never_uncommits_slots() {
    // The watermark is the LAST write of the record fan-out. Cut exactly
    // between the slot writes and the watermark: the members are durable
    // via their slots even though the watermark still reads old. After
    // recovery the watermark must have caught up.
    let backend = SimRemote::new("mirror");
    let node = backend.node().clone();
    let link = backend.link().clone();
    let mut db = Perseas::init(vec![backend], conc_cfg()).unwrap();
    let r = db.malloc(REGION_LEN).unwrap();
    db.init_remote_db().unwrap();

    // Find the packet count of the full group commit, then cut one
    // packet earlier — dropping exactly the watermark write (the last
    // packet of the record fan-out, which is the last phase).
    let packets = |l: &perseas_sci::SciLink| {
        let st = l.stats();
        st.packets64 + st.packets16
    };
    let tokens = open_group(&mut db, r);
    let before = packets(&link);
    db.commit_group(&tokens).unwrap();
    let per_commit = packets(&link) - before;

    let tokens = open_group(&mut db, r);
    link.cut_after_packets(per_commit - 1);
    let res = db.commit_group(&tokens);
    link.heal();
    assert!(res.is_err(), "dropped watermark must fail the commit");

    let (watermark, table) = durable_state(&node);
    for id in 4..=6u64 {
        assert!(
            is_durable(id, watermark, &table),
            "txn {id}: slot write must survive a torn watermark (w={watermark}, {table:?})"
        );
    }
    assert!(watermark < 6, "the watermark write itself was cut");

    db.crash();
    let (db2, _) = Perseas::recover(reopen(&node), conc_cfg()).unwrap();
    assert!(
        db2.last_committed() >= 6,
        "recovery must advance the watermark over durable slots (got {})",
        db2.last_committed()
    );
    // Both groups wrote the same fills over a zeroed region.
    let mut want = vec![0u8; REGION_LEN];
    for i in 0..GROUP {
        want[i * 64..i * 64 + 32].fill(0x10 * (i as u8 + 1));
    }
    assert_eq!(db2.region_snapshot(r).unwrap(), want);
}

/// Opens the canonical group, prepares every member, then commits the
/// whole group (record fan-out only).
fn run_prepared(db: &mut Perseas<SimRemote>, r: RegionId) -> Result<(), TxnError> {
    let tokens = open_group(db, r);
    for &t in &tokens {
        db.prepare_t(t)?;
    }
    db.commit_group(&tokens)
}

#[test]
fn prepared_group_crash_sweep() {
    // Shape first: one fan-out per prepare per mirror, then one record
    // fan-out per mirror for the whole group.
    let (mut db, r, _) = setup(&["a", "b"]);
    db.set_fault_plan(FaultPlan::none());
    run_prepared(&mut db, r).unwrap();
    let total = db.steps_taken();
    assert_eq!(total, 8, "prepared pipeline fan-out shape changed");

    for crash_at in 0..=total {
        let (mut db, r, nodes) = setup(&["a", "b"]);
        db.set_fault_plan(FaultPlan::crash_after(crash_at));
        let res = run_prepared(&mut db, r);
        if crash_at < total {
            assert!(res.is_err(), "crash_at={crash_at}: pipeline must fail");
        } else {
            res.unwrap();
            db.crash();
        }

        let candidates: Vec<Vec<u8>> = nodes
            .iter()
            .map(|n| {
                let (w, table) = durable_state(n);
                oracle(1, |id| is_durable(id, w, &table))
            })
            .collect();
        let (db2, report) = Perseas::recover_best(
            nodes.iter().map(reopen).collect(),
            conc_cfg(),
            perseas_simtime::SimClock::new(),
        )
        .unwrap_or_else(|e| panic!("crash_at={crash_at}: recovery failed: {e}"));
        let got = db2.region_snapshot(r).unwrap();
        assert!(
            candidates.contains(&got),
            "crash_at={crash_at}: recovered image matches no mirror's durable subset \
             (report: rolled_back={:?} last_committed={})",
            report.rolled_back_txns,
            report.last_committed
        );
        for i in 0..GROUP as u64 {
            let id = 1 + i;
            let committed_bytes =
                got[i as usize * 64..i as usize * 64 + 32] == [0x10 * (i as u8 + 1); 32];
            assert_eq!(
                committed_bytes,
                !report.rolled_back_txns.contains(&id) && report.last_committed >= id,
                "crash_at={crash_at}: txn {id} durability disagrees with the report"
            );
        }
    }
}

#[test]
fn prepared_packet_cut_sweep() {
    // Count the clean pipeline's packets once, then cut at every packet
    // boundary of a fresh run: recovery must always equal the durable
    // subset read from the mirror's own bytes.
    let packets = |l: &perseas_sci::SciLink| {
        let st = l.stats();
        st.packets64 + st.packets16
    };
    let clean = {
        let backend = SimRemote::new("mirror");
        let link = backend.link().clone();
        let mut db = Perseas::init(vec![backend], conc_cfg()).unwrap();
        let r = db.malloc(REGION_LEN).unwrap();
        let init: Vec<u8> = (0..REGION_LEN).map(|i| i as u8).collect();
        db.write(r, 0, &init).unwrap();
        db.init_remote_db().unwrap();
        let before = packets(&link);
        run_prepared(&mut db, r).unwrap();
        packets(&link) - before
    };

    let mut saw_partial_group = false;
    for cut_after in 0..=clean {
        let backend = SimRemote::new("mirror");
        let node = backend.node().clone();
        let link = backend.link().clone();
        let mut db = Perseas::init(vec![backend], conc_cfg()).unwrap();
        let r = db.malloc(REGION_LEN).unwrap();
        let init: Vec<u8> = (0..REGION_LEN).map(|i| i as u8).collect();
        db.write(r, 0, &init).unwrap();
        db.init_remote_db().unwrap();

        link.cut_after_packets(cut_after);
        let res = run_prepared(&mut db, r);
        link.heal();

        let (watermark, table) = durable_state(&node);
        let durable: Vec<u64> = (1..=GROUP as u64)
            .filter(|&id| is_durable(id, watermark, &table))
            .collect();
        if res.is_ok() {
            assert_eq!(
                durable.len(),
                GROUP,
                "cut {cut_after}: success reported but records are missing"
            );
        } else if !durable.is_empty() && durable.len() < GROUP {
            saw_partial_group = true;
        }

        db.crash();
        let (db2, _) = Perseas::recover(reopen(&node), conc_cfg())
            .unwrap_or_else(|e| panic!("cut {cut_after}: recovery failed: {e}"));
        let got = db2.region_snapshot(r).unwrap();
        let want = oracle(1, |id| durable.contains(&id));
        assert_eq!(
            got, want,
            "cut {cut_after}: recovered image diverges from the durable subset \
             (watermark {watermark}, table {table:?})"
        );
    }
    assert!(
        saw_partial_group,
        "the sweep never cut inside the record fan-out"
    );
}

#[test]
fn aborting_prepared_txn_restores_mirror_and_frees_claims() {
    let (mut db, r, nodes) = setup(&["m"]);
    let t = db.begin_concurrent().unwrap();
    db.set_range_t(t, r, 0, 32).unwrap();
    db.write_t(t, r, 0, &[0xEE; 32]).unwrap();
    db.prepare_t(t).unwrap();
    // Prepared transactions are frozen.
    assert!(matches!(
        db.set_range_t(t, r, 100, 8),
        Err(TxnError::Unavailable(_))
    ));
    assert!(matches!(
        db.write_t(t, r, 0, &[1; 8]),
        Err(TxnError::Unavailable(_))
    ));
    // Preparing again is an idempotent no-op.
    db.prepare_t(t).unwrap();

    db.abort_t(t).unwrap();
    let init: Vec<u8> = (0..REGION_LEN).map(|i| i as u8).collect();
    assert_eq!(
        db.region_snapshot(r).unwrap(),
        init,
        "abort must roll the local image back"
    );

    // The claims freed immediately: a new transaction takes the range
    // and commits over it.
    let t2 = db.begin_concurrent().unwrap();
    db.set_range_t(t2, r, 0, 32).unwrap();
    db.write_t(t2, r, 0, &[0x55; 32]).unwrap();
    db.commit_t(t2).unwrap();

    db.crash();
    let (db2, report) = Perseas::recover(reopen(&nodes[0]), conc_cfg()).unwrap();
    let mut want = init;
    want[..32].fill(0x55);
    assert_eq!(
        db2.region_snapshot(r).unwrap(),
        want,
        "the aborted prepare must leave no trace (report: rolled_back={:?})",
        report.rolled_back_txns
    );
}

#[test]
fn meta_layout_smoke() {
    // The commit table really sits at the tail of the metadata segment.
    let (mut db, r, nodes) = setup(&["m"]);
    let t = db.begin_concurrent().unwrap();
    db.set_range_t(t, r, 0, 8).unwrap();
    db.write_t(t, r, 0, &[1; 8]).unwrap();
    db.commit_t(t).unwrap();

    let seg = nodes[0].find_by_tag(META_TAG).unwrap();
    let mut image = vec![0u8; seg.len];
    nodes[0].read(seg.id, 0, &mut image).unwrap();
    let header = MetaHeader::decode(&image).unwrap();
    let base = commit_table_offset(seg.len, header.commit_slots as usize);
    assert!(base > OFF_COMMIT);
    let table = decode_commit_table(&image, header.commit_slots as usize);
    assert!(
        header.last_committed == 1 || table.contains(&1),
        "committed id must be durable in watermark or table (w={}, {table:?})",
        header.last_committed
    );
}
