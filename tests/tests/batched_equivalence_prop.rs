//! Property test: the batched, vectored commit pipeline is observationally
//! identical to the legacy per-range path.
//!
//! For arbitrary (overlapping, adjacent, multi-region) range sets, a
//! batched instance and a legacy instance driven through the same history
//! must leave every remote segment on the mirror — database regions, the
//! undo log, and the metadata segment — byte-identical, and recovering
//! from the batched mirror must reproduce the in-memory reference model
//! exactly.

use proptest::prelude::*;

use perseas_core::{Perseas, PerseasConfig, RegionId};
use perseas_rnram::SimRemote;
use perseas_sci::{NodeMemory, SciParams};
use perseas_simtime::SimClock;

const LEN_A: usize = 512;
const LEN_B: usize = 192;

#[derive(Debug, Clone)]
struct Txn {
    // (region selector, offset, len, fill byte)
    ranges: Vec<(bool, usize, usize, u8)>,
    commit: bool,
}

fn txn_strategy() -> impl Strategy<Value = Txn> {
    (
        prop::collection::vec(
            (any::<bool>(), 0usize..LEN_A, 1usize..96, any::<u8>()).prop_map(
                |(second, off, len, b)| {
                    let region_len = if second { LEN_B } else { LEN_A };
                    let off = off % region_len;
                    let len = len.min(region_len - off).max(1);
                    (second, off, len, b)
                },
            ),
            1..10,
        ),
        any::<bool>(),
    )
        .prop_map(|(ranges, commit)| Txn { ranges, commit })
}

fn build(batched: bool) -> (Perseas<SimRemote>, [RegionId; 2], NodeMemory) {
    let cfg = PerseasConfig::default()
        .with_batched_commit(batched)
        .with_initial_undo_capacity(512);
    let backend = SimRemote::new("mirror");
    let node = backend.node().clone();
    let mut db = Perseas::init(vec![backend], cfg).unwrap();
    let ra = db.malloc(LEN_A).unwrap();
    let rb = db.malloc(LEN_B).unwrap();
    db.init_remote_db().unwrap();
    (db, [ra, rb], node)
}

fn apply(db: &mut Perseas<SimRemote>, r: [RegionId; 2], model: &mut [Vec<u8>; 2], txn: &Txn) {
    db.begin_transaction().unwrap();
    let mut staged = model.clone();
    for &(second, off, len, b) in &txn.ranges {
        let ri = second as usize;
        db.set_range(r[ri], off, len).unwrap();
        db.write(r[ri], off, &vec![b; len]).unwrap();
        staged[ri][off..off + len].fill(b);
    }
    if txn.commit {
        db.commit_transaction().unwrap();
        *model = staged;
    } else {
        db.abort_transaction().unwrap();
    }
}

/// Every segment exported on `node`, as `(len, tag, bytes)` in id order.
fn mirror_image(node: &NodeMemory) -> Vec<(usize, u64, Vec<u8>)> {
    let mut segs = node.list_segments().unwrap();
    segs.sort_by_key(|s| s.id.as_raw());
    segs.into_iter()
        .map(|s| {
            let mut buf = vec![0u8; s.len];
            node.read(s.id, 0, &mut buf).unwrap();
            (s.len, s.tag, buf)
        })
        .collect()
}

fn reopen(node: &NodeMemory) -> SimRemote {
    SimRemote::with_parts(SimClock::new(), node.clone(), SciParams::dolphin_1998())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Commit-only histories: both paths allocate the same segments and
    /// leave them byte-identical (the undo log included — batched commits
    /// defer the push but must land the exact same bytes).
    #[test]
    fn batched_mirror_image_is_byte_identical(
        txns in prop::collection::vec(txn_strategy(), 1..6),
    ) {
        let (mut legacy, r, legacy_node) = build(false);
        let (mut batched, _, batched_node) = build(true);
        let mut model_l = [vec![0u8; LEN_A], vec![0u8; LEN_B]];
        let mut model_b = model_l.clone();
        for t in &txns {
            let t = Txn { ranges: t.ranges.clone(), commit: true };
            apply(&mut legacy, r, &mut model_l, &t);
            apply(&mut batched, r, &mut model_b, &t);
        }
        prop_assert_eq!(&model_l, &model_b);

        let li = mirror_image(&legacy_node);
        let bi = mirror_image(&batched_node);
        prop_assert_eq!(li.len(), bi.len());
        for (i, (l, b)) in li.iter().zip(&bi).enumerate() {
            prop_assert_eq!(l.0, b.0, "segment {} length differs", i);
            prop_assert_eq!(l.1, b.1, "segment {} tag differs", i);
            prop_assert!(l.2 == b.2, "segment {} contents differ", i);
        }
    }

    /// Histories with aborts mixed in: the batched path's recovered state
    /// must equal the in-memory model (committed history only), and the
    /// live snapshots of both paths must agree at every step.
    #[test]
    fn batched_recovery_matches_reference_model(
        txns in prop::collection::vec(txn_strategy(), 1..8),
    ) {
        let (mut batched, r, node) = build(true);
        let mut model = [vec![0u8; LEN_A], vec![0u8; LEN_B]];
        for t in &txns {
            apply(&mut batched, r, &mut model, t);
            prop_assert_eq!(&batched.region_snapshot(r[0]).unwrap(), &model[0]);
            prop_assert_eq!(&batched.region_snapshot(r[1]).unwrap(), &model[1]);
        }
        batched.crash();

        let (db2, _) = Perseas::recover(reopen(&node), PerseasConfig::default()).unwrap();
        prop_assert_eq!(db2.region_snapshot(r[0]).unwrap(), model[0].clone());
        prop_assert_eq!(db2.region_snapshot(r[1]).unwrap(), model[1].clone());
    }
}
