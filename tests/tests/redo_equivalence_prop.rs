//! Property test: the REDO-only commit path is observationally
//! equivalent to the undo path.
//!
//! Identical workloads — arbitrary overlapping multi-region range sets,
//! commits and aborts mixed, optional mid-history snapshots — driven
//! through a redo instance and an undo instance must yield identical
//! commit fates at every step and byte-identical recovered database
//! images, including recovery that starts from a snapshot plus a live
//! log tail.

use proptest::prelude::*;

use perseas_core::{Perseas, PerseasConfig, RegionId};
use perseas_rnram::SimRemote;
use perseas_sci::{NodeMemory, SciParams};
use perseas_simtime::SimClock;

const LEN_A: usize = 512;
const LEN_B: usize = 192;

#[derive(Debug, Clone)]
struct Txn {
    // (region selector, offset, len, fill byte)
    ranges: Vec<(bool, usize, usize, u8)>,
    commit: bool,
    // Take a consistent snapshot (redo arm only) after resolving.
    snapshot_after: bool,
}

fn txn_strategy() -> impl Strategy<Value = Txn> {
    (
        prop::collection::vec(
            (any::<bool>(), 0usize..LEN_A, 1usize..96, any::<u8>()).prop_map(
                |(second, off, len, b)| {
                    let region_len = if second { LEN_B } else { LEN_A };
                    let off = off % region_len;
                    let len = len.min(region_len - off).max(1);
                    (second, off, len, b)
                },
            ),
            1..10,
        ),
        any::<bool>(),
        (0u8..4).prop_map(|v| v == 0),
    )
        .prop_map(|(ranges, commit, snapshot_after)| Txn {
            ranges,
            commit,
            snapshot_after,
        })
}

fn build(redo: bool) -> (Perseas<SimRemote>, [RegionId; 2], NodeMemory) {
    // Small segments so longer histories wrap segments and snapshots
    // actually compact.
    let cfg = PerseasConfig::default()
        .with_redo(redo)
        .with_redo_log(2048, 16)
        .with_initial_undo_capacity(512);
    let backend = SimRemote::new(if redo { "redo-mirror" } else { "undo-mirror" });
    let node = backend.node().clone();
    let mut db = Perseas::init(vec![backend], cfg).unwrap();
    let ra = db.malloc(LEN_A).unwrap();
    let rb = db.malloc(LEN_B).unwrap();
    db.init_remote_db().unwrap();
    (db, [ra, rb], node)
}

/// Applies one scripted transaction, returning its fate as
/// `(committed, new_watermark)`.
fn apply(
    db: &mut Perseas<SimRemote>,
    r: [RegionId; 2],
    model: &mut [Vec<u8>; 2],
    txn: &Txn,
    snapshots: bool,
) -> (bool, u64) {
    db.begin_transaction().unwrap();
    let mut staged = model.clone();
    for &(second, off, len, b) in &txn.ranges {
        let ri = second as usize;
        db.set_range(r[ri], off, len).unwrap();
        db.write(r[ri], off, &vec![b; len]).unwrap();
        staged[ri][off..off + len].fill(b);
    }
    if txn.commit {
        db.commit_transaction().unwrap();
        *model = staged;
    } else {
        db.abort_transaction().unwrap();
    }
    if snapshots && txn.snapshot_after {
        db.redo_snapshot().unwrap();
    }
    (txn.commit, db.last_committed())
}

fn reopen(node: &NodeMemory) -> SimRemote {
    SimRemote::with_parts(SimClock::new(), node.clone(), SciParams::dolphin_1998())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Identical histories on both modes: identical commit fates and
    /// watermarks at every step, identical live snapshots, and —
    /// after a crash — byte-identical recovered images. The redo arm
    /// takes no snapshots here, so recovery replays the full log.
    #[test]
    fn redo_and_undo_recover_byte_identical_images(
        txns in prop::collection::vec(txn_strategy(), 1..8),
    ) {
        let (mut undo, r, undo_node) = build(false);
        let (mut redo, _, redo_node) = build(true);
        let mut model_u = [vec![0u8; LEN_A], vec![0u8; LEN_B]];
        let mut model_r = model_u.clone();
        let mut committed_max = 0u64;
        for t in &txns {
            let fate_u = apply(&mut undo, r, &mut model_u, t, false);
            let fate_r = apply(&mut redo, r, &mut model_r, t, false);
            prop_assert_eq!(fate_u, fate_r, "commit fates diverged");
            committed_max = fate_u.1;
            prop_assert_eq!(
                redo.region_snapshot(r[0]).unwrap(),
                undo.region_snapshot(r[0]).unwrap()
            );
            prop_assert_eq!(
                redo.region_snapshot(r[1]).unwrap(),
                undo.region_snapshot(r[1]).unwrap()
            );
        }
        undo.crash();
        redo.crash();

        let (u2, _) = Perseas::recover(reopen(&undo_node), PerseasConfig::default()).unwrap();
        let (r2, _) = Perseas::recover(
            reopen(&redo_node),
            PerseasConfig::default().with_redo(true),
        )
        .unwrap();
        prop_assert_eq!(u2.region_snapshot(r[0]).unwrap(), model_u[0].clone());
        prop_assert_eq!(u2.region_snapshot(r[1]).unwrap(), model_u[1].clone());
        prop_assert_eq!(r2.region_snapshot(r[0]).unwrap(), u2.region_snapshot(r[0]).unwrap());
        prop_assert_eq!(r2.region_snapshot(r[1]).unwrap(), u2.region_snapshot(r[1]).unwrap());
        // Every durable commit is covered by both recovered watermarks.
        // (The exact values may differ: undo recovery consumes the id of
        // a trailing aborted transaction whose stale records sit at the
        // log head, while the redo log holds no trace of clean aborts.)
        prop_assert!(r2.last_committed() >= committed_max);
        prop_assert!(u2.last_committed() >= committed_max);
    }

    /// The same equivalence when the redo arm snapshots (and compacts)
    /// mid-history: recovery starts from the newest snapshot image plus
    /// the live log tail, and must still land on the exact model bytes.
    #[test]
    fn recovery_from_snapshot_plus_tail_matches_undo(
        txns in prop::collection::vec(txn_strategy(), 1..10),
    ) {
        let (mut undo, r, undo_node) = build(false);
        let (mut redo, _, redo_node) = build(true);
        let mut model_u = [vec![0u8; LEN_A], vec![0u8; LEN_B]];
        let mut model_r = model_u.clone();
        let mut snapshots = 0usize;
        let mut committed_max = 0u64;
        for t in &txns {
            let fate_u = apply(&mut undo, r, &mut model_u, t, false);
            let fate_r = apply(&mut redo, r, &mut model_r, t, true);
            snapshots += t.snapshot_after as usize;
            prop_assert_eq!(fate_u, fate_r, "commit fates diverged");
            committed_max = fate_u.1;
        }
        undo.crash();
        redo.crash();

        let (u2, _) = Perseas::recover(reopen(&undo_node), PerseasConfig::default()).unwrap();
        let (r2, rep) = Perseas::recover(
            reopen(&redo_node),
            PerseasConfig::default().with_redo(true),
        )
        .unwrap();
        prop_assert_eq!(r2.region_snapshot(r[0]).unwrap(), u2.region_snapshot(r[0]).unwrap());
        prop_assert_eq!(r2.region_snapshot(r[1]).unwrap(), u2.region_snapshot(r[1]).unwrap());
        prop_assert_eq!(r2.region_snapshot(r[0]).unwrap(), model_u[0].clone());
        prop_assert!(r2.last_committed() >= committed_max);
        // A snapshot right before the crash leaves nothing to replay.
        if snapshots > 0 && txns.last().is_some_and(|t| t.snapshot_after) {
            prop_assert_eq!(rep.replayed_records, 0, "snapshot covers the whole log");
        }
    }

    /// The recovered redo instance is a fully working database: more
    /// transactions commit on it and a second recovery sees them.
    #[test]
    fn recovered_redo_instance_keeps_working(
        txns in prop::collection::vec(txn_strategy(), 1..5),
    ) {
        let (mut redo, r, node) = build(true);
        let mut model = [vec![0u8; LEN_A], vec![0u8; LEN_B]];
        for t in &txns {
            apply(&mut redo, r, &mut model, t, true);
        }
        redo.crash();

        let (mut r2, _) = Perseas::recover(
            reopen(&node),
            PerseasConfig::default().with_redo(true).with_redo_log(2048, 16),
        )
        .unwrap();
        r2.transaction(|t| t.update(r[0], 0, &[0x77; 16])).unwrap();
        model[0][..16].fill(0x77);
        r2.crash();

        let (r3, _) = Perseas::recover(
            reopen(&node),
            PerseasConfig::default().with_redo(true),
        )
        .unwrap();
        prop_assert_eq!(r3.region_snapshot(r[0]).unwrap(), model[0].clone());
        prop_assert_eq!(r3.region_snapshot(r[1]).unwrap(), model[1].clone());
    }
}
