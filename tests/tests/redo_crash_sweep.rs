//! Exhaustive crash-point sweep over the REDO commit path.
//!
//! The redo pipeline has more moving parts than the undo paths — log
//! appends (segment opens, record bursts, tail lines), commit markers,
//! snapshots, and compactions — and every one of them is a fault step.
//! Each test crashes a fixed workload after every possible protocol step
//! `k`, then recovers from each surviving mirror independently. Every
//! recovery must observe a transactionally consistent state: each
//! transaction all-or-nothing (atomicity), and everything the library
//! reported committed present (durability). Snapshots and compactions
//! must never change the logical state, no matter where they die.

use perseas_core::{FaultPlan, Perseas, PerseasConfig, RegionId, TxnError};
use perseas_integration::reopen;
use perseas_rnram::SimRemote;
use perseas_sci::{NodeMemory, SciParams};
use perseas_simtime::SimClock;

const LEN_A: usize = 256;
const LEN_B: usize = 128;

fn redo_cfg() -> PerseasConfig {
    // Small segments so the sweep crosses segment boundaries (and the
    // snapshot sweep actually compacts) within a short workload.
    PerseasConfig::default()
        .with_redo(true)
        .with_redo_log(512, 8)
}

fn setup2(cfg: PerseasConfig) -> (Perseas<SimRemote>, [RegionId; 2], NodeMemory, NodeMemory) {
    let clock = SimClock::new();
    let a = SimRemote::with_parts(
        clock.clone(),
        NodeMemory::new("a"),
        SciParams::dolphin_1998(),
    );
    let b = SimRemote::with_parts(
        clock.clone(),
        NodeMemory::new("b"),
        SciParams::dolphin_1998(),
    );
    let (na, nb) = (a.node().clone(), b.node().clone());
    let mut db = Perseas::init_with_clock(vec![a, b], cfg, clock).unwrap();
    let ra = db.malloc(LEN_A).unwrap();
    let rb = db.malloc(LEN_B).unwrap();
    let (pa, pb) = pre();
    db.write(ra, 0, &pa).unwrap();
    db.write(rb, 0, &pb).unwrap();
    db.init_remote_db().unwrap();
    (db, [ra, rb], na, nb)
}

/// One multi-range transaction touching both regions with overlapping
/// and adjacent declarations, exactly as the undo-path sweeps use.
fn run_txn(db: &mut Perseas<SimRemote>, r: [RegionId; 2]) -> Result<(), TxnError> {
    db.begin_transaction()?;
    db.set_range(r[0], 0, 40)?;
    db.write(r[0], 0, &[0xA1; 40])?;
    db.set_range(r[0], 32, 32)?;
    db.write(r[0], 32, &[0xA2; 32])?;
    db.set_ranges(&[(r[0], 100, 24), (r[1], 0, 16), (r[1], 16, 8)])?;
    db.write(r[0], 100, &[0xA3; 24])?;
    db.write(r[1], 0, &[0xB1; 16])?;
    db.write(r[1], 16, &[0xB2; 8])?;
    db.set_range(r[0], 200, 8)?;
    db.write(r[0], 200, &[0xA4; 8])?;
    db.commit_transaction()
}

fn pre() -> (Vec<u8>, Vec<u8>) {
    (
        (0..LEN_A).map(|i| i as u8).collect(),
        (0..LEN_B).map(|i| (i as u8) ^ 0x5A).collect(),
    )
}

fn post() -> (Vec<u8>, Vec<u8>) {
    let (mut a, mut b) = pre();
    a[0..40].fill(0xA1);
    a[32..64].fill(0xA2);
    a[100..124].fill(0xA3);
    a[200..208].fill(0xA4);
    b[0..16].fill(0xB1);
    b[16..24].fill(0xB2);
    (a, b)
}

fn recover_cfg() -> PerseasConfig {
    PerseasConfig::default().with_redo(true)
}

#[test]
fn redo_commit_survives_every_crash_point() {
    // Count the protocol steps of one clean run.
    let (mut db, r, _, _) = setup2(redo_cfg());
    run_txn(&mut db, r).unwrap();
    let total = db.steps_taken();
    assert!(total >= 4, "redo path unexpectedly short: {total}");

    for crash_at in 0..=total + 1 {
        let (mut db, r, na, nb) = setup2(redo_cfg());
        db.set_fault_plan(FaultPlan::crash_after(crash_at));
        let res = run_txn(&mut db, r);
        if crash_at > total {
            res.as_ref()
                .unwrap_or_else(|e| panic!("crash_at={crash_at}: outlived plan failed: {e}"));
        }

        let (pa, pb) = pre();
        let (qa, qb) = post();
        for (name, node) in [("a", &na), ("b", &nb)] {
            let (db2, _) = Perseas::recover(reopen(node), recover_cfg()).unwrap_or_else(|e| {
                panic!("crash_at={crash_at}: mirror {name} unrecoverable: {e}")
            });
            let ga = db2.region_snapshot(r[0]).unwrap();
            let gb = db2.region_snapshot(r[1]).unwrap();
            let is_pre = ga == pa && gb == pb;
            let is_post = ga == qa && gb == qb;
            assert!(
                is_pre || is_post,
                "crash_at={crash_at}: mirror {name} holds a partial state"
            );
            if res.is_ok() {
                assert!(
                    is_post,
                    "crash_at={crash_at}: durable txn missing on mirror {name}"
                );
            }
        }
    }
}

/// The expected image of region `r` after `n` committed script
/// transactions: txn `i` (1-based) writes `[i; 8]` at `(i-1)*8`.
fn scripted_state(n: u64) -> Vec<u8> {
    let mut a: Vec<u8> = (0..LEN_A).map(|i| i as u8).collect();
    for i in 1..=n {
        let at = ((i - 1) as usize * 8) % (LEN_A - 8);
        a[at..at + 8].fill(i as u8);
    }
    a
}

/// Runs the snapshot/compaction script, stopping at the first error.
/// Returns how many transactions reported success.
fn run_script(db: &mut Perseas<SimRemote>, r: RegionId) -> u64 {
    let mut ok = 0u64;
    let txn = |db: &mut Perseas<SimRemote>, i: u64| -> Result<(), TxnError> {
        let at = ((i - 1) as usize * 8) % (LEN_A - 8);
        db.begin_transaction()?;
        db.set_range(r, at, 8)?;
        db.write(r, at, &[i as u8; 8])?;
        db.commit_transaction()
    };
    for i in 1..=4u64 {
        if txn(db, i).is_err() {
            return ok;
        }
        ok = i;
    }
    if db.redo_snapshot().is_err() {
        return ok;
    }
    for i in 5..=6u64 {
        if txn(db, i).is_err() {
            return ok;
        }
        ok = i;
    }
    if db.redo_snapshot().is_err() {
        return ok;
    }
    if txn(db, 7).is_ok() {
        ok = 7;
    }
    ok
}

/// Crashes the commit/snapshot/compaction script after every protocol
/// step. The recovered state must always equal the image after exactly
/// `last_committed` transactions — snapshots and compactions are pure
/// log maintenance and must never lose or invent a commit.
#[test]
fn redo_snapshot_and_compaction_survive_every_crash_point() {
    let (mut db, r, _, _) = setup2(redo_cfg());
    let r0 = r[0];
    assert_eq!(run_script(&mut db, r0), 7, "clean script commits all 7");
    let total = db.steps_taken();
    // The script must actually compact: small segments + two snapshots.
    assert!(total > 20, "script too short to cover maintenance: {total}");

    for crash_at in 0..=total + 1 {
        let (mut db, r, na, nb) = setup2(redo_cfg());
        db.set_fault_plan(FaultPlan::crash_after(crash_at));
        let ok = run_script(&mut db, r[0]);
        if crash_at > total {
            assert_eq!(ok, 7, "crash_at={crash_at}: outlived plan lost commits");
        }

        for (name, node) in [("a", &na), ("b", &nb)] {
            let (db2, _) = Perseas::recover(reopen(node), recover_cfg()).unwrap_or_else(|e| {
                panic!("crash_at={crash_at}: mirror {name} unrecoverable: {e}")
            });
            let got = db2.region_snapshot(r[0]).unwrap();
            // Each script txn writes a distinct range, so the image
            // uniquely identifies how many commits survived. (The
            // watermark itself may sit higher: recovery consumes the
            // ids of tombstoned in-flight transactions too.)
            let n = (0..=7u64)
                .find(|&n| got == scripted_state(n))
                .unwrap_or_else(|| {
                    panic!("crash_at={crash_at}: mirror {name} holds a partial state")
                });
            assert!(
                n >= ok,
                "crash_at={crash_at}: mirror {name} lost a durable commit ({n} < {ok})"
            );
            assert!(
                db2.last_committed() >= n,
                "crash_at={crash_at}: watermark below applied commits"
            );
        }
    }
}

/// A redo append is one crash *point*, but the SCI link can still die
/// mid-message, leaving a packet-aligned prefix of the burst applied
/// (records without the tail line, a torn record, a dir entry without
/// its records...). Sweep the cut across every packet: the recovered
/// state must always be all-or-nothing.
#[test]
fn torn_redo_bursts_roll_back_cleanly() {
    for cut_at in 0..=40u64 {
        let clock = SimClock::new();
        let backend = SimRemote::with_parts(
            clock.clone(),
            NodeMemory::new("m"),
            SciParams::dolphin_1998(),
        );
        let node = backend.node().clone();
        let link = backend.link().clone();
        let mut db = Perseas::init_with_clock(vec![backend], redo_cfg(), clock).unwrap();
        let ra = db.malloc(LEN_A).unwrap();
        let rb = db.malloc(LEN_B).unwrap();
        let (pa, pb) = pre();
        db.write(ra, 0, &pa).unwrap();
        db.write(rb, 0, &pb).unwrap();
        db.init_remote_db().unwrap();

        link.cut_after_packets(cut_at);
        let res = run_txn(&mut db, [ra, rb]);
        link.heal();
        if let Err(e) = &res {
            assert!(
                matches!(e, TxnError::Unavailable(_)),
                "cut_at={cut_at}: unexpected error {e}"
            );
        }

        let (db2, _) = Perseas::recover(reopen(&node), recover_cfg())
            .unwrap_or_else(|e| panic!("cut_at={cut_at}: unrecoverable: {e}"));
        let ga = db2.region_snapshot(ra).unwrap();
        let gb = db2.region_snapshot(rb).unwrap();
        let (qa, qb) = post();
        let is_pre = ga == pa && gb == pb;
        let is_post = ga == qa && gb == qb;
        assert!(
            is_pre || is_post,
            "cut_at={cut_at}: torn redo burst left a partial state"
        );
        if res.is_ok() {
            assert!(is_post, "cut_at={cut_at}: durable txn lost");
        }
    }
}

/// Group commits in redo mode: one coalesced log append for the whole
/// group, then the slot/watermark fan-out. Crash after every step; each
/// member must recover all-or-nothing, and a successful group must be
/// fully durable.
#[test]
fn redo_group_commit_survives_every_crash_point() {
    let cfg = redo_cfg().with_concurrent(true);
    let members = 3usize;

    let run_group = |db: &mut Perseas<SimRemote>, r: RegionId| -> Result<(), TxnError> {
        let ts: Vec<_> = (0..members)
            .map(|m| {
                let t = db.begin_concurrent()?;
                db.set_range_t(t, r, m * 32, 16)?;
                db.write_t(t, r, m * 32, &[0xC0 + m as u8; 16])?;
                Ok::<_, TxnError>(t)
            })
            .collect::<Result<_, _>>()?;
        db.commit_group(&ts)
    };

    let (mut db, r, _, _) = setup2(cfg);
    run_group(&mut db, r[0]).unwrap();
    let total = db.steps_taken();

    for crash_at in 0..=total + 1 {
        let (mut db, r, na, nb) = setup2(cfg);
        db.set_fault_plan(FaultPlan::crash_after(crash_at));
        let res = run_group(&mut db, r[0]);
        let committed_ok = res.is_ok() || matches!(res, Err(TxnError::CommitInDoubt { .. }));

        let (pa, _) = pre();
        for (name, node) in [("a", &na), ("b", &nb)] {
            let (db2, _) = Perseas::recover(reopen(node), recover_cfg().with_concurrent(true))
                .unwrap_or_else(|e| {
                    panic!("crash_at={crash_at}: mirror {name} unrecoverable: {e}")
                });
            let got = db2.region_snapshot(r[0]).unwrap();
            for m in 0..members {
                let slice = &got[m * 32..m * 32 + 16];
                let is_pre = slice == &pa[m * 32..m * 32 + 16];
                let is_post = slice.iter().all(|&b| b == 0xC0 + m as u8);
                assert!(
                    is_pre || is_post,
                    "crash_at={crash_at}: mirror {name} member {m} partial"
                );
                if committed_ok {
                    assert!(
                        is_post,
                        "crash_at={crash_at}: mirror {name} lost durable member {m}"
                    );
                }
            }
        }
    }
}

/// An abort after a successful prepare must tombstone the member's log
/// records: crash right after the abort and recovery must restore the
/// pre-state, never replay the prepared after-images.
#[test]
fn aborted_prepared_member_never_replays() {
    let cfg = redo_cfg().with_concurrent(true);
    let (mut db, r, na, nb) = setup2(cfg);
    let (pa, _) = pre();

    let t = db.begin_concurrent().unwrap();
    db.set_range_t(t, r[0], 0, 32).unwrap();
    db.write_t(t, r[0], 0, &[0xDD; 32]).unwrap();
    db.prepare_t(t).unwrap();
    // The after-images are in the log now; the abort must kill them.
    db.abort_t(t).unwrap();

    // A later commit forces recovery to replay past the dead records.
    let t2 = db.begin_concurrent().unwrap();
    db.set_range_t(t2, r[0], 64, 8).unwrap();
    db.write_t(t2, r[0], 64, &[0xEE; 8]).unwrap();
    db.commit_t(t2).unwrap();

    for (name, node) in [("a", &na), ("b", &nb)] {
        let (db2, _) =
            Perseas::recover(reopen(node), recover_cfg().with_concurrent(true)).unwrap();
        let got = db2.region_snapshot(r[0]).unwrap();
        assert_eq!(&got[..32], &pa[..32], "mirror {name} replayed aborted data");
        assert_eq!(&got[64..72], &[0xEE; 8][..], "mirror {name} lost commit");
    }
}

/// Recovering a redo image with an undo config (or vice versa) must be
/// refused with a typed error, not silently misread.
#[test]
fn commit_path_mismatch_is_refused() {
    let (mut db, r, na, _) = setup2(redo_cfg());
    db.transaction(|t| t.update(r[0], 0, &[1; 8])).unwrap();
    let err = Perseas::recover(reopen(&na), PerseasConfig::default()).unwrap_err();
    assert!(
        matches!(&err, TxnError::Unavailable(m) if m.contains("commit-path mismatch")),
        "got {err:?}"
    );

    let (mut db, r, na, _) = setup2(PerseasConfig::default());
    db.transaction(|t| t.update(r[0], 0, &[1; 8])).unwrap();
    let err = Perseas::recover(reopen(&na), recover_cfg()).unwrap_err();
    assert!(
        matches!(&err, TxnError::Unavailable(m) if m.contains("commit-path mismatch")),
        "got {err:?}"
    );
}
