//! Cross-system integration: every system of the paper's comparison must
//! produce byte-identical databases for the same workload history, with
//! its invariants intact — throughput may differ by orders of magnitude,
//! correctness may not.

use perseas_integration::all_systems;
use perseas_txn::RegionId;
use perseas_workloads::{
    run_workload, DebitCredit, OrderEntry, OrderEntryScale, Synthetic, Workload,
};

/// Runs the same deterministic workload on every system and compares the
/// final database images byte for byte.
fn assert_identical_images<W, F>(mut make_workload: F, txns: u64, regions: u32)
where
    W: Workload,
    F: FnMut() -> W,
{
    let mut reference: Option<(String, Vec<Vec<u8>>)> = None;
    for (name, mut tm) in all_systems() {
        let mut wl = make_workload();
        wl.setup(tm.as_mut()).expect("setup");
        run_workload(tm.as_mut(), &mut wl, txns).expect("run");
        wl.check(&*tm).expect("invariants");

        let image: Vec<Vec<u8>> = (0..regions)
            .map(|r| {
                let region = RegionId::from_raw(r);
                let len = tm.region_len(region).expect("region");
                let mut buf = vec![0u8; len];
                tm.read(region, 0, &mut buf).expect("read");
                buf
            })
            .collect();
        match &reference {
            None => reference = Some((name.to_string(), image)),
            Some((ref_name, ref_image)) => {
                assert_eq!(
                    ref_image,
                    &image,
                    "{name} diverged from {ref_name} on {}",
                    wl.name()
                );
            }
        }
    }
}

#[test]
fn all_systems_agree_on_synthetic() {
    assert_identical_images(|| Synthetic::new(1 << 16, 128, 77), 200, 1);
}

#[test]
fn all_systems_agree_on_debit_credit() {
    assert_identical_images(DebitCredit::small, 400, 4);
}

#[test]
fn all_systems_agree_on_order_entry() {
    assert_identical_images(|| OrderEntry::new(OrderEntryScale::tiny(), 5), 200, 4);
}

#[test]
fn aborts_do_not_diverge_systems() {
    // Interleave commits and aborts by hand on every system.
    let mut reference: Option<Vec<u8>> = None;
    for (name, mut tm) in all_systems() {
        let r = tm.alloc_region(64).expect("alloc");
        tm.publish().expect("publish");
        for i in 0..16u8 {
            tm.begin_transaction().expect("begin");
            tm.set_range(r, (i as usize % 8) * 8, 8).expect("set_range");
            tm.write(r, (i as usize % 8) * 8, &[i; 8]).expect("write");
            if i % 3 == 0 {
                tm.abort_transaction().expect("abort");
            } else {
                tm.commit_transaction().expect("commit");
            }
        }
        let mut buf = vec![0u8; 64];
        tm.read(r, 0, &mut buf).expect("read");
        match &reference {
            None => reference = Some(buf),
            Some(want) => assert_eq!(want, &buf, "{name} diverged"),
        }
    }
}

#[test]
fn throughput_ordering_matches_the_paper() {
    // RVM (disk) must be orders of magnitude slower than Rio-RVM, which is
    // slower than Vista and PERSEAS; PERSEAS and Vista are within ~3x of
    // each other (the paper: "PERSEAS performs very close to Vista").
    let mut tps = std::collections::HashMap::new();
    for (name, mut tm) in all_systems() {
        let mut wl = DebitCredit::paper();
        wl.setup(tm.as_mut()).expect("setup");
        let n = if name == "rvm" { 200 } else { 5_000 };
        let report = run_workload(tm.as_mut(), &mut wl, n).expect("run");
        tps.insert(name, report.tps());
    }
    assert!(tps["rio-rvm"] > tps["rvm"] * 10.0, "{tps:?}");
    assert!(tps["perseas"] > tps["rio-rvm"], "{tps:?}");
    assert!(tps["vista"] > tps["rio-rvm"], "{tps:?}");
    let ratio = tps["vista"] / tps["perseas"];
    assert!((0.3..=3.0).contains(&ratio), "{tps:?}");
}

#[test]
fn perseas_beats_rvm_by_orders_of_magnitude_on_small_txns() {
    let mut tps = std::collections::HashMap::new();
    for (name, mut tm) in all_systems() {
        let mut wl = Synthetic::new(8 << 20, 16, 7);
        wl.setup(tm.as_mut()).expect("setup");
        let n = if name == "rvm" { 150 } else { 10_000 };
        let report = run_workload(tm.as_mut(), &mut wl, n).expect("run");
        tps.insert(name, report.tps());
    }
    // The paper's headline: several orders of magnitude over RVM.
    assert!(
        tps["perseas"] > tps["rvm"] * 100.0,
        "expected >=2 orders of magnitude: {tps:?}"
    );
    assert!(tps["perseas"] > 100_000.0, "{tps:?}");
}

#[test]
fn all_systems_agree_on_filesys() {
    use perseas_workloads::{FileSys, FileSysScale};
    assert_identical_images(|| FileSys::new(FileSysScale::tiny(), 3), 300, 3);
}
