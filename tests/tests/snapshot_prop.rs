//! Snapshot-consistency property: 256 random interleavings of writers
//! and snapshot readers, every snapshot read checked against a serial
//! reference image.
//!
//! Each case replays a seeded schedule of writer steps (claim + write,
//! commit, abort — with claim conflicts predicted by a model claim
//! table) interleaved with snapshot activity (open, read, re-read,
//! close). The model records the committed image at the instant each
//! snapshot is opened; since a snapshot pins the commit watermark,
//! every later `read_s` on it must return exactly those bytes — i.e. the
//! serial-reference image at a watermark no newer than the snapshot's —
//! and repeated reads must be byte-identical. A subset of seeds twin-runs
//! over a real TCP server and must produce the same read digest and
//! final image as the sim run.

use perseas_core::{Perseas, PerseasConfig, SnapshotToken, TxnError, TxnToken};
use perseas_rnram::server::Server;
use perseas_rnram::{AnyRemote, RemoteMemory, SimRemote};
use perseas_simtime::det_rng;

const LEN: usize = 128;
const STEPS: usize = 60;
const MAX_TXNS: usize = 3;
const MAX_SNAPS: usize = 3;

fn cfg() -> PerseasConfig {
    PerseasConfig::default()
        .with_concurrent(true)
        .with_mvcc(true)
}

struct OpenTxn {
    token: TxnToken,
    claims: Vec<(usize, usize)>,
    writes: Vec<(usize, usize, u8)>,
}

/// Runs one seeded schedule against `db`, panicking (with the seed) on
/// any snapshot read that diverges from the serial reference. Returns
/// `(final committed image, digest of every snapshot read)`.
fn run_case<M: RemoteMemory>(mut db: Perseas<M>, seed: u64) -> (Vec<u8>, u64) {
    let mut rng = det_rng(seed);
    let r = db.malloc(LEN).unwrap();
    db.init_remote_db().unwrap();

    // The serial reference: the committed image right now.
    let mut model = vec![0u8; LEN];
    let mut txns: Vec<OpenTxn> = Vec::new();
    let mut snaps: Vec<(SnapshotToken, Vec<u8>)> = Vec::new();
    let mut digest = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    let mut fill = 0u8;

    for _ in 0..STEPS {
        match rng.gen_index(10) {
            // Open a writer.
            0 | 1 if txns.len() < MAX_TXNS => {
                let token = db.begin_concurrent().unwrap();
                txns.push(OpenTxn {
                    token,
                    claims: Vec::new(),
                    writes: Vec::new(),
                });
            }
            // Claim + write a random range on a random open writer.
            2..=4 if !txns.is_empty() => {
                let i = rng.gen_index(txns.len());
                let off = rng.gen_index(LEN - 1);
                let len = 1 + rng.gen_index((LEN - off).min(24));
                let conflict = txns.iter().enumerate().any(|(j, t)| {
                    j != i && t.claims.iter().any(|&(s, e)| s < off + len && off < e)
                });
                match db.set_range_t(txns[i].token, r, off, len) {
                    Ok(()) => {
                        assert!(!conflict, "seed {seed}: engine missed a model conflict");
                        fill = fill.wrapping_add(1).max(1);
                        db.write_t(txns[i].token, r, off, &vec![fill; len]).unwrap();
                        txns[i].claims.push((off, off + len));
                        txns[i].writes.push((off, len, fill));
                    }
                    Err(TxnError::Conflict { .. }) => {
                        assert!(conflict, "seed {seed}: engine invented a conflict");
                        let t = txns.remove(i);
                        db.abort_t(t.token).unwrap();
                    }
                    Err(e) => panic!("seed {seed}: unexpected claim error: {e}"),
                }
            }
            // Commit a random open writer: its writes join the reference.
            5 | 6 if !txns.is_empty() => {
                let t = txns.remove(rng.gen_index(txns.len()));
                db.commit_group(&[t.token]).unwrap();
                for (off, len, b) in t.writes {
                    model[off..off + len].fill(b);
                }
            }
            // Abort a random open writer: it contributes nothing.
            7 if !txns.is_empty() => {
                let t = txns.remove(rng.gen_index(txns.len()));
                db.abort_t(t.token).unwrap();
            }
            // Open a snapshot, remembering the reference image it pins.
            8 if snaps.len() < MAX_SNAPS => {
                let snap = db.begin_snapshot().unwrap();
                snaps.push((snap, model.clone()));
            }
            // Close a random snapshot.
            9 if !snaps.is_empty() => {
                let (snap, _) = snaps.remove(rng.gen_index(snaps.len()));
                db.end_snapshot(snap);
            }
            _ => {}
        }

        // Every open snapshot serves a random read, twice: it must equal
        // the reference image pinned at open, both times, despite any
        // open writers' dirty bytes and any commits since.
        for (snap, pinned) in &snaps {
            let off = rng.gen_index(LEN - 1);
            let len = 1 + rng.gen_index(LEN - off);
            let a = db
                .read_range_s(*snap, r, off, len)
                .unwrap_or_else(|e| panic!("seed {seed}: snapshot read aborted: {e}"));
            assert_eq!(
                a,
                &pinned[off..off + len],
                "seed {seed}: snapshot diverged from the serial reference at [{off}, {})",
                off + len
            );
            let b = db.read_range_s(*snap, r, off, len).unwrap();
            assert_eq!(a, b, "seed {seed}: repeated snapshot read differed");
            for byte in a {
                digest = (digest ^ byte as u64).wrapping_mul(0x100_0000_01b3);
            }
        }
    }

    for t in txns.drain(..) {
        db.abort_t(t.token).unwrap();
    }
    for (snap, pinned) in snaps.drain(..) {
        // Still exact after the teardown aborts.
        assert_eq!(
            db.read_range_s(snap, r, 0, LEN).unwrap(),
            pinned,
            "seed {seed}: snapshot diverged after teardown"
        );
        db.end_snapshot(snap);
    }
    assert_eq!(db.open_snapshot_count(), 0);
    assert_eq!(
        db.version_store_bytes(),
        0,
        "seed {seed}: version store must drain once no snapshot is open"
    );
    let image = db.region_snapshot(r).unwrap();
    assert_eq!(image, model, "seed {seed}: committed image diverged");
    (image, digest)
}

fn sim_db(name: &str) -> Perseas<SimRemote> {
    Perseas::init(vec![SimRemote::new(name)], cfg()).unwrap()
}

#[test]
fn snapshot_reads_match_the_serial_reference_across_256_interleavings() {
    for seed in 0..256u64 {
        run_case(sim_db(&format!("prop-{seed}")), seed);
    }
}

#[test]
fn tcp_twin_runs_produce_identical_snapshot_reads() {
    for seed in 0..8u64 {
        let sim = run_case(sim_db(&format!("twin-{seed}")), seed);
        let server = Server::bind(format!("twin-tcp-{seed}"), "127.0.0.1:0")
            .unwrap()
            .start();
        let mirror = AnyRemote::connect_auto(server.addr()).unwrap();
        let tcp = run_case(Perseas::init(vec![mirror], cfg()).unwrap(), seed);
        server.shutdown();
        assert_eq!(sim, tcp, "seed {seed}: sim and TCP runs diverged");
    }
}
