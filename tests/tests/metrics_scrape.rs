//! Scrape-shaped observability test: run a realistic mixed workload —
//! batched commits, a group commit, and one injected mirror failure —
//! against real TCP mirror servers with a live `/metrics` endpoint,
//! then scrape it over HTTP exactly as Prometheus would and check the
//! numbers against ground truth the engine itself reports.
//!
//! The invariants under test are the ones an operator would alarm on:
//! the committed-transactions counter equals `last_committed`, exactly
//! one commit is recorded as degraded after exactly one mirror loss,
//! and the whole exposition parses.

use perseas_core::{MirrorHealth, Perseas, PerseasConfig};
use perseas_obs::{parse_exposition, scrape, MetricsServer, Registry, Sample};
use perseas_rnram::server::Server;
use perseas_rnram::TcpRemote;

/// Sum of every sample of `name`, across all label sets.
fn total(samples: &[Sample], name: &str) -> f64 {
    samples
        .iter()
        .filter(|s| s.name == name)
        .map(|s| s.value)
        .sum()
}

/// The single sample of `name` whose `key` label equals `val`.
fn labelled(samples: &[Sample], name: &str, key: &str, val: &str) -> f64 {
    samples
        .iter()
        .find(|s| s.name == name && s.label(key) == Some(val))
        .unwrap_or_else(|| panic!("no {name}{{{key}=\"{val}\"}} in scrape"))
        .value
}

#[test]
fn scraped_metrics_match_engine_ground_truth() {
    // One registry spanning both mirror servers, the client transport,
    // and the transaction engine; one scrape sees the whole stack.
    let registry = Registry::new();
    let sa = Server::bind("scrape-a", "127.0.0.1:0")
        .unwrap()
        .with_metrics(&registry)
        .start();
    let sb = Server::bind("scrape-b", "127.0.0.1:0")
        .unwrap()
        .with_metrics(&registry)
        .start();
    let metrics = MetricsServer::serve("127.0.0.1:0", registry.clone()).unwrap();

    let mut conn_a = TcpRemote::connect_auto(sa.addr()).unwrap();
    conn_a.set_metrics(&registry);
    let mut conn_b = TcpRemote::connect_auto(sb.addr()).unwrap();
    conn_b.set_metrics(&registry);

    // The concurrent engine implies the batched commit pipeline, so the
    // legacy-facade commits below exercise batched commits while the
    // token API drives a group commit through the same database.
    let mut db = Perseas::init(
        vec![conn_a, conn_b],
        PerseasConfig::default().with_concurrent(true),
    )
    .unwrap();
    db.set_metrics(&registry);
    let r = db.malloc(4096).unwrap();
    db.init_remote_db().unwrap();

    // 10 batched commits.
    for i in 0..10u64 {
        db.begin_transaction().unwrap();
        let slot = (i as usize % 64) * 8;
        db.set_range(r, slot, 8).unwrap();
        db.write(r, slot, &i.to_le_bytes()).unwrap();
        db.commit_transaction().unwrap();
    }

    // One group commit covering 4 transactions.
    let tokens: Vec<_> = (0..4)
        .map(|i| {
            let t = db.begin_concurrent().unwrap();
            let slot = 1024 + i * 256;
            db.set_range_t(t, r, slot, 8).unwrap();
            db.write_t(t, r, slot, &[i as u8 + 1; 8]).unwrap();
            db.prepare_t(t).unwrap();
            t
        })
        .collect();
    db.commit_group(&tokens).unwrap();

    // Inject exactly one mirror failure: mirror b dies, and the next
    // commit must fence it and complete degraded on the survivor.
    sb.shutdown();
    db.begin_transaction().unwrap();
    db.set_range(r, 0, 8).unwrap();
    db.write(r, 0, &[0xEE; 8]).unwrap();
    db.commit_transaction().unwrap();
    assert_eq!(db.mirror_status()[1].health, MirrorHealth::Down);
    let committed = db.last_committed();
    assert_eq!(committed, 15, "10 batched + 4 grouped + 1 degraded");

    // Scrape over HTTP, as Prometheus would, and parse the exposition.
    let exposition = scrape(metrics.addr()).unwrap();
    let samples = parse_exposition(&exposition).unwrap();
    assert!(!samples.is_empty(), "exposition yielded no samples");

    // Commits seen by the scrape equal commits the engine reports.
    assert_eq!(
        total(&samples, "perseas_txn_committed_total"),
        committed as f64
    );
    assert_eq!(total(&samples, "perseas_txn_begun_total"), committed as f64);
    assert_eq!(total(&samples, "perseas_txn_aborted_total"), 0.0);

    // Exactly one commit ran degraded, and the scrape shows which
    // mirror is gone.
    assert_eq!(total(&samples, "perseas_txn_degraded_commits_total"), 1.0);
    assert_eq!(
        labelled(&samples, "perseas_mirror_healthy", "mirror", "0"),
        1.0
    );
    assert_eq!(
        labelled(&samples, "perseas_mirror_healthy", "mirror", "1"),
        0.0
    );
    assert_eq!(total(&samples, "perseas_mirrors"), 2.0);

    // The group commit is visible as one fan-out resolving four txns.
    assert_eq!(total(&samples, "perseas_txn_group_commits_total"), 1.0);
    assert_eq!(total(&samples, "perseas_txn_group_txns_total"), 4.0);

    // Transport and server layers registered real traffic: every write
    // the engine shipped hit a server's per-opcode counter, and the
    // client posted at least that many framed requests.
    let server_writes = labelled(&samples, "perseas_server_requests_total", "op", "write");
    assert!(server_writes > 0.0, "no write requests reached a server");
    assert!(total(&samples, "perseas_server_bytes_in_total") > 0.0);
    assert!(total(&samples, "perseas_client_ops_total") > 0.0);

    // A second scrape still parses and commits never go backwards.
    let again = parse_exposition(&scrape(metrics.addr()).unwrap()).unwrap();
    assert_eq!(
        total(&again, "perseas_txn_committed_total"),
        committed as f64
    );

    metrics.shutdown();
    sa.shutdown();
}
