//! Scrape-shaped observability test: run a realistic mixed workload —
//! batched commits, a group commit, and one injected mirror failure —
//! against real TCP mirror servers with a live `/metrics` endpoint,
//! then scrape it over HTTP exactly as Prometheus would and check the
//! numbers against ground truth the engine itself reports.
//!
//! The invariants under test are the ones an operator would alarm on:
//! the committed-transactions counter equals `last_committed`, exactly
//! one commit is recorded as degraded after exactly one mirror loss,
//! and the whole exposition parses.

use perseas_core::{record_shard_recovery, MirrorHealth, Perseas, PerseasConfig, ShardedPerseas};
use perseas_integration::shard_harness::{build_sharded, reopen_sharded};
use perseas_obs::{parse_exposition, scrape, MetricsServer, Registry, Sample};
use perseas_rnram::server::Server;
use perseas_rnram::TcpRemote;

/// Sum of every sample of `name`, across all label sets.
fn total(samples: &[Sample], name: &str) -> f64 {
    samples
        .iter()
        .filter(|s| s.name == name)
        .map(|s| s.value)
        .sum()
}

/// The single sample of `name` whose `key` label equals `val`.
fn labelled(samples: &[Sample], name: &str, key: &str, val: &str) -> f64 {
    samples
        .iter()
        .find(|s| s.name == name && s.label(key) == Some(val))
        .unwrap_or_else(|| panic!("no {name}{{{key}=\"{val}\"}} in scrape"))
        .value
}

/// The single sample of `name` carrying both labels.
fn labelled2(samples: &[Sample], name: &str, a: (&str, &str), b: (&str, &str)) -> f64 {
    samples
        .iter()
        .find(|s| s.name == name && s.label(a.0) == Some(a.1) && s.label(b.0) == Some(b.1))
        .unwrap_or_else(|| {
            panic!(
                "no {name}{{{}=\"{}\",{}=\"{}\"}} in scrape",
                a.0, a.1, b.0, b.1
            )
        })
        .value
}

#[test]
fn scraped_metrics_match_engine_ground_truth() {
    // One registry spanning both mirror servers, the client transport,
    // and the transaction engine; one scrape sees the whole stack.
    let registry = Registry::new();
    let sa = Server::bind("scrape-a", "127.0.0.1:0")
        .unwrap()
        .with_metrics(&registry)
        .start();
    let sb = Server::bind("scrape-b", "127.0.0.1:0")
        .unwrap()
        .with_metrics(&registry)
        .start();
    let metrics = MetricsServer::serve("127.0.0.1:0", registry.clone()).unwrap();

    let mut conn_a = TcpRemote::connect_auto(sa.addr()).unwrap();
    conn_a.set_metrics(&registry);
    let mut conn_b = TcpRemote::connect_auto(sb.addr()).unwrap();
    conn_b.set_metrics(&registry);

    // The concurrent engine implies the batched commit pipeline, so the
    // legacy-facade commits below exercise batched commits while the
    // token API drives a group commit through the same database.
    let mut db = Perseas::init(
        vec![conn_a, conn_b],
        PerseasConfig::default().with_concurrent(true),
    )
    .unwrap();
    db.set_metrics(&registry);
    let r = db.malloc(4096).unwrap();
    db.init_remote_db().unwrap();

    // 10 batched commits.
    for i in 0..10u64 {
        db.begin_transaction().unwrap();
        let slot = (i as usize % 64) * 8;
        db.set_range(r, slot, 8).unwrap();
        db.write(r, slot, &i.to_le_bytes()).unwrap();
        db.commit_transaction().unwrap();
    }

    // One group commit covering 4 transactions.
    let tokens: Vec<_> = (0..4)
        .map(|i| {
            let t = db.begin_concurrent().unwrap();
            let slot = 1024 + i * 256;
            db.set_range_t(t, r, slot, 8).unwrap();
            db.write_t(t, r, slot, &[i as u8 + 1; 8]).unwrap();
            db.prepare_t(t).unwrap();
            t
        })
        .collect();
    db.commit_group(&tokens).unwrap();

    // Inject exactly one mirror failure: mirror b dies, and the next
    // commit must fence it and complete degraded on the survivor.
    sb.shutdown();
    db.begin_transaction().unwrap();
    db.set_range(r, 0, 8).unwrap();
    db.write(r, 0, &[0xEE; 8]).unwrap();
    db.commit_transaction().unwrap();
    assert_eq!(db.mirror_status()[1].health, MirrorHealth::Down);
    let committed = db.last_committed();
    assert_eq!(committed, 15, "10 batched + 4 grouped + 1 degraded");

    // Scrape over HTTP, as Prometheus would, and parse the exposition.
    let exposition = scrape(metrics.addr()).unwrap();
    let samples = parse_exposition(&exposition).unwrap();
    assert!(!samples.is_empty(), "exposition yielded no samples");

    // Commits seen by the scrape equal commits the engine reports.
    assert_eq!(
        total(&samples, "perseas_txn_committed_total"),
        committed as f64
    );
    assert_eq!(total(&samples, "perseas_txn_begun_total"), committed as f64);
    assert_eq!(total(&samples, "perseas_txn_aborted_total"), 0.0);

    // Exactly one commit ran degraded, and the scrape shows which
    // mirror is gone.
    assert_eq!(total(&samples, "perseas_txn_degraded_commits_total"), 1.0);
    assert_eq!(
        labelled(&samples, "perseas_mirror_healthy", "mirror", "0"),
        1.0
    );
    assert_eq!(
        labelled(&samples, "perseas_mirror_healthy", "mirror", "1"),
        0.0
    );
    assert_eq!(total(&samples, "perseas_mirrors"), 2.0);

    // The group commit is visible as one fan-out resolving four txns.
    assert_eq!(total(&samples, "perseas_txn_group_commits_total"), 1.0);
    assert_eq!(total(&samples, "perseas_txn_group_txns_total"), 4.0);

    // Transport and server layers registered real traffic: every write
    // the engine shipped hit a server's per-opcode counter, and the
    // client posted at least that many framed requests.
    let server_writes = labelled(&samples, "perseas_server_requests_total", "op", "write");
    assert!(server_writes > 0.0, "no write requests reached a server");
    assert!(total(&samples, "perseas_server_bytes_in_total") > 0.0);
    assert!(total(&samples, "perseas_client_ops_total") > 0.0);

    // A second scrape still parses and commits never go backwards.
    let again = parse_exposition(&scrape(metrics.addr()).unwrap()).unwrap();
    assert_eq!(
        total(&again, "perseas_txn_committed_total"),
        committed as f64
    );

    metrics.shutdown();
    sa.shutdown();
}

/// Shard-labelled exposition: a 2-shard database under one registry
/// must publish `perseas_shard_*` series keyed by shard index — never
/// colliding across shards — and recovery's in-doubt resolutions must
/// surface through `record_shard_recovery`.
#[test]
fn sharded_metrics_are_shard_labelled() {
    let registry = Registry::new();
    let metrics = MetricsServer::serve("127.0.0.1:0", registry.clone()).unwrap();
    let (mut db, regions, cluster) = build_sharded(2, 2);
    db.set_metrics(&registry);

    // 2 single-shard commits on shard 0, 1 on shard 1.
    for (region, count) in [(regions[0], 2), (regions[1], 1)] {
        for i in 0..count {
            let g = db.begin_global().unwrap();
            db.set_range_g(g, region, i * 8, 8).unwrap();
            db.write_g(g, region, i * 8, &[0x42; 8]).unwrap();
            db.commit_g(g).unwrap();
        }
    }
    // 2 cross-shard commits, home shard 0.
    for i in 0..2usize {
        let g = db.begin_global().unwrap();
        for &r in &regions {
            db.set_range_g(g, r, 64 + i * 8, 8).unwrap();
            db.write_g(g, r, 64 + i * 8, &[0x43; 8]).unwrap();
        }
        db.commit_g(g).unwrap();
    }
    // One in-doubt transaction: decided but never fanned out, so
    // recovery must resolve one commit per shard.
    let g = db.begin_global().unwrap();
    for &r in &regions {
        db.set_range_g(g, r, 128, 8).unwrap();
        db.write_g(g, r, 128, &[0x44; 8]).unwrap();
    }
    db.prepare_parts(g).unwrap();
    db.write_intents(g).unwrap();
    db.write_decision(g).unwrap();
    db.crash();
    let (_db2, report) =
        ShardedPerseas::recover(reopen_sharded(&cluster), PerseasConfig::default()).unwrap();
    record_shard_recovery(&registry, &report);

    let samples = parse_exposition(&scrape(metrics.addr()).unwrap()).unwrap();

    // Shard topology: the shard-count gauge and a health gauge per
    // (shard, mirror) pair, all healthy.
    assert_eq!(total(&samples, "perseas_shards"), 2.0);
    for shard in ["0", "1"] {
        for mirror in ["0", "1"] {
            assert_eq!(
                labelled2(
                    &samples,
                    "perseas_shard_mirror_healthy",
                    ("shard", shard),
                    ("mirror", mirror),
                ),
                1.0
            );
        }
    }

    // Per-shard commit counters: 2 single + 2 cross-shard parts on
    // shard 0, 1 single + 2 cross-shard parts on shard 1.
    assert_eq!(
        labelled(&samples, "perseas_shard_txn_committed_total", "shard", "0"),
        4.0
    );
    assert_eq!(
        labelled(&samples, "perseas_shard_txn_committed_total", "shard", "1"),
        3.0
    );

    // The 2PC counters: the 2 completed cross-shard commits plus the
    // decided-but-unfinished one prepared a part and wrote an intent on
    // each shard, decided on home shard 0, and only the completed two
    // fanned out.
    for shard in ["0", "1"] {
        assert_eq!(
            labelled(&samples, "perseas_shard_prepares_total", "shard", shard),
            3.0
        );
    }
    assert_eq!(
        labelled(&samples, "perseas_shard_decisions_total", "shard", "0"),
        3.0
    );
    assert_eq!(
        labelled(&samples, "perseas_shard_cross_commits_total", "shard", "0"),
        2.0
    );
    assert_eq!(
        labelled(
            &samples,
            "perseas_shard_cross_commit_parts_total",
            "shard",
            "0"
        ),
        4.0
    );

    // Recovery resolved the in-doubt part on each shard as a commit.
    for shard in ["0", "1"] {
        assert_eq!(
            labelled(
                &samples,
                "perseas_shard_resolved_commits_total",
                "shard",
                shard
            ),
            1.0
        );
        assert_eq!(
            labelled(
                &samples,
                "perseas_shard_resolved_aborts_total",
                "shard",
                shard
            ),
            0.0
        );
    }

    metrics.shutdown();
}
