//! Property test: concurrent single- and multi-shard mixes are
//! serializable, deterministic, and crash-durable.
//!
//! Each case draws a seed, a shard count in 2..=4, and a transaction
//! count, then replays the seed-determined interleaving through the
//! [`shard_harness`] executor. The harness already checks the engine
//! against a claim-table model at every step and against the serial
//! oracle (committed subset in commit order) both live and after a
//! whole-cluster crash and recovery; the properties here additionally
//! pin the *outputs*: recovered per-shard images byte-identical to an
//! independently recomputed serial reference, identical
//! committed/conflicted/aborted multisets across two runs of the same
//! seed (determinism), and a complete fate partition.
//!
//! [`shard_harness`]: perseas_integration::shard_harness

use proptest::prelude::*;

use perseas_integration::shard_harness::{gen_xplans, run_mix, serial_reference, Fate};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The recovered images equal the serial reference recomputed here
    /// from the seed and the reported commit order — byte for byte, on
    /// every shard — and every plan gets exactly one fate consistent
    /// with its script.
    #[test]
    fn recovered_images_match_the_serial_reference(
        seed in any::<u64>(),
        k in 2usize..=4,
        ntxns in 3usize..=8,
    ) {
        let outcome = run_mix(seed, k, ntxns);
        let plans = gen_xplans(seed, k, ntxns);
        prop_assert_eq!(plans.len(), ntxns);
        prop_assert_eq!(outcome.fates.len(), ntxns);

        let reference = serial_reference(&plans, &outcome.committed, k);
        for (s, shard_ref) in reference.iter().enumerate() {
            prop_assert!(
                &outcome.images[s] == shard_ref,
                "shard {} diverges from the serial reference (seed {})", s, seed
            );
        }

        // Fates partition the plan set and respect the scripts: only
        // plans scripted to commit may commit, only scripted aborters
        // may abort voluntarily, and the commit order lists exactly the
        // committed plans, each once.
        for (i, plan) in plans.iter().enumerate() {
            match outcome.fates[i] {
                Fate::Committed => prop_assert!(plan.commit, "txn {} committed off-script", i),
                Fate::Aborted => prop_assert!(!plan.commit, "txn {} aborted off-script", i),
                Fate::Conflicted => {}
            }
        }
        let mut in_order = outcome.committed.clone();
        in_order.sort_unstable();
        in_order.dedup();
        prop_assert_eq!(
            in_order.len(), outcome.committed.len(),
            "a transaction committed twice (seed {})", seed
        );
        let committed_fates = outcome
            .fates
            .iter()
            .filter(|f| matches!(f, Fate::Committed))
            .count();
        prop_assert_eq!(committed_fates, outcome.committed.len());
    }

    /// The whole execution is a pure function of the seed: images,
    /// commit order, and the conflict/abort multisets all replay
    /// identically.
    #[test]
    fn mixes_replay_deterministically(
        seed in any::<u64>(),
        k in 2usize..=4,
        ntxns in 3usize..=8,
    ) {
        let a = run_mix(seed, k, ntxns);
        let b = run_mix(seed, k, ntxns);
        prop_assert_eq!(a.images, b.images, "images diverge (seed {})", seed);
        prop_assert_eq!(a.committed, b.committed, "commit order diverges (seed {})", seed);
        prop_assert_eq!(a.fates, b.fates, "fate multiset diverges (seed {})", seed);
    }
}
