//! Multiplexed-vs-dedicated transport equivalence battery (ISSUE 8):
//! random op sequences — writes, vectored writes, reads, flushes, a mix
//! of in-bounds and out-of-bounds — executed through a [`MuxSession`] on
//! a shared socket and through a dedicated [`TcpRemote`] must be
//! observationally identical: byte-identical segment images on the
//! server, identical read outcomes, identical sorted error multisets.
//!
//! As in `tcp_pipeline_equivalence`, the two transports run against
//! *twin* servers (freshly bound, identical empty state) so segment ids
//! — which refusal messages embed — line up exactly.

use proptest::prelude::*;

use perseas_rnram::server::{Server, ServerHandle};
use perseas_rnram::{PipelineConfig, RemoteMemory, SegmentId, SessionMux, TcpRemote};

const SEG_LEN: usize = 128;
/// Offsets range past the segment end so some ops are refused.
const OFF_SPAN: usize = SEG_LEN + 32;

#[derive(Debug, Clone)]
enum Op {
    Write { offset: usize, fill: u8, len: usize },
    WriteV { ranges: Vec<(usize, u8, usize)> },
    Read { offset: usize, len: usize },
    Flush,
}

fn arb_op() -> impl Strategy<Value = Op> {
    let range = (0usize..OFF_SPAN, any::<u8>(), 0usize..48);
    prop_oneof![
        3 => range.prop_map(|(offset, fill, len)| Op::Write { offset, fill, len }),
        2 => prop::collection::vec((0usize..OFF_SPAN, any::<u8>(), 0usize..24), 1..4)
            .prop_map(|ranges| Op::WriteV { ranges }),
        2 => (0usize..OFF_SPAN, 0usize..48).prop_map(|(offset, len)| Op::Read { offset, len }),
        1 => Just(Op::Flush),
    ]
}

/// Applies `ops` through any transport against `seg`, returning every
/// read outcome in order and the sorted multiset of refusals, with any
/// still-queued posted refusals drained by flushing until clean.
#[allow(clippy::type_complexity)]
fn run<C: RemoteMemory>(
    conn: &mut C,
    seg: SegmentId,
    ops: &[Op],
) -> (Vec<Result<Vec<u8>, String>>, Vec<String>) {
    let mut reads = Vec::new();
    let mut errors = Vec::new();
    for op in ops {
        apply(conn, seg, op, &mut reads, &mut errors);
    }
    drain(conn, ops.len(), &mut errors);
    errors.sort();
    (reads, errors)
}

fn apply<C: RemoteMemory>(
    conn: &mut C,
    seg: SegmentId,
    op: &Op,
    reads: &mut Vec<Result<Vec<u8>, String>>,
    errors: &mut Vec<String>,
) {
    match op {
        Op::Write { offset, fill, len } => {
            if let Err(e) = conn.remote_write(seg, *offset, &vec![*fill; *len]) {
                errors.push(e.to_string());
            }
        }
        Op::WriteV { ranges } => {
            let bufs: Vec<Vec<u8>> = ranges.iter().map(|&(_, f, l)| vec![f; l]).collect();
            let writes: Vec<_> = ranges
                .iter()
                .zip(&bufs)
                .map(|(&(off, _, _), buf)| (seg, off, buf.as_slice()))
                .collect();
            if let Err(e) = conn.remote_write_v(&writes) {
                errors.push(e.to_string());
            }
        }
        Op::Read { offset, len } => {
            let mut buf = vec![0u8; *len];
            reads.push(match conn.remote_read(seg, *offset, &mut buf) {
                Ok(()) => Ok(buf),
                Err(e) => Err(e.to_string()),
            });
        }
        Op::Flush => {
            if let Err(e) = conn.flush() {
                errors.push(e.to_string());
            }
        }
    }
}

/// Flushes until the barrier is clean; the op count bounds the number of
/// queued refusals (one surfaces per barrier).
fn drain<C: RemoteMemory>(conn: &mut C, ops: usize, errors: &mut Vec<String>) {
    for _ in 0..=ops {
        match conn.flush() {
            Ok(_) => break,
            Err(e) => errors.push(e.to_string()),
        }
    }
    assert_eq!(conn.in_flight(), 0, "drain left the window dirty");
}

/// The segment image as the server holds it.
fn image(server: &ServerHandle, tag: u64) -> Vec<u8> {
    let seg = server.node().find_by_tag(tag).expect("data segment");
    let mut buf = vec![0u8; seg.len];
    server.node().read(seg.id, 0, &mut buf).unwrap();
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// 256 random sequences through one mux session and one dedicated
    /// synchronous connection: images, reads, and error multisets agree.
    /// The session's posted-write window is deliberately small so the
    /// sequences wrap it and mid-stream drains happen.
    #[test]
    fn mux_session_matches_a_dedicated_connection(
        ops in prop::collection::vec(arb_op(), 1..32),
        window in 1usize..6,
        byte_budget in 32usize..256,
    ) {
        let tcp_server = Server::bind("twin-tcp", "127.0.0.1:0").unwrap().start();
        let mux_server = Server::bind("twin-mux", "127.0.0.1:0").unwrap().start();

        let mut tcp_conn = TcpRemote::connect(tcp_server.addr()).unwrap();
        let mux = SessionMux::connect(mux_server.addr()).unwrap();
        let mut mux_conn = mux.session_with(PipelineConfig {
            max_ops: window,
            max_bytes: byte_budget,
        });

        let tcp_seg = tcp_conn.remote_malloc(SEG_LEN, 7).unwrap();
        let mux_seg = mux_conn.remote_malloc(SEG_LEN, 7).unwrap();
        prop_assert_eq!(tcp_seg.id, mux_seg.id, "twin servers must allocate identically");

        let (tcp_reads, tcp_errors) = run(&mut tcp_conn, tcp_seg.id, &ops);
        let (mux_reads, mux_errors) = run(&mut mux_conn, mux_seg.id, &ops);

        // Reads are round trips on both transports and per-session FIFO
        // makes every posted write visible to later reads.
        prop_assert_eq!(tcp_reads, mux_reads);
        // Refusals surface inline on the sync side and at barriers on
        // the mux side — the multiset must be identical.
        prop_assert_eq!(tcp_errors, mux_errors);
        // The authoritative test: the bytes the servers hold.
        prop_assert_eq!(image(&tcp_server, 7), image(&mux_server, 7));

        tcp_server.shutdown();
        mux_server.shutdown();
    }

    /// Two sessions interleaved over ONE shared socket versus two
    /// dedicated pipelined connections: each lane must match its twin
    /// exactly even though the mux side's frames interleave on the wire.
    #[test]
    fn interleaved_sessions_match_dedicated_connections(
        script in prop::collection::vec((any::<bool>(), arb_op()), 1..32),
        window in 1usize..6,
    ) {
        let tcp_server = Server::bind("lane-tcp", "127.0.0.1:0").unwrap().start();
        let mux_server = Server::bind("lane-mux", "127.0.0.1:0").unwrap().start();

        let cfg = PipelineConfig { max_ops: window, max_bytes: 1 << 20 };
        let mut tcp_conns = [
            TcpRemote::connect_with(tcp_server.addr(), cfg).unwrap(),
            TcpRemote::connect_with(tcp_server.addr(), cfg).unwrap(),
        ];
        let mux = SessionMux::connect(mux_server.addr()).unwrap();
        let mut mux_conns = [mux.session_with(cfg), mux.session_with(cfg)];

        // Allocate both lanes' segments in the same order on both
        // servers so ids (embedded in refusal messages) line up.
        let mut tcp_segs = Vec::new();
        let mut mux_segs = Vec::new();
        for lane in 0..2 {
            tcp_segs.push(tcp_conns[lane].remote_malloc(SEG_LEN, lane as u64).unwrap().id);
            mux_segs.push(mux_conns[lane].remote_malloc(SEG_LEN, lane as u64).unwrap().id);
        }
        prop_assert_eq!(&tcp_segs, &mux_segs, "twin servers must allocate identically");

        let mut tcp_out = [(Vec::new(), Vec::new()), (Vec::new(), Vec::new())];
        let mut mux_out = [(Vec::new(), Vec::new()), (Vec::new(), Vec::new())];
        for (second, op) in &script {
            let lane = usize::from(*second);
            apply(&mut tcp_conns[lane], tcp_segs[lane], op, &mut tcp_out[lane].0, &mut tcp_out[lane].1);
            apply(&mut mux_conns[lane], mux_segs[lane], op, &mut mux_out[lane].0, &mut mux_out[lane].1);
        }
        for lane in 0..2 {
            drain(&mut tcp_conns[lane], script.len(), &mut tcp_out[lane].1);
            drain(&mut mux_conns[lane], script.len(), &mut mux_out[lane].1);
            tcp_out[lane].1.sort();
            mux_out[lane].1.sort();
            prop_assert_eq!(&tcp_out[lane].0, &mux_out[lane].0, "lane {} reads diverged", lane);
            prop_assert_eq!(&tcp_out[lane].1, &mux_out[lane].1, "lane {} errors diverged", lane);
            prop_assert_eq!(
                image(&tcp_server, lane as u64),
                image(&mux_server, lane as u64),
                "lane {} images diverged",
                lane
            );
        }

        tcp_server.shutdown();
        mux_server.shutdown();
    }
}
