//! End-to-end PERSEAS over the real TCP backend: a genuinely separate
//! server process boundary (threads + sockets), full commit/crash/recover
//! cycle, and multi-database coexistence on one mirror.
//!
//! Connections go through [`AnyRemote::connect_auto`], so the CI matrix
//! replays every scenario over the synchronous, pipelined
//! (`PERSEAS_TCP_PIPELINE`), and session-multiplexed (`PERSEAS_TCP_MUX`)
//! transports.

use perseas_core::{Perseas, PerseasConfig};
use perseas_rnram::server::Server;
use perseas_rnram::AnyRemote;
use perseas_workloads::{run_workload, DebitCredit, DebitCreditScale, Workload};

#[test]
fn commit_crash_recover_over_tcp() {
    let server = Server::bind("tcp-e2e", "127.0.0.1:0").unwrap().start();

    let mirror = AnyRemote::connect_auto(server.addr()).unwrap();
    let mut db = Perseas::init(vec![mirror], PerseasConfig::default()).unwrap();
    let r = db.malloc(1024).unwrap();
    db.init_remote_db().unwrap();

    for i in 0..50u64 {
        db.begin_transaction().unwrap();
        let slot = (i as usize % 128) * 8;
        db.set_range(r, slot, 8).unwrap();
        db.write(r, slot, &i.to_le_bytes()).unwrap();
        db.commit_transaction().unwrap();
    }
    db.crash();

    let reconnect = AnyRemote::connect_auto(server.addr()).unwrap();
    let (db2, report) = Perseas::recover(reconnect, PerseasConfig::default()).unwrap();
    assert_eq!(report.last_committed, 50);
    let mut buf = [0u8; 8];
    db2.read(r, 49 * 8, &mut buf).unwrap();
    assert_eq!(u64::from_le_bytes(buf), 49);
    server.shutdown();
}

#[test]
fn in_flight_transaction_rolls_back_over_tcp() {
    let server = Server::bind("tcp-rollback", "127.0.0.1:0").unwrap().start();
    let mirror = AnyRemote::connect_auto(server.addr()).unwrap();
    let mut db = Perseas::init(vec![mirror], PerseasConfig::default()).unwrap();
    let r = db.malloc(256).unwrap();
    db.write(r, 0, &[1; 256]).unwrap();
    db.init_remote_db().unwrap();

    db.begin_transaction().unwrap();
    db.set_range(r, 0, 64).unwrap();
    db.write(r, 0, &[2; 64]).unwrap();
    // Crash before commit; set_range already pushed undo records + data
    // was never propagated.
    db.crash();

    let reconnect = AnyRemote::connect_auto(server.addr()).unwrap();
    let (db2, report) = Perseas::recover(reconnect, PerseasConfig::default()).unwrap();
    assert!(report.rolled_back_txn.is_some());
    assert_eq!(db2.region_snapshot(r).unwrap(), vec![1; 256]);
    server.shutdown();
}

#[test]
fn debit_credit_workload_over_tcp() {
    let server = Server::bind("tcp-bank", "127.0.0.1:0").unwrap().start();
    let mirror = AnyRemote::connect_auto(server.addr()).unwrap();
    let mut db = Perseas::init(vec![mirror], PerseasConfig::default()).unwrap();
    let mut wl = DebitCredit::new(DebitCreditScale::tiny(), 31);
    wl.setup(&mut db).unwrap();
    run_workload(&mut db, &mut wl, 200).unwrap();
    wl.check(&db).unwrap();
    server.shutdown();
}

#[test]
fn two_databases_share_one_mirror_via_distinct_tags() {
    let server = Server::bind("tcp-shared", "127.0.0.1:0").unwrap().start();

    let cfg_a = PerseasConfig::default().with_meta_tag(0xA);
    let cfg_b = PerseasConfig::default().with_meta_tag(0xB);

    let mut db_a =
        Perseas::init(vec![AnyRemote::connect_auto(server.addr()).unwrap()], cfg_a).unwrap();
    let ra = db_a.malloc(64).unwrap();
    db_a.init_remote_db().unwrap();

    let mut db_b =
        Perseas::init(vec![AnyRemote::connect_auto(server.addr()).unwrap()], cfg_b).unwrap();
    let rb = db_b.malloc(64).unwrap();
    db_b.init_remote_db().unwrap();

    db_a.begin_transaction().unwrap();
    db_a.set_range(ra, 0, 8).unwrap();
    db_a.write(ra, 0, &[0xA; 8]).unwrap();
    db_a.commit_transaction().unwrap();

    db_b.begin_transaction().unwrap();
    db_b.set_range(rb, 0, 8).unwrap();
    db_b.write(rb, 0, &[0xB; 8]).unwrap();
    db_b.commit_transaction().unwrap();

    db_a.crash();
    db_b.crash();

    let (ra_db, _) =
        Perseas::recover(AnyRemote::connect_auto(server.addr()).unwrap(), cfg_a).unwrap();
    let (rb_db, _) =
        Perseas::recover(AnyRemote::connect_auto(server.addr()).unwrap(), cfg_b).unwrap();
    assert_eq!(&ra_db.region_snapshot(ra).unwrap()[..8], &[0xA; 8]);
    assert_eq!(&rb_db.region_snapshot(rb).unwrap()[..8], &[0xB; 8]);
    server.shutdown();
}

#[test]
fn perseas_rides_out_a_mirror_server_restart() {
    use perseas_rnram::ReconnectingRemote;
    let server = Server::bind("flappy", "127.0.0.1:0").unwrap().start();
    let node = server.node().clone();
    let addr = server.addr();

    let mirror = ReconnectingRemote::connect_auto(addr, 5).unwrap();
    // Transports that post writes (pipelined or multiplexed) may lose a
    // window across the restart; the synchronous one may not.
    let posts_writes = match AnyRemote::connect_auto(addr).unwrap() {
        AnyRemote::Tcp(c) => c.is_pipelined(),
        AnyRemote::Mux(_) => true,
    };
    let mut db = Perseas::init(vec![mirror], PerseasConfig::default()).unwrap();
    let r = db.malloc(64).unwrap();
    db.init_remote_db().unwrap();
    db.begin_transaction().unwrap();
    db.set_range(r, 0, 8).unwrap();
    db.write(r, 0, &[1; 8]).unwrap();
    db.commit_transaction().unwrap();

    // The mirror's server process restarts (same memory, same port). On
    // the synchronous transport the next transaction reconnects
    // transparently. On a posting transport (pipelined or multiplexed)
    // the outcome depends on when the dead socket is noticed: writes
    // posted into the corpse are a lost window, which must surface
    // `Unavailable` rather than be silently retried — but a post that
    // fails before anything is in flight re-dials and rides out exactly
    // like the sync path. Either way the commit's answer must match what
    // recovery finds durable.
    server.shutdown();
    let server2 = Server::with_node(node, addr).unwrap().start();

    let committed = (|| -> Result<(), perseas_core::TxnError> {
        db.begin_transaction()?;
        db.set_range(r, 8, 8)?;
        db.write(r, 8, &[2; 8])?;
        db.commit_transaction()
    })();
    if let Err(e) = &committed {
        assert!(
            posts_writes,
            "the synchronous transport must ride the restart out: {e}"
        );
        assert!(
            matches!(e, perseas_core::TxnError::Unavailable(_)),
            "restart may only surface as Unavailable: {e}"
        );
    }

    db.crash();
    let (db2, report) = Perseas::recover(
        AnyRemote::connect_auto(addr).unwrap(),
        PerseasConfig::default(),
    )
    .unwrap();
    if committed.is_ok() {
        assert_eq!(report.last_committed, 2);
        assert_eq!(
            &db2.region_snapshot(r).unwrap()[..16],
            &[[1u8; 8], [2u8; 8]].concat()[..]
        );
    } else {
        assert_eq!(
            report.last_committed, 1,
            "a failed commit must not be durable"
        );
        assert_eq!(&db2.region_snapshot(r).unwrap()[..8], &[1u8; 8]);
        assert_eq!(
            &db2.region_snapshot(r).unwrap()[8..16],
            &[0u8; 8],
            "the lost window must not surface as committed bytes"
        );
    }
    server2.shutdown();
}

#[test]
fn read_replica_follows_a_tcp_primary() {
    use perseas_core::ReadReplica;
    let server = Server::bind("follow", "127.0.0.1:0").unwrap().start();
    let mut db = Perseas::init(
        vec![AnyRemote::connect_auto(server.addr()).unwrap()],
        PerseasConfig::default(),
    )
    .unwrap();
    let r = db.malloc(32).unwrap();
    db.init_remote_db().unwrap();

    db.begin_transaction().unwrap();
    db.set_range(r, 0, 8).unwrap();
    db.write(r, 0, &[5; 8]).unwrap();
    db.commit_transaction().unwrap();

    let mut replica = ReadReplica::attach(
        AnyRemote::connect_auto(server.addr()).unwrap(),
        PerseasConfig::default(),
    )
    .unwrap();
    assert_eq!(&replica.region_snapshot(r).unwrap()[..8], &[5; 8]);

    db.begin_transaction().unwrap();
    db.set_range(r, 8, 8).unwrap();
    db.write(r, 8, &[6; 8]).unwrap();
    db.commit_transaction().unwrap();
    assert_eq!(replica.refresh().unwrap(), 2);
    assert_eq!(&replica.region_snapshot(r).unwrap()[8..16], &[6; 8]);
    server.shutdown();
}
