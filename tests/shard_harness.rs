//! Harness for the sharded-database test battery.
//!
//! Builds K-shard clusters whose mirror node memories (and SCI links)
//! stay inspectable, seeds every shard's region with a deterministic
//! pre-image, and drives seed-replayable concurrent mixes of single- and
//! multi-shard transactions against a model that predicts conflicts and
//! a serial oracle that predicts bytes. Used by the cross-shard crash
//! sweep (`tests/shard_crash_sweep.rs`), the serializability property
//! suite (`tests/shard_equivalence_prop.rs`), and the in-doubt
//! resolution regressions (`tests/shard_indoubt.rs`).

use perseas_core::{GlobalToken, PerseasConfig, RegionId, ShardedPerseas, TxnError};
use perseas_rnram::SimRemote;
use perseas_sci::{NodeMemory, SciLink, SciParams};
use perseas_simtime::{det_rng, DetRng, SimClock};
use perseas_txn::TransactionalMemory;

/// Length of the one region each shard hosts.
pub const SHARD_REGION_LEN: usize = 192;

/// The surviving remote state of a sharded cluster: `[shard][mirror]`
/// node memories (which outlive coordinator crashes) and the SCI links
/// the live database writes through (for packet-cut fault injection).
pub struct ShardCluster {
    pub nodes: Vec<Vec<NodeMemory>>,
    pub links: Vec<Vec<SciLink>>,
}

/// The deterministic pre-image every shard's region is seeded with.
pub fn pre_image(shard: usize) -> Vec<u8> {
    (0..SHARD_REGION_LEN)
        .map(|i| (i as u8).wrapping_mul(3).wrapping_add(shard as u8))
        .collect()
}

/// Builds a published K-shard database, `mirrors` mirrors per shard,
/// one [`SHARD_REGION_LEN`] region per shard (region `s` on shard `s`)
/// seeded with [`pre_image`]. Returns `(db, regions, cluster)`.
pub fn build_sharded(
    k: usize,
    mirrors: usize,
) -> (ShardedPerseas<SimRemote>, Vec<RegionId>, ShardCluster) {
    let nodes: Vec<Vec<NodeMemory>> = (0..k)
        .map(|s| {
            (0..mirrors)
                .map(|m| NodeMemory::new(format!("s{s}m{m}")))
                .collect()
        })
        .collect();
    let backends: Vec<Vec<SimRemote>> = nodes
        .iter()
        .map(|shard| {
            shard
                .iter()
                .map(|n| {
                    SimRemote::with_parts(SimClock::new(), n.clone(), SciParams::dolphin_1998())
                })
                .collect()
        })
        .collect();
    let links = backends
        .iter()
        .map(|shard| shard.iter().map(|b| b.link().clone()).collect())
        .collect();
    let mut db = ShardedPerseas::init(backends, PerseasConfig::default()).expect("init");
    let regions: Vec<RegionId> = (0..k)
        .map(|_| db.malloc(SHARD_REGION_LEN).expect("malloc"))
        .collect();
    for (s, &r) in regions.iter().enumerate() {
        db.write(r, 0, &pre_image(s)).expect("seed pre-image");
    }
    db.init_remote_db().expect("publish");
    (db, regions, ShardCluster { nodes, links })
}

/// Fresh backend handles onto every surviving node memory, as the
/// recovering workstations open them.
pub fn reopen_sharded(cluster: &ShardCluster) -> Vec<Vec<SimRemote>> {
    cluster
        .nodes
        .iter()
        .map(|shard| {
            shard
                .iter()
                .map(|n| {
                    SimRemote::with_parts(SimClock::new(), n.clone(), SciParams::dolphin_1998())
                })
                .collect()
        })
        .collect()
}

/// One planned global transaction: claim-and-write each `(shard, offset,
/// len, fill)` range in order, then commit or voluntarily abort.
#[derive(Debug, Clone)]
pub struct XPlan {
    pub ranges: Vec<(usize, usize, usize, u8)>,
    pub commit: bool,
}

impl XPlan {
    /// Shards this plan touches, deduplicated.
    pub fn shards(&self) -> Vec<usize> {
        let mut s: Vec<usize> = self.ranges.iter().map(|r| r.0).collect();
        s.sort_unstable();
        s.dedup();
        s
    }
}

/// The seed-determined plan set `run_mix(seed, k, n)` executes — exposed
/// so property tests can recompute the serial reference independently.
pub fn gen_xplans(seed: u64, k: usize, n: usize) -> Vec<XPlan> {
    let mut rng = det_rng(seed);
    gen_xplans_with(&mut rng, k, n)
}

fn gen_xplans_with(rng: &mut DetRng, k: usize, n: usize) -> Vec<XPlan> {
    (0..n)
        .map(|i| {
            let nranges = 1 + rng.gen_index(3);
            let ranges = (0..nranges)
                .map(|_| {
                    let shard = rng.gen_index(k);
                    let off = rng.gen_index(SHARD_REGION_LEN - 1);
                    let len = 1 + rng.gen_index((SHARD_REGION_LEN - off).min(32));
                    (shard, off, len, 1 + (i as u8 % 250))
                })
                .collect();
            XPlan {
                ranges,
                commit: rng.gen_bool(0.8),
            }
        })
        .collect()
}

/// How each planned transaction ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Fate {
    /// Committed (single- or cross-shard).
    Committed,
    /// Lost a claim conflict and was rolled back.
    Conflicted,
    /// Ran to completion and aborted voluntarily.
    Aborted,
}

/// What one interleaved mix produced.
#[derive(Debug)]
pub struct MixOutcome {
    /// Post-crash-recovery bytes of every shard's region.
    pub images: Vec<Vec<u8>>,
    /// Plan indices in commit order.
    pub committed: Vec<usize>,
    /// Fate of every plan, indexed by plan.
    pub fates: Vec<Fate>,
}

enum St {
    NotStarted,
    Open(GlobalToken, usize),
    Done,
}

/// Runs one interleaved schedule of `ntxns` global transactions over a
/// fresh `k`-shard, 2-mirror cluster, checking the engine against a
/// claim-table model at every step and against a serial oracle at the
/// end — both before and after a whole-cluster crash and recovery.
/// Panics (naming `seed`) on any divergence.
pub fn run_mix(seed: u64, k: usize, ntxns: usize) -> MixOutcome {
    let mut rng = det_rng(seed);
    let plans = gen_xplans_with(&mut rng, k, ntxns);
    let (mut db, regions, cluster) = build_sharded(k, 2);

    let mut states: Vec<St> = (0..ntxns).map(|_| St::NotStarted).collect();
    // The model's claim table: `(shard, start, end)` intervals held by
    // each still-open transaction.
    let mut claims: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); ntxns];
    let mut tokens: Vec<Option<GlobalToken>> = vec![None; ntxns];
    let mut committed: Vec<usize> = Vec::new();
    let mut fates: Vec<Option<Fate>> = vec![None; ntxns];

    loop {
        let active: Vec<usize> = states
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, St::NotStarted | St::Open(_, _)))
            .map(|(i, _)| i)
            .collect();
        if active.is_empty() {
            break;
        }
        let i = active[rng.gen_index(active.len())];
        match states[i] {
            St::NotStarted => {
                let g = db
                    .begin_global()
                    .unwrap_or_else(|e| panic!("seed {seed}: begin failed: {e}"));
                tokens[i] = Some(g);
                states[i] = St::Open(g, 0);
            }
            St::Open(g, next) => {
                let (shard, off, len, fill) = plans[i].ranges[next];
                let predicted = claims
                    .iter()
                    .enumerate()
                    .find(|(j, held)| {
                        *j != i
                            && held
                                .iter()
                                .any(|&(hs, s, e)| hs == shard && s < off + len && off < e)
                    })
                    .map(|(j, _)| j);
                match db.set_range_g(g, regions[shard], off, len) {
                    Ok(()) => {
                        assert!(
                            predicted.is_none(),
                            "seed {seed}: txn {i} claimed shard {shard} [{off}, {}) but \
                             the model says txn {predicted:?} holds an overlap",
                            off + len
                        );
                        db.write_g(g, regions[shard], off, &vec![fill; len])
                            .unwrap_or_else(|e| panic!("seed {seed}: write failed: {e}"));
                        claims[i].push((shard, off, off + len));
                        if next + 1 == plans[i].ranges.len() {
                            if plans[i].commit {
                                db.commit_g(g).unwrap_or_else(|e| {
                                    panic!("seed {seed}: commit of txn {i} failed: {e}")
                                });
                                committed.push(i);
                                fates[i] = Some(Fate::Committed);
                            } else {
                                db.abort_g(g)
                                    .unwrap_or_else(|e| panic!("seed {seed}: abort failed: {e}"));
                                fates[i] = Some(Fate::Aborted);
                            }
                            claims[i].clear();
                            states[i] = St::Done;
                        } else {
                            states[i] = St::Open(g, next + 1);
                        }
                    }
                    Err(TxnError::Conflict { holder, .. }) => {
                        assert!(
                            predicted.is_some(),
                            "seed {seed}: txn {i} got a conflict on shard {shard} \
                             [{off}, {}) but the model sees no overlapping claim",
                            off + len
                        );
                        // The engine reports the *global* id of a live
                        // holder; verify it really overlaps on this shard.
                        let holder_idx = tokens
                            .iter()
                            .position(|t| t.map(|g| g.id()) == Some(holder))
                            .unwrap_or_else(|| {
                                panic!("seed {seed}: reported holder {holder} is not a known txn")
                            });
                        assert!(
                            matches!(states[holder_idx], St::Open(_, _)),
                            "seed {seed}: reported holder txn {holder_idx} is not live"
                        );
                        assert!(
                            claims[holder_idx]
                                .iter()
                                .any(|&(hs, s, e)| hs == shard && s < off + len && off < e),
                            "seed {seed}: reported holder txn {holder_idx} does not \
                             overlap shard {shard} [{off}, {})",
                            off + len
                        );
                        db.abort_g(g)
                            .unwrap_or_else(|e| panic!("seed {seed}: loser abort failed: {e}"));
                        claims[i].clear();
                        fates[i] = Some(Fate::Conflicted);
                        states[i] = St::Done;
                    }
                    Err(e) => panic!("seed {seed}: unexpected error: {e}"),
                }
            }
            St::Done => unreachable!("not in active set"),
        }
    }

    // Serial oracle: committed plans applied in commit order.
    let model = serial_reference(&plans, &committed, k);
    for (s, &r) in regions.iter().enumerate() {
        assert_eq!(
            db.region_snapshot(r).unwrap(),
            model[s],
            "seed {seed}: live shard {s} diverges from the serial oracle"
        );
    }

    db.crash();
    let (db2, _) = ShardedPerseas::recover(reopen_sharded(&cluster), PerseasConfig::default())
        .unwrap_or_else(|e| panic!("seed {seed}: recovery failed: {e}"));
    let images: Vec<Vec<u8>> = regions
        .iter()
        .map(|&r| db2.region_snapshot(r).unwrap())
        .collect();
    for s in 0..k {
        assert_eq!(
            images[s], model[s],
            "seed {seed}: recovered shard {s} diverges from the serial oracle"
        );
    }
    MixOutcome {
        images,
        committed,
        fates: fates
            .into_iter()
            .map(|f| f.expect("every txn reached a fate"))
            .collect(),
    }
}

/// The committed subset applied in commit order on a single thread:
/// per-shard images no concurrent execution may be distinguishable from.
pub fn serial_reference(plans: &[XPlan], committed: &[usize], k: usize) -> Vec<Vec<u8>> {
    let mut model: Vec<Vec<u8>> = (0..k).map(pre_image).collect();
    for &i in committed {
        for &(shard, off, len, fill) in &plans[i].ranges {
            model[shard][off..off + len].fill(fill);
        }
    }
    model
}
