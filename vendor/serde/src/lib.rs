//! Offline stub of the `serde` facade.
//!
//! The build environment has no network access to crates.io, so the real
//! serde cannot be fetched. This repo only uses `#[derive(Serialize,
//! Deserialize)]` as forward-looking annotations — nothing serializes at
//! runtime and no API has `T: Serialize` bounds — so a stub with marker
//! traits and no-op derive macros is behaviour-preserving. Swap back to the
//! real serde by restoring the crates.io entry in the workspace manifest.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
