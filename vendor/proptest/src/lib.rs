//! Offline mini-implementation of `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! subset of the proptest API the workspace's property tests use: the
//! `proptest!` macro, `Strategy` with `prop_map`, integer-range and tuple
//! strategies, `any::<T>()`, `Just`, `prop::collection::vec`,
//! `prop_oneof!`, the assertion/assumption macros, and
//! `ProptestConfig::with_cases`.
//!
//! Semantics: each test function runs `cases` iterations with inputs drawn
//! from a deterministic splitmix64 stream seeded per test name, so failures
//! reproduce across runs. Failed cases report the iteration; there is no
//! shrinking — inputs here are small enough to eyeball.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// Generates values of an associated type from a random stream.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (**self).new_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> S::Value {
            (**self).new_value(rng)
        }
    }

    /// Strategy adaptor produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice between type-erased strategies (see `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must sum to a positive value.
        pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = options.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs positive total weight");
            Union { options, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let mut pick = (rng.next_u64() % self.total as u64) as u32;
            for (w, s) in &self.options {
                if pick < *w {
                    return s.new_value(rng);
                }
                pick -= w;
            }
            unreachable!("weights exhausted")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($n:ident $i:tt),+);)*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
    }

    /// Types with a canonical whole-domain strategy (see [`any`]).
    pub trait Arbitrary: Sized {
        /// Draws a value from the full domain of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy over the whole domain of `T` (see [`any`]).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`, like proptest's `any::<T>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec()`]: a fixed size or a range of sizes.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.start() + (rng.next_u64() as usize) % (self.end() - self.start() + 1)
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S` and length spec `L`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// proptest's `prop::collection::vec`: a vector whose length is drawn
    /// from `len` and whose elements come from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Deterministic splitmix64 stream used to draw test inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the runner redraws.
        Reject(String),
        /// `prop_assert*!` failed; the runner panics with this message.
        Fail(String),
    }

    /// Result type of one generated test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Maximum rejected (assumed-away) cases before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl ProptestConfig {
        /// A config requiring `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    /// Drives the generate-and-check loop for one `proptest!` test.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Creates a runner with `config`.
        ///
        /// The `PROPTEST_CASES` environment variable overrides
        /// `config.cases` when set to a positive integer, so nightly CI
        /// can raise every property suite's case count without source
        /// changes.
        pub fn new(mut config: ProptestConfig) -> Self {
            if let Some(cases) = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse::<u32>().ok())
                .filter(|&c| c > 0)
            {
                config.cases = cases;
            }
            TestRunner { config }
        }

        /// Appends the failing case's reproduction seed to
        /// `$PROPTEST_FAILURE_DIR/seeds.csv` so CI can upload it as a
        /// failure artifact. A no-op when the variable is unset.
        fn record_failure(name: &str, draw: u64, case_seed: u64) {
            let Ok(dir) = std::env::var("PROPTEST_FAILURE_DIR") else {
                return;
            };
            let _ = std::fs::create_dir_all(&dir);
            let path = std::path::Path::new(&dir).join("seeds.csv");
            use std::io::Write as _;
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = f.write_all(format!("{name},{draw},{case_seed:#018x}\n").as_bytes());
            }
        }

        /// Runs `case` until `config.cases` draws pass.
        ///
        /// # Panics
        ///
        /// Panics when a case fails or too many draws are rejected.
        pub fn run_named(
            &mut self,
            name: &str,
            mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
        ) {
            let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
            });
            let mut rejects = 0u32;
            let mut passed = 0u32;
            let mut draw = 0u64;
            while passed < self.config.cases {
                let case_seed = seed.wrapping_add(draw);
                let mut rng = TestRng::new(case_seed);
                draw += 1;
                match case(&mut rng) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejects += 1;
                        if rejects > self.config.max_global_rejects {
                            panic!(
                                "{name}: too many rejected cases ({rejects}) — \
                                 prop_assume! filter is too strict"
                            );
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        Self::record_failure(name, draw, case_seed);
                        panic!("{name}: case {passed} (draw {draw}) failed: {msg}")
                    }
                }
            }
        }
    }
}

/// The `proptest::prelude` glob the tests import.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of proptest's `prop::` module path inside the prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares property tests: `#[test] fn name(pat in strategy, ...) { body }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat_param in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            runner.run_named(stringify!($name), |rng| {
                $( let $arg = $crate::strategy::Strategy::new_value(&($strat), rng); )+
                $body
                Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Fails the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the current case when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                        stringify!($left), stringify!($right), format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Fails the current case when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Weighted choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Top-level mirror of proptest's `prop::` path (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -5i32..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec(any::<u8>(), 0..16),
            w in (0u64..100).prop_map(|n| n * 2),
        ) {
            prop_assert!(v.len() < 16);
            prop_assert_eq!(w % 2, 0);
            prop_assume!(w < 300);
        }

        #[test]
        fn oneof_draws_every_arm(sel in prop_oneof![2 => Just(1u8), 1 => Just(2u8)]) {
            prop_assert!(sel == 1 || sel == 2);
        }
    }

    // Not under `proptest!`: drives a runner by hand to check that a
    // failing case appends its reproduction seed to
    // `$PROPTEST_FAILURE_DIR/seeds.csv`. The env var is process-global,
    // so the directory is unique per process and the variable is set
    // exactly once here (no other test in this binary reads it).
    #[test]
    fn failing_case_records_seed_for_ci_artifact() {
        use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
        let dir = std::env::temp_dir().join(format!("proptest-seeds-{}", std::process::id()));
        std::env::set_var("PROPTEST_FAILURE_DIR", &dir);
        let result = std::panic::catch_unwind(|| {
            let mut runner = TestRunner::new(ProptestConfig::with_cases(8));
            runner.run_named("seed_recording_probe", |_rng| {
                Err(TestCaseError::Fail("forced".to_string()))
            });
        });
        std::env::remove_var("PROPTEST_FAILURE_DIR");
        assert!(result.is_err(), "the failing case still panics");
        let seeds = std::fs::read_to_string(dir.join("seeds.csv")).unwrap();
        assert!(seeds.starts_with("seed_recording_probe,1,0x"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
