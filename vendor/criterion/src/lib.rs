//! Offline mini-implementation of `criterion`.
//!
//! Provides the subset of the criterion API the workspace's benches use
//! (groups, `bench_function`, `bench_with_input`, `iter`, `iter_batched`,
//! throughput annotations and the `criterion_group!`/`criterion_main!`
//! macros). Measurement is a timed loop keeping one per-iteration value
//! per sample, from which p50/p95/p99 are derived — real-criterion
//! statistics are out of scope; the paper-grade numbers come from the
//! virtual-time harness.
//!
//! When the bench binary is invoked with `--json` (e.g.
//! `cargo bench -- --json`), `criterion_main!` also writes a
//! `BENCH_<bench>.json` document with per-benchmark `mean_ns` /
//! `p50_ns` / `p95_ns` / `p99_ns` metrics into the workspace's
//! `results/` directory (override with `BENCH_JSON_DIR`). The file
//! carries an empty gate object: wall-clock micro-bench numbers are too
//! noisy to gate, they are recorded for trend eyeballing only.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

static JSON_SAMPLES: Mutex<Vec<(String, SampleStats)>> = Mutex::new(Vec::new());

/// Summary statistics of one benchmark's per-iteration times, in
/// nanoseconds.
#[derive(Debug, Clone, Copy)]
struct SampleStats {
    mean_ns: f64,
    p50_ns: f64,
    p95_ns: f64,
    p99_ns: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Called by `criterion_main!` after all groups ran: in `--json` mode,
/// writes the collected statistics as `BENCH_<bench>.json`.
///
/// `manifest_dir` is the invoking crate's `CARGO_MANIFEST_DIR` (baked in
/// by the macro), used to locate the workspace `results/` directory.
pub fn write_json_report(manifest_dir: &str) {
    if !std::env::args().any(|a| a == "--json") {
        return;
    }
    let bench = bench_name();
    let dir = results_dir(manifest_dir);
    let samples = JSON_SAMPLES
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut metrics = String::new();
    for (i, (id, stats)) in samples.iter().enumerate() {
        if i > 0 {
            metrics.push(',');
        }
        let id = json_escape(id);
        metrics.push_str(&format!(
            "\"{id}/mean_ns\":{:.3},\"{id}/p50_ns\":{:.3},\"{id}/p95_ns\":{:.3},\"{id}/p99_ns\":{:.3}",
            stats.mean_ns, stats.p50_ns, stats.p95_ns, stats.p99_ns
        ));
    }
    let doc = format!(
        "{{\"bench\":\"{}\",\"metrics\":{{{metrics}}},\"gate\":{{}}}}\n",
        json_escape(&bench)
    );
    let path = format!("{dir}/BENCH_{bench}.json");
    std::fs::write(&path, doc).expect("write bench json");
    println!("{bench}: wrote {path}");
}

/// The bench target's name: the executable stem minus cargo's `-<hash>`
/// suffix.
fn bench_name() -> String {
    let exe = std::env::current_exe().ok();
    let stem = exe
        .as_deref()
        .and_then(|p| p.file_stem())
        .and_then(|s| s.to_str())
        .unwrap_or("bench");
    match stem.rsplit_once('-') {
        Some((name, hash))
            if !name.is_empty()
                && !hash.is_empty()
                && hash.chars().all(|c| c.is_ascii_hexdigit()) =>
        {
            name.to_string()
        }
        _ => stem.to_string(),
    }
}

fn results_dir(manifest_dir: &str) -> String {
    if let Ok(dir) = std::env::var("BENCH_JSON_DIR") {
        return dir;
    }
    for candidate in [
        format!("{manifest_dir}/../../results"),
        format!("{manifest_dir}/results"),
    ] {
        if std::path::Path::new(&candidate).is_dir() {
            return candidate;
        }
    }
    ".".to_string()
}

/// Re-export so benches can `criterion::black_box` if they wish.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the time budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; warm-up is folded into measurement.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Units processed per iteration, for derived rates in the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup; accepted for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            budget: self.measurement_time,
            samples: self.sample_size,
            mean: Duration::ZERO,
            iters: 0,
            sample_ns: Vec::new(),
        };
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Runs one benchmark with an input parameter.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            budget: self.measurement_time,
            samples: self.sample_size,
            mean: Duration::ZERO,
            iters: 0,
            sample_ns: Vec::new(),
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    /// Closes the group.
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let per_iter = b.mean;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                let bps = n as f64 / per_iter.as_secs_f64();
                format!(" ({:.1} MiB/s)", bps / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                let eps = n as f64 / per_iter.as_secs_f64();
                format!(" ({eps:.0} elem/s)")
            }
            _ => String::new(),
        };
        let mut sorted = b.sample_ns.clone();
        sorted.sort_by(f64::total_cmp);
        let stats = SampleStats {
            mean_ns: per_iter.as_nanos() as f64,
            p50_ns: percentile(&sorted, 50.0),
            p95_ns: percentile(&sorted, 95.0),
            p99_ns: percentile(&sorted, 99.0),
        };
        println!(
            "{}/{id}: {:?}/iter over {} iters (p50 {:.0} ns, p95 {:.0} ns, p99 {:.0} ns){rate}",
            self.name, per_iter, b.iters, stats.p50_ns, stats.p95_ns, stats.p99_ns
        );
        JSON_SAMPLES
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push((format!("{}/{id}", self.name), stats));
    }
}

/// Times closures.
pub struct Bencher {
    budget: Duration,
    samples: usize,
    mean: Duration,
    iters: u64,
    /// Mean per-iteration time of each sample batch, in nanoseconds —
    /// the population the percentiles are computed over.
    sample_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine` repeatedly within the measurement budget.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: one untimed call, then batches until budget expires.
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let per_sample = self.budget / self.samples as u32;
        self.sample_ns.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            let mut n = 0u64;
            while start.elapsed() < per_sample {
                black_box(routine());
                n += 1;
            }
            let elapsed = start.elapsed();
            self.sample_ns
                .push(elapsed.as_nanos() as f64 / n.max(1) as f64);
            total += elapsed;
            iters += n;
        }
        self.iters = iters.max(1);
        self.mean = total / self.iters.max(1) as u32;
    }

    /// Times `routine` over inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        self.sample_ns.clear();
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let elapsed = start.elapsed();
            self.sample_ns.push(elapsed.as_nanos() as f64);
            total += elapsed;
            iters += 1;
        }
        self.iters = iters;
        self.mean = total / iters.max(1) as u32;
    }
}

/// Declares a benchmark group in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running the given groups, then emitting
/// the `--json` report if one was requested.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_report(env!("CARGO_MANIFEST_DIR"));
        }
    };
}
