//! Offline mini-implementation of `criterion`.
//!
//! Provides the subset of the criterion API the workspace's benches use
//! (groups, `bench_function`, `bench_with_input`, `iter`, `iter_batched`,
//! throughput annotations and the `criterion_group!`/`criterion_main!`
//! macros). Measurement is a simple timed loop — median-quality statistics
//! are out of scope; the paper-grade numbers come from the virtual-time
//! harness, these benches exist for regression eyeballing.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches can `criterion::black_box` if they wish.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the time budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for API compatibility; warm-up is folded into measurement.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Units processed per iteration, for derived rates in the report line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortises setup; accepted for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            budget: self.measurement_time,
            samples: self.sample_size,
            mean: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Runs one benchmark with an input parameter.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            budget: self.measurement_time,
            samples: self.sample_size,
            mean: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    /// Closes the group.
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let per_iter = b.mean;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
                let bps = n as f64 / per_iter.as_secs_f64();
                format!(" ({:.1} MiB/s)", bps / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
                let eps = n as f64 / per_iter.as_secs_f64();
                format!(" ({eps:.0} elem/s)")
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: {:?}/iter over {} iters{rate}",
            self.name, per_iter, b.iters
        );
    }
}

/// Times closures.
pub struct Bencher {
    budget: Duration,
    samples: usize,
    mean: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly within the measurement budget.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: one untimed call, then batches until budget expires.
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let per_sample = self.budget / self.samples as u32;
        for _ in 0..self.samples {
            let start = Instant::now();
            let mut n = 0u64;
            while start.elapsed() < per_sample {
                black_box(routine());
                n += 1;
            }
            total += start.elapsed();
            iters += n;
        }
        self.iters = iters.max(1);
        self.mean = total / self.iters.max(1) as u32;
    }

    /// Times `routine` over inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.iters = iters;
        self.mean = total / iters.max(1) as u32;
    }
}

/// Declares a benchmark group in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
