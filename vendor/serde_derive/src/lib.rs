//! Offline stub of `serde_derive`.
//!
//! The derives expand to nothing: the workspace never calls serde's
//! serialization machinery, it only annotates types for future use. An
//! empty expansion keeps `#[derive(Serialize, Deserialize)]` compiling
//! without pulling in syn/quote (unavailable offline).

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
