//! Offline stub of `parking_lot` backed by `std::sync`.
//!
//! Exposes the poison-free `lock()` / `read()` / `write()` API the
//! workspace uses; a poisoned std lock is recovered via `into_inner`, which
//! matches parking_lot's no-poisoning semantics.

use std::sync;

/// A mutual-exclusion lock with parking_lot's poison-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with parking_lot's poison-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
