//! Implementation of the `perseas` operator tool.
//!
//! Subcommands (see [`Command`]):
//!
//! * `serve` — run a network-RAM mirror server in the foreground;
//! * `ping` — liveness-check a mirror;
//! * `inspect` — dump a mirror's PERSEAS metadata (regions, undo log,
//!   commit record);
//! * `backup` — recover the database from a mirror and write a
//!   CRC-protected archive file;
//! * `restore` — re-hydrate an archive onto a fresh mirror;
//! * `stats` — scrape a mirror's `/metrics` endpoint and pretty-print it.
//!
//! The command implementations live in this library so they can be tested
//! in-process; `main.rs` only parses arguments.

use std::fmt::Write as _;

use perseas_core::{Perseas, PerseasConfig, META_TAG};
use perseas_rnram::server::Server;
use perseas_rnram::{AdmissionConfig, RemoteMemory, RnError, TcpRemote};

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Run a mirror server in the foreground.
    Serve {
        /// Bind address.
        addr: String,
        /// Node name reported to clients.
        name: String,
        /// Bind address for the optional `/metrics` HTTP endpoint.
        metrics_addr: Option<String>,
        /// Number of shard mirror servers to run (1 = a single mirror).
        /// With `N > 1`, shard `s` binds the base port plus `s` and
        /// reports itself as `NAME-sN`.
        shards: u16,
        /// Override for the shared in-flight window pool
        /// ([`AdmissionConfig::max_inflight`]); `None` keeps the default.
        mux_inflight: Option<usize>,
        /// Override for the admission queue bound
        /// ([`AdmissionConfig::max_queue`]); `None` keeps the default.
        mux_queue: Option<usize>,
    },
    /// Liveness-check a mirror.
    Ping {
        /// Server address.
        addr: String,
    },
    /// Scrape and pretty-print a mirror's metrics endpoint.
    Stats {
        /// Metrics endpoint address (the `--metrics-addr` of a `serve`).
        addr: String,
    },
    /// Dump PERSEAS metadata from a mirror.
    Inspect {
        /// Server address.
        addr: String,
        /// Metadata tag to look for.
        tag: u64,
    },
    /// Archive the database held by a mirror into `out`.
    Backup {
        /// Server address.
        addr: String,
        /// Output file path.
        out: String,
        /// Metadata tag.
        tag: u64,
    },
    /// Restore an archive file onto a fresh mirror.
    Restore {
        /// Server address.
        addr: String,
        /// Input file path.
        input: String,
        /// Metadata tag for the restored database.
        tag: u64,
    },
}

/// Error produced by argument parsing, carrying the usage message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

/// Renders the usage text.
pub fn usage() -> String {
    "usage: perseas <command> [options]\n\
     \n\
     commands:\n\
    \x20 serve   [--addr HOST:PORT] [--name NAME]   run a mirror server\n\
    \x20         [--metrics-addr HOST:PORT]         ... with a /metrics endpoint\n\
    \x20         [--shards N]                       ... one mirror per shard on\n\
    \x20                                            consecutive ports\n\
    \x20         [--mux-inflight N] [--mux-queue N] admission control: in-flight\n\
    \x20                                            window pool and queue bound\n\
    \x20 ping     --addr HOST:PORT                  liveness-check a mirror\n\
    \x20 stats    --addr HOST:PORT                  scrape and pretty-print /metrics\n\
    \x20 inspect  --addr HOST:PORT [--tag HEX]      dump PERSEAS metadata\n\
    \x20 backup   --addr HOST:PORT --out FILE       archive the database\n\
    \x20 restore  --addr HOST:PORT --in FILE        re-hydrate an archive\n"
        .to_string()
}

fn take_flag(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, UsageError> {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        if pos + 1 >= args.len() {
            return Err(UsageError(format!(
                "{flag} requires a value\n\n{}",
                usage()
            )));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

fn parse_tag(args: &mut Vec<String>) -> Result<u64, UsageError> {
    match take_flag(args, "--tag")? {
        None => Ok(META_TAG),
        Some(hex) => u64::from_str_radix(hex.trim_start_matches("0x"), 16)
            .map_err(|e| UsageError(format!("bad --tag '{hex}': {e}"))),
    }
}

fn reject_leftovers(args: Vec<String>) -> Result<(), UsageError> {
    if args.is_empty() {
        Ok(())
    } else {
        Err(UsageError(format!(
            "unexpected arguments: {}\n\n{}",
            args.join(" "),
            usage()
        )))
    }
}

/// Parses a command line (without the program name).
///
/// # Errors
///
/// Returns a [`UsageError`] describing the problem and the usage text.
pub fn parse(args: Vec<String>) -> Result<Command, UsageError> {
    let mut args = args;
    if args.is_empty() {
        return Err(UsageError(usage()));
    }
    let cmd = args.remove(0);
    let need_addr = |args: &mut Vec<String>| -> Result<String, UsageError> {
        take_flag(args, "--addr")?
            .ok_or_else(|| UsageError(format!("--addr is required\n\n{}", usage())))
    };
    match cmd.as_str() {
        "serve" => {
            let addr = take_flag(&mut args, "--addr")?.unwrap_or_else(|| "127.0.0.1:7070".into());
            let name = take_flag(&mut args, "--name")?.unwrap_or_else(|| "perseas-mirror".into());
            let metrics_addr = take_flag(&mut args, "--metrics-addr")?;
            let shards = match take_flag(&mut args, "--shards")? {
                None => 1,
                Some(n) => match n.parse::<u16>() {
                    Ok(n) if n >= 1 => n,
                    _ => return Err(UsageError(format!("bad --shards '{n}': need 1..=65535"))),
                },
            };
            let mut limit = |flag: &str| -> Result<Option<usize>, UsageError> {
                match take_flag(&mut args, flag)? {
                    None => Ok(None),
                    Some(n) => match n.parse::<usize>() {
                        Ok(n) if n >= 1 => Ok(Some(n)),
                        _ => Err(UsageError(format!("bad {flag} '{n}': need a count >= 1"))),
                    },
                }
            };
            let mux_inflight = limit("--mux-inflight")?;
            let mux_queue = limit("--mux-queue")?;
            reject_leftovers(args)?;
            Ok(Command::Serve {
                addr,
                name,
                metrics_addr,
                shards,
                mux_inflight,
                mux_queue,
            })
        }
        "ping" => {
            let addr = need_addr(&mut args)?;
            reject_leftovers(args)?;
            Ok(Command::Ping { addr })
        }
        "stats" => {
            let addr = need_addr(&mut args)?;
            reject_leftovers(args)?;
            Ok(Command::Stats { addr })
        }
        "inspect" => {
            let addr = need_addr(&mut args)?;
            let tag = parse_tag(&mut args)?;
            reject_leftovers(args)?;
            Ok(Command::Inspect { addr, tag })
        }
        "backup" => {
            let addr = need_addr(&mut args)?;
            let out = take_flag(&mut args, "--out")?
                .ok_or_else(|| UsageError(format!("--out is required\n\n{}", usage())))?;
            let tag = parse_tag(&mut args)?;
            reject_leftovers(args)?;
            Ok(Command::Backup { addr, out, tag })
        }
        "restore" => {
            let addr = need_addr(&mut args)?;
            let input = take_flag(&mut args, "--in")?
                .ok_or_else(|| UsageError(format!("--in is required\n\n{}", usage())))?;
            let tag = parse_tag(&mut args)?;
            reject_leftovers(args)?;
            Ok(Command::Restore { addr, input, tag })
        }
        "--help" | "-h" | "help" => Err(UsageError(usage())),
        other => Err(UsageError(format!(
            "unknown command '{other}'\n\n{}",
            usage()
        ))),
    }
}

/// Running servers started by [`start_serve`]: the mirror itself plus the
/// optional `/metrics` endpoint exporting its request metrics.
pub struct ServeHandles {
    /// The network-RAM mirror server.
    pub server: perseas_rnram::server::ServerHandle,
    /// The metrics endpoint, present when a metrics address was given.
    pub metrics: Option<perseas_obs::MetricsServerHandle>,
}

/// Starts a mirror server on `addr` with the given admission limits
/// (`--mux-inflight` / `--mux-queue`), and — when `metrics_addr` is given
/// — a `/metrics` HTTP endpoint exposing its request counters, latencies,
/// byte totals, connection churn, and admission gauges.
///
/// This is `perseas serve` without the foreground `park()` loop, so tests
/// can run it in-process and shut it down.
///
/// # Errors
///
/// Fails if either address cannot be bound.
pub fn start_serve(
    addr: &str,
    name: &str,
    metrics_addr: Option<&str>,
    admission: AdmissionConfig,
) -> Result<ServeHandles, String> {
    let server = Server::bind(name, addr)
        .map_err(|e| format!("cannot bind {addr}: {e}"))?
        .with_admission(admission);
    let (server, metrics) = match metrics_addr {
        None => (server, None),
        Some(maddr) => {
            let registry = perseas_obs::Registry::new();
            let server = server.with_metrics(&registry);
            let handle = perseas_obs::MetricsServer::serve(maddr, registry)
                .map_err(|e| format!("cannot bind metrics endpoint {maddr}: {e}"))?;
            (server, Some(handle))
        }
    };
    Ok(ServeHandles {
        server: server.start(),
        metrics,
    })
}

/// Running servers started by [`start_serve_shards`]: one mirror server
/// per shard plus the optional shared `/metrics` endpoint aggregating
/// their request metrics.
pub struct ShardServeHandles {
    /// The shard mirror servers, indexed by shard.
    pub servers: Vec<perseas_rnram::server::ServerHandle>,
    /// The metrics endpoint, present when a metrics address was given.
    pub metrics: Option<perseas_obs::MetricsServerHandle>,
}

/// Starts `shards` mirror servers, one per shard of a sharded database:
/// shard `s` binds the base port of `addr` plus `s` (all ephemeral when
/// the base port is 0) and reports itself as `NAME-sN`. With one shard
/// this is exactly [`start_serve`]. When `metrics_addr` is given, one
/// `/metrics` endpoint serves the aggregate request counters of every
/// shard server.
///
/// # Errors
///
/// Fails on a malformed `addr`, a port range overflowing 65535, or any
/// address that cannot be bound.
pub fn start_serve_shards(
    addr: &str,
    name: &str,
    shards: u16,
    metrics_addr: Option<&str>,
    admission: AdmissionConfig,
) -> Result<ShardServeHandles, String> {
    if shards == 0 {
        return Err("need at least one shard".into());
    }
    if shards == 1 {
        let handles = start_serve(addr, name, metrics_addr, admission)?;
        return Ok(ShardServeHandles {
            servers: vec![handles.server],
            metrics: handles.metrics,
        });
    }
    let (host, port) = addr
        .rsplit_once(':')
        .ok_or_else(|| format!("bad address '{addr}': need HOST:PORT"))?;
    let port: u16 = port
        .parse()
        .map_err(|e| format!("bad port in '{addr}': {e}"))?;
    let registry = metrics_addr.map(|_| perseas_obs::Registry::new());
    let mut servers = Vec::with_capacity(shards as usize);
    for s in 0..shards {
        let bind = if port == 0 {
            format!("{host}:0")
        } else {
            let p = port
                .checked_add(s)
                .ok_or_else(|| format!("shard {s} port overflows 65535 from base {port}"))?;
            format!("{host}:{p}")
        };
        let sname = format!("{name}-s{s}");
        let server = Server::bind(&sname, &bind)
            .map_err(|e| format!("cannot bind {bind}: {e}"))?
            .with_admission(admission);
        let server = match &registry {
            Some(r) => server.with_metrics(r),
            None => server,
        };
        servers.push(server.start());
    }
    let metrics = match (registry, metrics_addr) {
        (Some(registry), Some(maddr)) => Some(
            perseas_obs::MetricsServer::serve(maddr, registry)
                .map_err(|e| format!("cannot bind metrics endpoint {maddr}: {e}"))?,
        ),
        _ => None,
    };
    Ok(ShardServeHandles { servers, metrics })
}

/// Builds the server [`AdmissionConfig`] from the optional
/// `--mux-inflight` / `--mux-queue` overrides, keeping the library
/// default for whichever flag is absent.
pub fn admission_from(mux_inflight: Option<usize>, mux_queue: Option<usize>) -> AdmissionConfig {
    let mut admission = AdmissionConfig::default();
    if let Some(n) = mux_inflight {
        admission.max_inflight = n;
    }
    if let Some(n) = mux_queue {
        admission.max_queue = n;
    }
    admission
}

/// Scrapes the `/metrics` endpoint at `addr` and renders the samples as an
/// aligned, human-readable table.
///
/// # Errors
///
/// Fails if the endpoint is unreachable or its exposition does not parse.
pub fn stats(addr: &str) -> Result<String, String> {
    render_stats(&perseas_obs::scrape(addr)?)
}

fn render_stats(exposition: &str) -> Result<String, String> {
    let samples = perseas_obs::parse_exposition(exposition)?;
    if samples.is_empty() {
        return Ok("no samples exported\n".to_string());
    }
    let rows: Vec<(String, String)> = samples
        .iter()
        .map(|s| {
            let mut key = s.name.clone();
            if !s.labels.is_empty() {
                let labels: Vec<String> = s
                    .labels
                    .iter()
                    .map(|(k, v)| format!("{k}=\"{v}\""))
                    .collect();
                let _ = write!(key, "{{{}}}", labels.join(","));
            }
            (key, render_value(s.value))
        })
        .collect();
    let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (key, value) in rows {
        let _ = writeln!(out, "{key:<width$}  {value}");
    }
    Ok(out)
}

fn render_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Liveness-checks the mirror at `addr`, returning its node name.
///
/// # Errors
///
/// Fails if the server is unreachable.
pub fn ping(addr: &str) -> Result<String, RnError> {
    let mut c = TcpRemote::connect(addr)?;
    c.ping()?;
    c.fetch_name()
}

/// Renders a human-readable metadata report for the database tagged `tag`
/// on the mirror at `addr`.
///
/// # Errors
///
/// Fails if the mirror is unreachable or holds no such database.
pub fn inspect(addr: &str, tag: u64) -> Result<String, String> {
    let mut c = TcpRemote::connect(addr).map_err(|e| e.to_string())?;
    let name = c.fetch_name().map_err(|e| e.to_string())?;
    let meta = c.connect_segment(tag).map_err(|e| e.to_string())?;
    let mut image = vec![0u8; meta.len];
    c.remote_read(meta.id, 0, &mut image)
        .map_err(|e| e.to_string())?;
    let header = perseas_core::MetaHeader::decode(&image)?;

    let mut out = String::new();
    let _ = writeln!(out, "mirror:          {name} ({addr})");
    let _ = writeln!(
        out,
        "metadata:        {} ({} bytes, tag {tag:#x})",
        meta.id, meta.len
    );
    let _ = writeln!(out, "last committed:  txn {}", header.last_committed);
    if header.flags & perseas_core::FLAG_SHARDED != 0 {
        let _ = writeln!(
            out,
            "shard:           {} of {} ({} intent / {} decision slots)",
            header.shard_index, header.shard_count, header.intent_slots, header.decision_slots
        );
    }
    let _ = writeln!(
        out,
        "undo log:        {} ({} bytes)",
        perseas_rnram::SegmentId::from_raw(header.undo_seg_id),
        header.undo_seg_len
    );
    let _ = writeln!(out, "regions:         {}", header.region_count);
    let mut total = 0u64;
    for i in 0..header.region_count as usize {
        let (seg_id, len) = perseas_core::decode_region_entry(&image, i)?;
        let _ = writeln!(
            out,
            "  region#{i}: {} ({len} bytes)",
            perseas_rnram::SegmentId::from_raw(seg_id)
        );
        total += len;
    }
    let _ = writeln!(out, "database size:   {total} bytes");
    Ok(out)
}

/// Recovers the database from the mirror at `addr` and returns its
/// archive bytes (the caller writes them to a file).
///
/// # Errors
///
/// Fails if recovery is impossible.
pub fn backup(addr: &str, tag: u64) -> Result<Vec<u8>, String> {
    let c = TcpRemote::connect(addr).map_err(|e| e.to_string())?;
    let cfg = PerseasConfig::default().with_meta_tag(tag);
    let (db, report) = Perseas::recover(c, cfg).map_err(|e| e.to_string())?;
    let archive = db.archive().map_err(|e| e.to_string())?;
    let _ = report;
    Ok(archive)
}

/// Restores archive bytes onto the (fresh) mirror at `addr` and returns
/// a short report.
///
/// # Errors
///
/// Fails on corrupt archives or unreachable mirrors.
pub fn restore(addr: &str, tag: u64, archive: &[u8]) -> Result<String, String> {
    let c = TcpRemote::connect(addr).map_err(|e| e.to_string())?;
    let cfg = PerseasConfig::default().with_meta_tag(tag);
    let db = Perseas::restore(vec![c], cfg, archive).map_err(|e| e.to_string())?;
    Ok(format!(
        "restored {} region(s), history up to txn {}",
        db.mirror_count().max(1),
        db.last_committed()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    /// `serve` with every field defaulted except the overrides applied by
    /// `f` — enum variants have no struct-update syntax, so the parse
    /// tests mutate a deconstructed default instead.
    fn serve_with(f: impl FnOnce(&mut Command)) -> Command {
        let mut cmd = Command::Serve {
            addr: "127.0.0.1:7070".into(),
            name: "perseas-mirror".into(),
            metrics_addr: None,
            shards: 1,
            mux_inflight: None,
            mux_queue: None,
        };
        f(&mut cmd);
        cmd
    }

    #[test]
    fn parse_serve_defaults() {
        assert_eq!(parse(v(&["serve"])).unwrap(), serve_with(|_| {}));
        assert_eq!(
            parse(v(&["serve", "--addr", "0.0.0.0:9", "--name", "n1"])).unwrap(),
            serve_with(|c| {
                if let Command::Serve { addr, name, .. } = c {
                    *addr = "0.0.0.0:9".into();
                    *name = "n1".into();
                }
            })
        );
        assert_eq!(
            parse(v(&["serve", "--metrics-addr", "127.0.0.1:9185"])).unwrap(),
            serve_with(|c| {
                if let Command::Serve { metrics_addr, .. } = c {
                    *metrics_addr = Some("127.0.0.1:9185".into());
                }
            })
        );
    }

    #[test]
    fn parse_serve_shards() {
        assert_eq!(
            parse(v(&["serve", "--shards", "3"])).unwrap(),
            serve_with(|c| {
                if let Command::Serve { shards, .. } = c {
                    *shards = 3;
                }
            })
        );
        assert!(parse(v(&["serve", "--shards", "0"])).is_err());
        assert!(parse(v(&["serve", "--shards", "many"])).is_err());
        assert!(parse(v(&["serve", "--shards"])).is_err());
    }

    #[test]
    fn parse_serve_admission_limits() {
        assert_eq!(
            parse(v(&["serve", "--mux-inflight", "8", "--mux-queue", "32"])).unwrap(),
            serve_with(|c| {
                if let Command::Serve {
                    mux_inflight,
                    mux_queue,
                    ..
                } = c
                {
                    *mux_inflight = Some(8);
                    *mux_queue = Some(32);
                }
            })
        );
        // Each flag stands alone; the other keeps the library default.
        assert_eq!(
            parse(v(&["serve", "--mux-queue", "5"])).unwrap(),
            serve_with(|c| {
                if let Command::Serve { mux_queue, .. } = c {
                    *mux_queue = Some(5);
                }
            })
        );
        assert!(parse(v(&["serve", "--mux-inflight", "0"])).is_err());
        assert!(parse(v(&["serve", "--mux-queue", "lots"])).is_err());
        assert!(parse(v(&["serve", "--mux-inflight"])).is_err());

        let a = admission_from(Some(8), None);
        assert_eq!(a.max_inflight, 8);
        assert_eq!(a.max_queue, AdmissionConfig::default().max_queue);
        let b = admission_from(None, None);
        assert_eq!(b.max_inflight, AdmissionConfig::default().max_inflight);
    }

    #[test]
    fn parse_stats() {
        assert_eq!(
            parse(v(&["stats", "--addr", "127.0.0.1:9185"])).unwrap(),
            Command::Stats {
                addr: "127.0.0.1:9185".into()
            }
        );
        assert!(parse(v(&["stats"])).is_err());
    }

    #[test]
    fn parse_requires_addr() {
        assert!(parse(v(&["ping"])).is_err());
        assert!(parse(v(&["inspect"])).is_err());
        assert_eq!(
            parse(v(&["ping", "--addr", "h:1"])).unwrap(),
            Command::Ping { addr: "h:1".into() }
        );
    }

    #[test]
    fn parse_tags_in_hex() {
        match parse(v(&["inspect", "--addr", "h:1", "--tag", "0xAB"])).unwrap() {
            Command::Inspect { tag, .. } => assert_eq!(tag, 0xAB),
            other => panic!("{other:?}"),
        }
        match parse(v(&["inspect", "--addr", "h:1"])).unwrap() {
            Command::Inspect { tag, .. } => assert_eq!(tag, META_TAG),
            other => panic!("{other:?}"),
        }
        assert!(parse(v(&["inspect", "--addr", "h:1", "--tag", "zz"])).is_err());
    }

    #[test]
    fn parse_backup_restore() {
        assert_eq!(
            parse(v(&["backup", "--addr", "h:1", "--out", "f.arch"])).unwrap(),
            Command::Backup {
                addr: "h:1".into(),
                out: "f.arch".into(),
                tag: META_TAG
            }
        );
        assert!(parse(v(&["backup", "--addr", "h:1"])).is_err());
        assert_eq!(
            parse(v(&["restore", "--addr", "h:1", "--in", "f.arch"])).unwrap(),
            Command::Restore {
                addr: "h:1".into(),
                input: "f.arch".into(),
                tag: META_TAG
            }
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse(v(&[])).is_err());
        assert!(parse(v(&["frobnicate"])).is_err());
        assert!(parse(v(&["serve", "stray"])).is_err());
        assert!(parse(v(&["serve", "--addr"])).is_err());
        assert!(parse(v(&["help"])).is_err()); // help renders usage as "error"
    }

    #[test]
    fn end_to_end_against_in_process_server() {
        use perseas_rnram::server::Server;
        let server = Server::bind("cli-node", "127.0.0.1:0").unwrap().start();
        let addr = server.addr().to_string();

        assert_eq!(ping(&addr).unwrap(), "cli-node");

        // Build a small database on the mirror, then inspect/backup/restore.
        let c = TcpRemote::connect(&addr).unwrap();
        let mut db = Perseas::init(vec![c], PerseasConfig::default()).unwrap();
        let r = db.malloc(128).unwrap();
        db.init_remote_db().unwrap();
        db.begin_transaction().unwrap();
        db.set_range(r, 0, 8).unwrap();
        db.write(r, 0, &[9; 8]).unwrap();
        db.commit_transaction().unwrap();

        let report = inspect(&addr, META_TAG).unwrap();
        assert!(report.contains("last committed:  txn 1"), "{report}");
        assert!(report.contains("regions:         1"), "{report}");
        assert!(report.contains("128 bytes"), "{report}");

        let archive = backup(&addr, META_TAG).unwrap();
        let server2 = Server::bind("cli-node-2", "127.0.0.1:0").unwrap().start();
        let addr2 = server2.addr().to_string();
        let msg = restore(&addr2, META_TAG, &archive).unwrap();
        assert!(msg.contains("txn 1"), "{msg}");

        // The restored mirror now answers inspect with the same shape.
        let report2 = inspect(&addr2, META_TAG).unwrap();
        assert!(report2.contains("regions:         1"), "{report2}");
        server.shutdown();
        server2.shutdown();
    }

    #[test]
    fn serve_with_metrics_is_scrapeable_via_stats() {
        let handles = start_serve(
            "127.0.0.1:0",
            "obs-node",
            Some("127.0.0.1:0"),
            AdmissionConfig::default(),
        )
        .unwrap();
        let addr = handles.server.addr().to_string();
        let metrics_addr = handles.metrics.as_ref().unwrap().addr().to_string();

        // Drive some traffic so the scrape has non-zero counters.
        let c = TcpRemote::connect(&addr).unwrap();
        let mut db = Perseas::init(vec![c], PerseasConfig::default()).unwrap();
        let r = db.malloc(64).unwrap();
        db.init_remote_db().unwrap();
        db.transaction(|t| t.update(r, 0, &[3; 16])).unwrap();

        let report = stats(&metrics_addr).unwrap();
        assert!(
            report.contains("perseas_server_requests_total{op=\"write"),
            "{report}"
        );
        assert!(
            report.contains("perseas_server_connections_total"),
            "{report}"
        );
        // Integral counters render without a decimal point.
        assert!(!report.contains("perseas_server_connections_total  1.0"));

        // A bad port is a clean error, not a panic.
        assert!(stats("127.0.0.1:1").is_err());
        handles.server.shutdown();
    }

    #[test]
    fn sharded_database_runs_over_shard_servers() {
        use perseas_core::ShardedPerseas;
        let handles = start_serve_shards(
            "127.0.0.1:0",
            "cluster",
            2,
            None,
            AdmissionConfig::default(),
        )
        .unwrap();
        assert_eq!(handles.servers.len(), 2);
        let addrs: Vec<String> = handles
            .servers
            .iter()
            .map(|s| s.addr().to_string())
            .collect();
        assert_eq!(ping(&addrs[0]).unwrap(), "cluster-s0");
        assert_eq!(ping(&addrs[1]).unwrap(), "cluster-s1");

        // One mirror per shard, each on its own server.
        let backends: Vec<Vec<TcpRemote>> = addrs
            .iter()
            .map(|a| vec![TcpRemote::connect(a).unwrap()])
            .collect();
        let mut db = ShardedPerseas::init(backends, PerseasConfig::default()).unwrap();
        let a = db.malloc(64).unwrap();
        let b = db.malloc(64).unwrap();
        db.init_remote_db().unwrap();
        let g = db.begin_global().unwrap();
        db.set_range_g(g, a, 0, 8).unwrap();
        db.set_range_g(g, b, 0, 8).unwrap();
        db.write_g(g, a, 0, &[1; 8]).unwrap();
        db.write_g(g, b, 0, &[2; 8]).unwrap();
        db.commit_g(g).unwrap();

        // Each shard server holds its own shard's metadata: shard s keeps
        // tag META_TAG + s and stamps its identity into the header.
        let report0 = inspect(&addrs[0], META_TAG).unwrap();
        assert!(report0.contains("shard:           0 of 2"), "{report0}");
        assert!(report0.contains("last committed:  txn 1"), "{report0}");
        let report1 = inspect(&addrs[1], META_TAG + 1).unwrap();
        assert!(report1.contains("shard:           1 of 2"), "{report1}");
        for s in handles.servers {
            s.shutdown();
        }
    }

    #[test]
    fn stats_renders_aligned_integers_and_floats() {
        let report = render_stats(
            "# HELP a_total help\n# TYPE a_total counter\na_total 3\n\
             # HELP b_seconds help\n# TYPE b_seconds summary\nb_seconds_sum 0.25\n",
        )
        .unwrap();
        assert!(report.contains("a_total        3\n"), "{report}");
        assert!(report.contains("b_seconds_sum  0.25\n"), "{report}");
        assert!(render_stats("garbage {{{\n").is_err());
    }

    #[test]
    fn inspect_errors_are_clean() {
        use perseas_rnram::server::Server;
        let server = Server::bind("empty", "127.0.0.1:0").unwrap().start();
        let err = inspect(&server.addr().to_string(), 0x123).unwrap_err();
        assert!(err.contains("tag"), "{err}");
        server.shutdown();
    }
}
