//! The `perseas` operator tool. See [`perseas_cli`] for the command
//! implementations.

use std::env;
use std::fs;
use std::process::ExitCode;

use perseas_cli::{
    admission_from, backup, inspect, parse, ping, restore, start_serve_shards, stats, Command,
};

fn main() -> ExitCode {
    let command = match parse(env::args().skip(1).collect()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{}", e.0);
            return ExitCode::FAILURE;
        }
    };
    match run(command) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(command: Command) -> Result<(), String> {
    match command {
        Command::Serve {
            addr,
            name,
            metrics_addr,
            shards,
            mux_inflight,
            mux_queue,
        } => {
            let handles = start_serve_shards(
                &addr,
                &name,
                shards,
                metrics_addr.as_deref(),
                admission_from(mux_inflight, mux_queue),
            )?;
            for server in &handles.servers {
                println!(
                    "mirror '{}' exporting memory on {}",
                    server.node().name(),
                    server.addr()
                );
            }
            if let Some(metrics) = &handles.metrics {
                println!("metrics on http://{}/metrics", metrics.addr());
            }
            println!("ctrl-c to stop");
            loop {
                std::thread::park();
            }
        }
        Command::Ping { addr } => {
            let name = ping(&addr).map_err(|e| e.to_string())?;
            println!("{addr} is alive: node '{name}'");
            Ok(())
        }
        Command::Stats { addr } => {
            print!("{}", stats(&addr)?);
            Ok(())
        }
        Command::Inspect { addr, tag } => {
            print!("{}", inspect(&addr, tag)?);
            Ok(())
        }
        Command::Backup { addr, out, tag } => {
            let archive = backup(&addr, tag)?;
            fs::write(&out, &archive).map_err(|e| format!("cannot write {out}: {e}"))?;
            println!("wrote {} bytes to {out}", archive.len());
            Ok(())
        }
        Command::Restore { addr, input, tag } => {
            let archive = fs::read(&input).map_err(|e| format!("cannot read {input}: {e}"))?;
            let report = restore(&addr, tag, &archive)?;
            println!("{report}");
            Ok(())
        }
    }
}
