//! Behavioural model of the Dolphin PCI-SCI cluster adapter used by the
//! PERSEAS paper (Section 4).
//!
//! The physical card divides memory into 64-byte chunks aligned on 64-byte
//! boundaries; each chunk maps to one of eight internal 64-byte write
//! buffers (bits 0–5 of a word's physical address are the offset within a
//! buffer, bits 6–8 select the buffer). Stores to contiguous addresses are
//! *gathered* in the buffers, full buffers are flushed as single 64-byte SCI
//! packets, and partially filled buffers are transmitted as a set of 16-byte
//! packets. Distinct buffers transmit independently (*buffer streaming*), so
//! the per-packet overhead of a long store burst is largely overlapped.
//!
//! This crate models exactly that behaviour on a virtual clock:
//!
//! * [`BufferAddr`] — the address→(buffer, offset) mapping of Figure 4;
//! * [`packetize`] — the store-gathering/packetisation rule, yielding the
//!   SCI packets a write burst generates;
//! * [`SciParams`] / [`remote_write_latency`] — the calibrated latency model
//!   that reproduces Figure 5;
//! * [`NodeMemory`] — a remote node's exported memory ("network RAM"),
//!   which survives crashes of the *local* node;
//! * [`SciLink`] — a unidirectional mapping from a local process onto a
//!   remote node's memory, with packet-granularity fault injection.
//!
//! # Examples
//!
//! ```
//! use perseas_simtime::SimClock;
//! use perseas_sci::{NodeMemory, SciLink, SciParams};
//!
//! # fn main() -> Result<(), perseas_sci::SciError> {
//! let clock = SimClock::new();
//! let remote = NodeMemory::new("mirror");
//! let link = SciLink::new(clock.clone(), remote.clone(), SciParams::dolphin_1998());
//!
//! let seg = remote.export_segment(128, 0)?;
//! link.remote_write(seg, 0, b"hello network RAM")?;
//!
//! let mut buf = [0u8; 17];
//! remote.read(seg, 0, &mut buf)?;
//! assert_eq!(&buf, b"hello network RAM");
//! assert!(clock.now().as_nanos() > 0); // the write cost virtual time
//! # Ok(())
//! # }
//! ```

mod addr;
mod error;
mod latency;
mod link;
mod node;
mod packet;

pub use addr::{BufferAddr, BUFFER_COUNT, BUFFER_SIZE, LINE_SIZE, WORD_SIZE};
pub use error::SciError;
pub use latency::{remote_read_latency, remote_write_latency, remote_write_v_latency, SciParams};
pub use link::{LinkStats, SciLink};
pub use node::{NodeMemory, SegmentId, SegmentInfo};
pub use packet::{packetize, Packet, PacketKind};
