//! The remote node's exported memory — the "network RAM" of the paper.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::SciError;

/// Identifier of an exported remote memory segment.
///
/// Segment ids are issued by the owning [`NodeMemory`] and are never reused,
/// so a stale id after a `free` reliably reports
/// [`SciError::SegmentNotFound`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SegmentId(u64);

impl SegmentId {
    /// Builds a segment id from its raw integer representation (used when
    /// reconnecting after a crash, where ids are read back from remote
    /// metadata).
    pub const fn from_raw(raw: u64) -> Self {
        SegmentId(raw)
    }

    /// The raw integer representation.
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg#{}", self.0)
    }
}

/// Metadata describing one exported segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentInfo {
    /// The segment's identifier.
    pub id: SegmentId,
    /// Length in bytes.
    pub len: usize,
    /// Client-chosen tag used to relocate segments after a crash
    /// (`sci_connect_segment` in the paper).
    pub tag: u64,
    /// Base "physical" address of the segment on the remote node; remote
    /// write latency depends on how the address range maps onto SCI
    /// buffers.
    pub base_addr: u64,
}

#[derive(Debug)]
struct Segment {
    data: Vec<u8>,
    tag: u64,
    base_addr: u64,
}

#[derive(Debug)]
struct Inner {
    name: String,
    segments: BTreeMap<SegmentId, Segment>,
    next_id: u64,
    next_addr: u64,
    capacity: usize,
    used: usize,
    crashed: bool,
}

/// The main memory a remote workstation exports as network RAM.
///
/// Cloning a `NodeMemory` yields a handle to the same node. The structure
/// deliberately lives *outside* any primary-node state: when the primary
/// "crashes" in tests, its `NodeMemory` handles remain valid, modelling the
/// paper's independent power supplies.
///
/// # Examples
///
/// ```
/// use perseas_sci::NodeMemory;
///
/// # fn main() -> Result<(), perseas_sci::SciError> {
/// let node = NodeMemory::new("mirror-a");
/// let seg = node.export_segment(32, 7)?;
/// node.write(seg, 0, &[1, 2, 3])?;
/// let mut buf = [0u8; 3];
/// node.read(seg, 0, &mut buf)?;
/// assert_eq!(buf, [1, 2, 3]);
/// assert_eq!(node.find_by_tag(7).unwrap().id, seg);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NodeMemory {
    inner: Arc<Mutex<Inner>>,
}

impl NodeMemory {
    /// Default exportable memory per node: 64 MB, matching the paper's PCs.
    pub const DEFAULT_CAPACITY: usize = 64 << 20;

    /// Creates a node exporting [`NodeMemory::DEFAULT_CAPACITY`] bytes.
    pub fn new(name: impl Into<String>) -> Self {
        NodeMemory::with_capacity(name, Self::DEFAULT_CAPACITY)
    }

    /// Creates a node exporting at most `capacity` bytes.
    pub fn with_capacity(name: impl Into<String>, capacity: usize) -> Self {
        NodeMemory {
            inner: Arc::new(Mutex::new(Inner {
                name: name.into(),
                segments: BTreeMap::new(),
                next_id: 1,
                next_addr: 0,
                capacity,
                used: 0,
                crashed: false,
            })),
        }
    }

    /// The node's name (for diagnostics).
    pub fn name(&self) -> String {
        self.inner.lock().name.clone()
    }

    /// Exports a fresh zero-filled segment of `len` bytes with client tag
    /// `tag` (the paper's *remote malloc*, server side).
    ///
    /// # Errors
    ///
    /// Returns [`SciError::NodeCrashed`] if the node is down and
    /// [`SciError::OutOfMemory`] if capacity is exhausted.
    pub fn export_segment(&self, len: usize, tag: u64) -> Result<SegmentId, SciError> {
        let mut g = self.inner.lock();
        if g.crashed {
            return Err(SciError::NodeCrashed);
        }
        if g.used
            .checked_add(len)
            .is_none_or(|total| total > g.capacity)
        {
            return Err(SciError::OutOfMemory {
                requested: len,
                available: g.capacity - g.used,
            });
        }
        let id = SegmentId(g.next_id);
        g.next_id += 1;
        // Segments are laid out contiguously on 64-byte boundaries, like
        // the pinned physical chunks the real driver exports.
        let base_addr = crate::addr::align_up(g.next_addr);
        g.next_addr = base_addr + len as u64;
        g.used += len;
        g.segments.insert(
            id,
            Segment {
                data: vec![0; len],
                tag,
                base_addr,
            },
        );
        Ok(id)
    }

    /// Frees an exported segment (the paper's *remote free*).
    ///
    /// # Errors
    ///
    /// Returns [`SciError::SegmentNotFound`] for unknown ids and
    /// [`SciError::NodeCrashed`] if the node is down.
    pub fn free_segment(&self, id: SegmentId) -> Result<(), SciError> {
        let mut g = self.inner.lock();
        if g.crashed {
            return Err(SciError::NodeCrashed);
        }
        match g.segments.remove(&id) {
            Some(seg) => {
                g.used -= seg.data.len();
                Ok(())
            }
            None => Err(SciError::SegmentNotFound(id)),
        }
    }

    /// Writes `data` into segment `id` at byte `offset`.
    ///
    /// # Errors
    ///
    /// Fails with [`SciError::SegmentNotFound`], [`SciError::OutOfBounds`],
    /// or [`SciError::NodeCrashed`].
    pub fn write(&self, id: SegmentId, offset: usize, data: &[u8]) -> Result<(), SciError> {
        let mut g = self.inner.lock();
        if g.crashed {
            return Err(SciError::NodeCrashed);
        }
        let seg = g
            .segments
            .get_mut(&id)
            .ok_or(SciError::SegmentNotFound(id))?;
        let end = offset
            .checked_add(data.len())
            .filter(|&e| e <= seg.data.len())
            .ok_or(SciError::OutOfBounds {
                segment: id,
                offset,
                len: data.len(),
                segment_len: seg.data.len(),
            })?;
        seg.data[offset..end].copy_from_slice(data);
        Ok(())
    }

    /// Reads `buf.len()` bytes from segment `id` at byte `offset`.
    ///
    /// # Errors
    ///
    /// Fails with [`SciError::SegmentNotFound`], [`SciError::OutOfBounds`],
    /// or [`SciError::NodeCrashed`].
    pub fn read(&self, id: SegmentId, offset: usize, buf: &mut [u8]) -> Result<(), SciError> {
        let g = self.inner.lock();
        if g.crashed {
            return Err(SciError::NodeCrashed);
        }
        let seg = g.segments.get(&id).ok_or(SciError::SegmentNotFound(id))?;
        let end = offset
            .checked_add(buf.len())
            .filter(|&e| e <= seg.data.len())
            .ok_or(SciError::OutOfBounds {
                segment: id,
                offset,
                len: buf.len(),
                segment_len: seg.data.len(),
            })?;
        buf.copy_from_slice(&seg.data[offset..end]);
        Ok(())
    }

    /// Metadata for segment `id`.
    ///
    /// # Errors
    ///
    /// Fails with [`SciError::SegmentNotFound`] or [`SciError::NodeCrashed`].
    pub fn segment_info(&self, id: SegmentId) -> Result<SegmentInfo, SciError> {
        let g = self.inner.lock();
        if g.crashed {
            return Err(SciError::NodeCrashed);
        }
        g.segments
            .get(&id)
            .map(|s| SegmentInfo {
                id,
                len: s.data.len(),
                tag: s.tag,
                base_addr: s.base_addr,
            })
            .ok_or(SciError::SegmentNotFound(id))
    }

    /// Lists all exported segments in id order.
    ///
    /// # Errors
    ///
    /// Fails with [`SciError::NodeCrashed`] if the node is down.
    pub fn list_segments(&self) -> Result<Vec<SegmentInfo>, SciError> {
        let g = self.inner.lock();
        if g.crashed {
            return Err(SciError::NodeCrashed);
        }
        Ok(g.segments
            .iter()
            .map(|(&id, s)| SegmentInfo {
                id,
                len: s.data.len(),
                tag: s.tag,
                base_addr: s.base_addr,
            })
            .collect())
    }

    /// Finds the first segment carrying client tag `tag` (the lookup behind
    /// the paper's `sci_connect_segment` recovery path).
    pub fn find_by_tag(&self, tag: u64) -> Option<SegmentInfo> {
        let g = self.inner.lock();
        if g.crashed {
            return None;
        }
        g.segments
            .iter()
            .find(|(_, s)| s.tag == tag)
            .map(|(&id, s)| SegmentInfo {
                id,
                len: s.data.len(),
                tag: s.tag,
                base_addr: s.base_addr,
            })
    }

    /// Bytes currently exported.
    pub fn used_bytes(&self) -> usize {
        self.inner.lock().used
    }

    /// Total exportable capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    /// Simulates a crash of *this* node: all exported memory is lost.
    pub fn crash(&self) {
        let mut g = self.inner.lock();
        g.crashed = true;
        g.segments.clear();
        g.used = 0;
    }

    /// Reboots a crashed node with empty memory.
    pub fn restart(&self) {
        self.inner.lock().crashed = false;
    }

    /// `true` if the node is currently down.
    pub fn is_crashed(&self) -> bool {
        self.inner.lock().crashed
    }

    /// `true` if `other` is a handle to the same node.
    pub fn same_node(&self, other: &NodeMemory) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_write_read_roundtrip() {
        let n = NodeMemory::new("n");
        let s = n.export_segment(16, 0).unwrap();
        n.write(s, 4, &[9, 8, 7]).unwrap();
        let mut buf = [0u8; 3];
        n.read(s, 4, &mut buf).unwrap();
        assert_eq!(buf, [9, 8, 7]);
    }

    #[test]
    fn segments_start_zeroed() {
        let n = NodeMemory::new("n");
        let s = n.export_segment(8, 0).unwrap();
        let mut buf = [1u8; 8];
        n.read(s, 0, &mut buf).unwrap();
        assert_eq!(buf, [0; 8]);
    }

    #[test]
    fn out_of_bounds_reports_details() {
        let n = NodeMemory::new("n");
        let s = n.export_segment(8, 0).unwrap();
        let err = n.write(s, 6, &[0; 4]).unwrap_err();
        assert_eq!(
            err,
            SciError::OutOfBounds {
                segment: s,
                offset: 6,
                len: 4,
                segment_len: 8
            }
        );
    }

    #[test]
    fn offset_overflow_is_out_of_bounds() {
        let n = NodeMemory::new("n");
        let s = n.export_segment(8, 0).unwrap();
        assert!(matches!(
            n.write(s, usize::MAX, &[1]),
            Err(SciError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn freed_segments_are_gone_and_ids_not_reused() {
        let n = NodeMemory::new("n");
        let a = n.export_segment(8, 0).unwrap();
        n.free_segment(a).unwrap();
        assert_eq!(n.free_segment(a), Err(SciError::SegmentNotFound(a)));
        let b = n.export_segment(8, 0).unwrap();
        assert_ne!(a, b);
        assert_eq!(n.used_bytes(), 8);
    }

    #[test]
    fn capacity_is_enforced() {
        let n = NodeMemory::with_capacity("n", 100);
        let _ = n.export_segment(80, 0).unwrap();
        let err = n.export_segment(30, 0).unwrap_err();
        assert_eq!(
            err,
            SciError::OutOfMemory {
                requested: 30,
                available: 20
            }
        );
    }

    #[test]
    fn tags_find_segments_after_reconnect() {
        let n = NodeMemory::new("n");
        let _ = n.export_segment(8, 1).unwrap();
        let b = n.export_segment(8, 42).unwrap();
        assert_eq!(n.find_by_tag(42).unwrap().id, b);
        assert!(n.find_by_tag(99).is_none());
    }

    #[test]
    fn base_addresses_are_64_byte_aligned_and_disjoint() {
        let n = NodeMemory::new("n");
        let a = n.export_segment(100, 0).unwrap();
        let b = n.export_segment(100, 0).unwrap();
        let ia = n.segment_info(a).unwrap();
        let ib = n.segment_info(b).unwrap();
        assert_eq!(ia.base_addr % 64, 0);
        assert_eq!(ib.base_addr % 64, 0);
        assert!(ib.base_addr >= ia.base_addr + 100);
    }

    #[test]
    fn crash_loses_memory_restart_starts_empty() {
        let n = NodeMemory::new("n");
        let s = n.export_segment(8, 5).unwrap();
        n.crash();
        assert!(n.is_crashed());
        assert_eq!(n.write(s, 0, &[1]), Err(SciError::NodeCrashed));
        assert!(n.find_by_tag(5).is_none());
        n.restart();
        assert!(!n.is_crashed());
        assert!(n.list_segments().unwrap().is_empty());
    }

    #[test]
    fn clones_share_state() {
        let n = NodeMemory::new("n");
        let m = n.clone();
        let s = n.export_segment(4, 0).unwrap();
        m.write(s, 0, &[5]).unwrap();
        let mut b = [0u8; 1];
        n.read(s, 0, &mut b).unwrap();
        assert_eq!(b, [5]);
        assert!(n.same_node(&m));
        assert!(!n.same_node(&NodeMemory::new("x")));
    }

    #[test]
    fn list_segments_in_id_order() {
        let n = NodeMemory::new("n");
        let ids: Vec<_> = (0..5).map(|i| n.export_segment(4, i).unwrap()).collect();
        let listed: Vec<_> = n.list_segments().unwrap().iter().map(|s| s.id).collect();
        assert_eq!(ids, listed);
    }
}
