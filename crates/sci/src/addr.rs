//! The physical-address → SCI-buffer mapping of the paper's Figure 4.

/// Size in bytes of one SCI internal buffer (and of one full SCI packet).
pub const BUFFER_SIZE: usize = 64;

/// Number of internal write buffers on the PCI-SCI card (eight are used for
/// writes; another eight serve reads).
pub const BUFFER_COUNT: usize = 8;

/// Size of the 16-byte lines in which partially filled buffers are flushed.
pub const LINE_SIZE: usize = 16;

/// Word size of the 32-bit PCI bus.
pub const WORD_SIZE: usize = 4;

/// Decomposition of a physical address according to the PCI-SCI card:
/// bits 0–5 give the offset within a 64-byte buffer, bits 6–8 select which
/// of the eight buffers the address belongs to.
///
/// # Examples
///
/// ```
/// use perseas_sci::BufferAddr;
///
/// let a = BufferAddr::from_phys(0x1C7);
/// assert_eq!(a.offset(), 0x07);
/// assert_eq!(a.buffer(), 0x7);
/// assert_eq!(a.chunk(), 0x1C0 / 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferAddr {
    phys: u64,
}

impl BufferAddr {
    /// Interprets `phys` as a physical byte address.
    pub const fn from_phys(phys: u64) -> Self {
        BufferAddr { phys }
    }

    /// The raw physical address.
    pub const fn phys(self) -> u64 {
        self.phys
    }

    /// Offset of the address within its 64-byte buffer (bits 0–5).
    pub const fn offset(self) -> usize {
        (self.phys & 0x3F) as usize
    }

    /// Which of the eight internal buffers this address maps to (bits 6–8).
    pub const fn buffer(self) -> usize {
        ((self.phys >> 6) & 0x7) as usize
    }

    /// Index of the 64-byte memory chunk containing the address.
    pub const fn chunk(self) -> u64 {
        self.phys / BUFFER_SIZE as u64
    }

    /// Index of the 16-byte line within the buffer (0–3).
    pub const fn line(self) -> usize {
        self.offset() / LINE_SIZE
    }

    /// Word index within the buffer (0–15).
    pub const fn word(self) -> usize {
        self.offset() / WORD_SIZE
    }

    /// `true` if this address lies in the last (sixteenth) word of its
    /// buffer — stores touching it are flushed eagerly by the card.
    pub const fn is_last_word(self) -> bool {
        self.word() == 15
    }

    /// The address rounded down to its 64-byte chunk boundary.
    pub const fn chunk_start(self) -> BufferAddr {
        BufferAddr {
            phys: self.phys & !0x3F,
        }
    }
}

/// Rounds `addr` down to a 64-byte boundary.
pub(crate) const fn align_down(addr: u64) -> u64 {
    addr & !(BUFFER_SIZE as u64 - 1)
}

/// Rounds `addr` up to a 64-byte boundary.
pub(crate) const fn align_up(addr: u64) -> u64 {
    (addr + BUFFER_SIZE as u64 - 1) & !(BUFFER_SIZE as u64 - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extraction_matches_figure_4() {
        // Figure 4: bits 0-5 = offset, bits 6-8 = buffer id.
        let a = BufferAddr::from_phys(0b1_1010_1011);
        assert_eq!(a.offset(), 0b10_1011);
        assert_eq!(a.buffer(), 0b110);
    }

    #[test]
    fn buffers_wrap_every_512_bytes() {
        assert_eq!(BufferAddr::from_phys(0).buffer(), 0);
        assert_eq!(BufferAddr::from_phys(64).buffer(), 1);
        assert_eq!(BufferAddr::from_phys(64 * 7).buffer(), 7);
        assert_eq!(BufferAddr::from_phys(64 * 8).buffer(), 0);
    }

    #[test]
    fn last_word_detection() {
        assert!(BufferAddr::from_phys(60).is_last_word());
        assert!(BufferAddr::from_phys(63).is_last_word());
        assert!(!BufferAddr::from_phys(59).is_last_word());
        assert!(BufferAddr::from_phys(64 + 60).is_last_word());
    }

    #[test]
    fn lines_and_words() {
        let a = BufferAddr::from_phys(0x2C); // offset 44
        assert_eq!(a.line(), 2);
        assert_eq!(a.word(), 11);
    }

    #[test]
    fn alignment_helpers() {
        assert_eq!(align_down(0), 0);
        assert_eq!(align_down(63), 0);
        assert_eq!(align_down(64), 64);
        assert_eq!(align_up(0), 0);
        assert_eq!(align_up(1), 64);
        assert_eq!(align_up(64), 64);
        assert_eq!(align_up(65), 128);
    }

    #[test]
    fn chunk_start_is_aligned() {
        let a = BufferAddr::from_phys(130);
        assert_eq!(a.chunk_start().phys(), 128);
        assert_eq!(a.chunk(), 2);
    }
}
