//! A mapped SCI link from the local process onto a remote node's memory.

use std::sync::Arc;

use parking_lot::Mutex;

use perseas_simtime::{SimClock, SimDuration};

use crate::latency::{remote_read_latency, remote_write_latency, SciParams};
use crate::node::{NodeMemory, SegmentId};
use crate::packet::{packetize, PacketKind};
use crate::SciError;

/// Counters describing traffic on one link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Remote write bursts issued.
    pub writes: u64,
    /// Remote read operations issued.
    pub reads: u64,
    /// Full 64-byte packets transmitted.
    pub packets64: u64,
    /// Partial 16-byte packets transmitted.
    pub packets16: u64,
    /// Payload bytes of the application actually delivered remotely.
    pub bytes_written: u64,
    /// Bytes fetched by remote reads.
    pub bytes_read: u64,
}

#[derive(Debug)]
struct Fault {
    /// Packets that may still be transmitted before the link is cut;
    /// `None` means the link is healthy.
    packets_left: Option<u64>,
}

/// The local side of a PCI-SCI mapping onto one remote node.
///
/// Every remote operation moves real bytes into the [`NodeMemory`] *and*
/// charges the modelled latency to the shared [`SimClock`]. Fault injection
/// cuts the link with packet granularity, so a write interrupted by a crash
/// leaves a realistic torn prefix on the remote node.
///
/// # Examples
///
/// ```
/// use perseas_simtime::SimClock;
/// use perseas_sci::{NodeMemory, SciLink, SciParams};
///
/// # fn main() -> Result<(), perseas_sci::SciError> {
/// let clock = SimClock::new();
/// let node = NodeMemory::new("mirror");
/// let link = SciLink::new(clock.clone(), node.clone(), SciParams::dolphin_1998());
/// let seg = node.export_segment(64, 0)?;
/// link.remote_write(seg, 0, &[7; 64])?;
/// assert_eq!(link.stats().packets64, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SciLink {
    clock: SimClock,
    node: NodeMemory,
    params: SciParams,
    stats: Arc<Mutex<LinkStats>>,
    fault: Arc<Mutex<Fault>>,
}

impl SciLink {
    /// Creates a link from the local process onto `node`, charging latency
    /// to `clock` with the timing model `params`.
    pub fn new(clock: SimClock, node: NodeMemory, params: SciParams) -> Self {
        SciLink {
            clock,
            node,
            params,
            stats: Arc::new(Mutex::new(LinkStats::default())),
            fault: Arc::new(Mutex::new(Fault { packets_left: None })),
        }
    }

    /// The remote node this link maps.
    pub fn node(&self) -> &NodeMemory {
        &self.node
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The timing parameters in use.
    pub fn params(&self) -> &SciParams {
        &self.params
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> LinkStats {
        *self.stats.lock()
    }

    /// Resets the traffic counters.
    pub fn reset_stats(&self) {
        *self.stats.lock() = LinkStats::default();
    }

    /// Arms fault injection: after `n` more packets the link goes down and
    /// every subsequent operation fails with [`SciError::LinkDown`].
    pub fn cut_after_packets(&self, n: u64) {
        self.fault.lock().packets_left = Some(n);
    }

    /// Heals the link after a fault.
    pub fn heal(&self) {
        self.fault.lock().packets_left = None;
    }

    /// `true` if the link has been cut.
    pub fn is_down(&self) -> bool {
        matches!(self.fault.lock().packets_left, Some(0))
    }

    /// Writes `data` to `offset` within remote segment `seg`.
    ///
    /// Advances the virtual clock by the modelled one-way latency of the
    /// store burst. On an injected fault only the prefix of the burst
    /// covered by whole transmitted packets is delivered.
    ///
    /// # Errors
    ///
    /// Propagates segment errors from the node; returns
    /// [`SciError::LinkDown`] (with the delivered byte count) if fault
    /// injection cut the burst.
    pub fn remote_write(&self, seg: SegmentId, offset: usize, data: &[u8]) -> Result<(), SciError> {
        let info = self.node.segment_info(seg)?;
        let start = info.base_addr + offset as u64;
        let packets = packetize(start, data.len());

        // Decide how many packets make it through under fault injection.
        let allowed = {
            let mut f = self.fault.lock();
            match f.packets_left {
                None => packets.len(),
                Some(left) => {
                    let allowed = (left as usize).min(packets.len());
                    f.packets_left = Some(left - allowed as u64);
                    allowed
                }
            }
        };

        let delivered_bytes: usize = packets[..allowed].iter().map(|p| p.store_bytes).sum();
        // Bytes that reach the wire still pay their latency.
        if delivered_bytes > 0 {
            let lat = remote_write_latency(&self.params, start, delivered_bytes);
            self.clock.advance(lat);
            self.node.write(seg, offset, &data[..delivered_bytes])?;
        }

        let mut st = self.stats.lock();
        st.writes += 1;
        st.bytes_written += delivered_bytes as u64;
        for p in &packets[..allowed] {
            match p.kind {
                PacketKind::Full64 => st.packets64 += 1,
                PacketKind::Line16 => st.packets16 += 1,
            }
        }
        drop(st);

        if allowed < packets.len() {
            Err(SciError::LinkDown {
                delivered: delivered_bytes,
            })
        } else {
            Ok(())
        }
    }

    /// Reads `buf.len()` bytes from `offset` within remote segment `seg`.
    ///
    /// Remote reads are synchronous round-trips; the clock advances by the
    /// read latency model. Reads are all-or-nothing: a cut link fails the
    /// whole read.
    ///
    /// # Errors
    ///
    /// Propagates segment errors; returns [`SciError::LinkDown`] if the
    /// link is cut.
    pub fn remote_read(
        &self,
        seg: SegmentId,
        offset: usize,
        buf: &mut [u8],
    ) -> Result<(), SciError> {
        if self.is_down() {
            return Err(SciError::LinkDown { delivered: 0 });
        }
        let info = self.node.segment_info(seg)?;
        let start = info.base_addr + offset as u64;
        self.node.read(seg, offset, buf)?;
        self.clock
            .advance(remote_read_latency(&self.params, start, buf.len()));
        let mut st = self.stats.lock();
        st.reads += 1;
        st.bytes_read += buf.len() as u64;
        Ok(())
    }

    /// The modelled latency a write of `len` bytes at `offset` in `seg`
    /// would incur, without performing it.
    ///
    /// # Errors
    ///
    /// Fails if the segment does not exist.
    pub fn write_latency(&self, seg: SegmentId, offset: usize, len: usize) -> Result<SimDuration, SciError> {
        let info = self.node.segment_info(seg)?;
        Ok(remote_write_latency(
            &self.params,
            info.base_addr + offset as u64,
            len,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SimClock, NodeMemory, SciLink) {
        let clock = SimClock::new();
        let node = NodeMemory::new("mirror");
        let link = SciLink::new(clock.clone(), node.clone(), SciParams::dolphin_1998());
        (clock, node, link)
    }

    #[test]
    fn write_moves_bytes_and_time() {
        let (clock, node, link) = setup();
        let seg = node.export_segment(64, 0).unwrap();
        link.remote_write(seg, 0, &[1, 2, 3, 4]).unwrap();
        let mut b = [0u8; 4];
        node.read(seg, 0, &mut b).unwrap();
        assert_eq!(b, [1, 2, 3, 4]);
        assert_eq!(clock.now().as_nanos(), 2_500);
    }

    #[test]
    fn stats_count_packets_by_kind() {
        let (_, node, link) = setup();
        let seg = node.export_segment(256, 0).unwrap();
        link.remote_write(seg, 0, &[0; 200]).unwrap();
        let st = link.stats();
        assert_eq!(st.packets64, 3);
        assert_eq!(st.packets16, 1);
        assert_eq!(st.bytes_written, 200);
        link.reset_stats();
        assert_eq!(link.stats(), LinkStats::default());
    }

    #[test]
    fn cut_link_delivers_packet_prefix() {
        let (_, node, link) = setup();
        let seg = node.export_segment(256, 0).unwrap();
        // 200-byte burst = 3 full packets + 1 line packet. Allow 2 packets:
        // exactly 128 bytes arrive.
        link.cut_after_packets(2);
        let err = link.remote_write(seg, 0, &[9; 200]).unwrap_err();
        assert_eq!(err, SciError::LinkDown { delivered: 128 });
        let mut buf = [0u8; 200];
        node.read(seg, 0, &mut buf).unwrap();
        assert!(buf[..128].iter().all(|&b| b == 9));
        assert!(buf[128..].iter().all(|&b| b == 0));
        assert!(link.is_down());
    }

    #[test]
    fn healed_link_works_again() {
        let (_, node, link) = setup();
        let seg = node.export_segment(64, 0).unwrap();
        link.cut_after_packets(0);
        assert!(link.remote_write(seg, 0, &[1]).is_err());
        link.heal();
        link.remote_write(seg, 0, &[1]).unwrap();
    }

    #[test]
    fn cut_with_zero_budget_delivers_nothing() {
        let (clock, node, link) = setup();
        let seg = node.export_segment(64, 0).unwrap();
        let t0 = clock.now();
        let err = link.remote_write(seg, 0, &[1; 64]).map(|_| ());
        assert!(err.is_ok());
        link.cut_after_packets(0);
        let err = link.remote_write(seg, 0, &[2; 64]).unwrap_err();
        assert_eq!(err, SciError::LinkDown { delivered: 0 });
        // No bytes delivered => no additional latency beyond the first write.
        let after_first = remote_write_latency(link.params(), 0, 64);
        assert_eq!(clock.now().duration_since(t0), after_first);
    }

    #[test]
    fn remote_read_roundtrip_costs_more_than_write() {
        let (clock, node, link) = setup();
        let seg = node.export_segment(64, 0).unwrap();
        link.remote_write(seg, 0, &[5; 64]).unwrap();
        let t_after_write = clock.now();
        let mut buf = [0u8; 64];
        link.remote_read(seg, 0, &mut buf).unwrap();
        assert_eq!(buf, [5; 64]);
        let read_cost = clock.now().duration_since(t_after_write);
        let write_cost = t_after_write.duration_since(perseas_simtime::SimInstant::ORIGIN);
        assert!(read_cost > write_cost);
    }

    #[test]
    fn write_latency_predicts_actual_charge() {
        let (clock, node, link) = setup();
        let seg = node.export_segment(128, 0).unwrap();
        let predicted = link.write_latency(seg, 8, 100).unwrap();
        let t0 = clock.now();
        link.remote_write(seg, 8, &[0; 100]).unwrap();
        assert_eq!(clock.now().duration_since(t0), predicted);
    }

    #[test]
    fn segment_base_alignment_gives_same_latency_for_same_offsets() {
        // Two segments both start 64-byte aligned, so identical
        // offset/length pairs cost the same.
        let (_, node, link) = setup();
        let a = node.export_segment(128, 0).unwrap();
        let b = node.export_segment(128, 0).unwrap();
        assert_eq!(
            link.write_latency(a, 4, 32).unwrap(),
            link.write_latency(b, 4, 32).unwrap()
        );
    }

    #[test]
    fn errors_propagate_from_node() {
        let (_, node, link) = setup();
        let seg = node.export_segment(8, 0).unwrap();
        assert!(matches!(
            link.remote_write(seg, 6, &[0; 8]),
            Err(SciError::OutOfBounds { .. })
        ));
        node.crash();
        assert_eq!(link.remote_write(seg, 0, &[0]), Err(SciError::NodeCrashed));
    }
}
