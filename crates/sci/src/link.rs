//! A mapped SCI link from the local process onto a remote node's memory.

use std::sync::Arc;

use parking_lot::Mutex;

use perseas_simtime::{SimClock, SimDuration};

use crate::addr::BufferAddr;
use crate::latency::{
    remote_read_latency, remote_write_latency, remote_write_v_latency, SciParams,
};
use crate::node::{NodeMemory, SegmentId};
use crate::packet::{packetize, PacketKind};
use crate::SciError;

/// Counters describing traffic on one link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Remote write bursts issued.
    pub writes: u64,
    /// Remote read operations issued.
    pub reads: u64,
    /// Full 64-byte packets transmitted.
    pub packets64: u64,
    /// Partial 16-byte packets transmitted.
    pub packets16: u64,
    /// Payload bytes of the application actually delivered remotely.
    pub bytes_written: u64,
    /// Bytes fetched by remote reads.
    pub bytes_read: u64,
}

#[derive(Debug)]
struct Fault {
    /// Packets that may still be transmitted before the link is cut;
    /// `None` means the link is healthy.
    packets_left: Option<u64>,
}

/// The local side of a PCI-SCI mapping onto one remote node.
///
/// Every remote operation moves real bytes into the [`NodeMemory`] *and*
/// charges the modelled latency to the shared [`SimClock`]. Fault injection
/// cuts the link with packet granularity, so a write interrupted by a crash
/// leaves a realistic torn prefix on the remote node.
///
/// # Examples
///
/// ```
/// use perseas_simtime::SimClock;
/// use perseas_sci::{NodeMemory, SciLink, SciParams};
///
/// # fn main() -> Result<(), perseas_sci::SciError> {
/// let clock = SimClock::new();
/// let node = NodeMemory::new("mirror");
/// let link = SciLink::new(clock.clone(), node.clone(), SciParams::dolphin_1998());
/// let seg = node.export_segment(64, 0)?;
/// link.remote_write(seg, 0, &[7; 64])?;
/// assert_eq!(link.stats().packets64, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SciLink {
    clock: SimClock,
    node: NodeMemory,
    params: SciParams,
    stats: Arc<Mutex<LinkStats>>,
    fault: Arc<Mutex<Fault>>,
}

impl SciLink {
    /// Creates a link from the local process onto `node`, charging latency
    /// to `clock` with the timing model `params`.
    pub fn new(clock: SimClock, node: NodeMemory, params: SciParams) -> Self {
        SciLink {
            clock,
            node,
            params,
            stats: Arc::new(Mutex::new(LinkStats::default())),
            fault: Arc::new(Mutex::new(Fault { packets_left: None })),
        }
    }

    /// The remote node this link maps.
    pub fn node(&self) -> &NodeMemory {
        &self.node
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The timing parameters in use.
    pub fn params(&self) -> &SciParams {
        &self.params
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> LinkStats {
        *self.stats.lock()
    }

    /// Resets the traffic counters.
    pub fn reset_stats(&self) {
        *self.stats.lock() = LinkStats::default();
    }

    /// Arms fault injection: after `n` more packets the link goes down and
    /// every subsequent operation fails with [`SciError::LinkDown`].
    pub fn cut_after_packets(&self, n: u64) {
        self.fault.lock().packets_left = Some(n);
    }

    /// Heals the link after a fault.
    pub fn heal(&self) {
        self.fault.lock().packets_left = None;
    }

    /// `true` if the link has been cut.
    pub fn is_down(&self) -> bool {
        matches!(self.fault.lock().packets_left, Some(0))
    }

    /// Writes `data` to `offset` within remote segment `seg`.
    ///
    /// Advances the virtual clock by the modelled one-way latency of the
    /// store burst. On an injected fault only the prefix of the burst
    /// covered by whole transmitted packets is delivered.
    ///
    /// # Errors
    ///
    /// Propagates segment errors from the node; returns
    /// [`SciError::LinkDown`] (with the delivered byte count) if fault
    /// injection cut the burst.
    pub fn remote_write(&self, seg: SegmentId, offset: usize, data: &[u8]) -> Result<(), SciError> {
        let info = self.node.segment_info(seg)?;
        let start = info.base_addr + offset as u64;
        let packets = packetize(start, data.len());

        // Decide how many packets make it through under fault injection.
        let allowed = {
            let mut f = self.fault.lock();
            match f.packets_left {
                None => packets.len(),
                Some(left) => {
                    let allowed = (left as usize).min(packets.len());
                    f.packets_left = Some(left - allowed as u64);
                    allowed
                }
            }
        };

        let delivered_bytes: usize = packets[..allowed].iter().map(|p| p.store_bytes).sum();
        // Bytes that reach the wire still pay their latency.
        if delivered_bytes > 0 {
            let lat = remote_write_latency(&self.params, start, delivered_bytes);
            self.clock.advance(lat);
            self.node.write(seg, offset, &data[..delivered_bytes])?;
        }

        let mut st = self.stats.lock();
        st.writes += 1;
        st.bytes_written += delivered_bytes as u64;
        for p in &packets[..allowed] {
            match p.kind {
                PacketKind::Full64 => st.packets64 += 1,
                PacketKind::Line16 => st.packets16 += 1,
            }
        }
        drop(st);

        if allowed < packets.len() {
            Err(SciError::LinkDown {
                delivered: delivered_bytes,
            })
        } else {
            Ok(())
        }
    }

    /// Reads `buf.len()` bytes from `offset` within remote segment `seg`.
    ///
    /// Remote reads are synchronous round-trips; the clock advances by the
    /// read latency model. Reads are all-or-nothing: a cut link fails the
    /// whole read.
    ///
    /// # Errors
    ///
    /// Propagates segment errors; returns [`SciError::LinkDown`] if the
    /// link is cut.
    pub fn remote_read(
        &self,
        seg: SegmentId,
        offset: usize,
        buf: &mut [u8],
    ) -> Result<(), SciError> {
        if self.is_down() {
            return Err(SciError::LinkDown { delivered: 0 });
        }
        let info = self.node.segment_info(seg)?;
        let start = info.base_addr + offset as u64;
        self.node.read(seg, offset, buf)?;
        self.clock
            .advance(remote_read_latency(&self.params, start, buf.len()));
        let mut st = self.stats.lock();
        st.reads += 1;
        st.bytes_read += buf.len() as u64;
        Ok(())
    }

    /// Writes several `(segment, offset, data)` ranges as one gathered
    /// message (the vectored form of [`SciLink::remote_write`]).
    ///
    /// The whole batch is charged as a single SCI message: one
    /// [`SciParams::base_ns`] setup, streamed per-packet costs across all
    /// ranges, and at most one partial-flush penalty (see
    /// [`crate::remote_write_v_latency`]). It counts as *one* write in
    /// [`LinkStats`]. Ranges are applied in order; under fault injection
    /// the packet budget spans the concatenated packet sequence, so a cut
    /// delivers every earlier range in full and a packet-aligned prefix of
    /// the range it lands in — later ranges are lost entirely.
    ///
    /// # Errors
    ///
    /// Fails up-front (before any byte moves) if any referenced segment is
    /// unknown or any range is out of bounds; returns
    /// [`SciError::LinkDown`] with the total delivered byte count if fault
    /// injection cut the message.
    pub fn remote_write_v(&self, writes: &[(SegmentId, usize, &[u8])]) -> Result<(), SciError> {
        // Resolve geometry and validate every range before transmitting, so
        // a malformed batch does not leave a half-applied message.
        let mut plans = Vec::with_capacity(writes.len());
        for &(seg, offset, data) in writes {
            let info = self.node.segment_info(seg)?;
            if offset.checked_add(data.len()).is_none_or(|e| e > info.len) {
                return Err(SciError::OutOfBounds {
                    segment: seg,
                    offset,
                    len: data.len(),
                    segment_len: info.len,
                });
            }
            if data.is_empty() {
                continue;
            }
            let start = info.base_addr + offset as u64;
            plans.push((seg, offset, data, packetize(start, data.len())));
        }
        let total_packets: usize = plans.iter().map(|p| p.3.len()).sum();

        let allowed = {
            let mut f = self.fault.lock();
            match f.packets_left {
                None => total_packets,
                Some(left) => {
                    let allowed = (left as usize).min(total_packets);
                    f.packets_left = Some(left - allowed as u64);
                    allowed
                }
            }
        };

        // Deliver packet-aligned prefixes range by range and accumulate the
        // single-message latency as we go.
        let mut ns = 0u64;
        let mut sent_any = false;
        let mut last_byte = None;
        let mut delivered_total = 0usize;
        let mut budget = allowed;
        let mut st_packets = (0u64, 0u64); // (full64, line16)
        for (seg, offset, data, packets) in &plans {
            if budget == 0 {
                break;
            }
            let take = budget.min(packets.len());
            budget -= take;
            for (i, p) in packets[..take].iter().enumerate() {
                ns += match (p.kind, !sent_any && i == 0) {
                    (PacketKind::Full64, true) => self.params.pkt64_first_ns,
                    (PacketKind::Full64, false) => self.params.pkt64_stream_ns,
                    (PacketKind::Line16, true) => self.params.pkt16_first_ns,
                    (PacketKind::Line16, false) => self.params.pkt16_stream_ns,
                };
                match p.kind {
                    PacketKind::Full64 => st_packets.0 += 1,
                    PacketKind::Line16 => st_packets.1 += 1,
                }
            }
            sent_any |= take > 0;
            let bytes: usize = packets[..take].iter().map(|p| p.store_bytes).sum();
            if bytes > 0 {
                let info = self.node.segment_info(*seg)?;
                last_byte = Some(BufferAddr::from_phys(
                    info.base_addr + *offset as u64 + bytes as u64 - 1,
                ));
                self.node.write(*seg, *offset, &data[..bytes])?;
                delivered_total += bytes;
            }
        }
        if sent_any {
            ns += self.params.base_ns;
            if let Some(b) = last_byte {
                if !b.is_last_word() {
                    ns += self.params.partial_flush_ns;
                }
            }
            self.clock.advance(SimDuration::from_nanos(ns));
        }

        let mut st = self.stats.lock();
        st.writes += 1;
        st.bytes_written += delivered_total as u64;
        st.packets64 += st_packets.0;
        st.packets16 += st_packets.1;
        drop(st);

        if allowed < total_packets {
            Err(SciError::LinkDown {
                delivered: delivered_total,
            })
        } else {
            Ok(())
        }
    }

    /// The modelled latency a write of `len` bytes at `offset` in `seg`
    /// would incur, without performing it.
    ///
    /// # Errors
    ///
    /// Fails if the segment does not exist.
    pub fn write_latency(
        &self,
        seg: SegmentId,
        offset: usize,
        len: usize,
    ) -> Result<SimDuration, SciError> {
        let info = self.node.segment_info(seg)?;
        Ok(remote_write_latency(
            &self.params,
            info.base_addr + offset as u64,
            len,
        ))
    }

    /// The modelled latency a vectored write of the given
    /// `(segment, offset, len)` ranges would incur, without performing it.
    ///
    /// # Errors
    ///
    /// Fails if any referenced segment does not exist.
    pub fn write_latency_v(
        &self,
        ranges: &[(SegmentId, usize, usize)],
    ) -> Result<SimDuration, SciError> {
        let mut phys = Vec::with_capacity(ranges.len());
        for &(seg, offset, len) in ranges {
            let info = self.node.segment_info(seg)?;
            phys.push((info.base_addr + offset as u64, len));
        }
        Ok(remote_write_v_latency(&self.params, &phys))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SimClock, NodeMemory, SciLink) {
        let clock = SimClock::new();
        let node = NodeMemory::new("mirror");
        let link = SciLink::new(clock.clone(), node.clone(), SciParams::dolphin_1998());
        (clock, node, link)
    }

    #[test]
    fn write_moves_bytes_and_time() {
        let (clock, node, link) = setup();
        let seg = node.export_segment(64, 0).unwrap();
        link.remote_write(seg, 0, &[1, 2, 3, 4]).unwrap();
        let mut b = [0u8; 4];
        node.read(seg, 0, &mut b).unwrap();
        assert_eq!(b, [1, 2, 3, 4]);
        assert_eq!(clock.now().as_nanos(), 2_500);
    }

    #[test]
    fn stats_count_packets_by_kind() {
        let (_, node, link) = setup();
        let seg = node.export_segment(256, 0).unwrap();
        link.remote_write(seg, 0, &[0; 200]).unwrap();
        let st = link.stats();
        assert_eq!(st.packets64, 3);
        assert_eq!(st.packets16, 1);
        assert_eq!(st.bytes_written, 200);
        link.reset_stats();
        assert_eq!(link.stats(), LinkStats::default());
    }

    #[test]
    fn cut_link_delivers_packet_prefix() {
        let (_, node, link) = setup();
        let seg = node.export_segment(256, 0).unwrap();
        // 200-byte burst = 3 full packets + 1 line packet. Allow 2 packets:
        // exactly 128 bytes arrive.
        link.cut_after_packets(2);
        let err = link.remote_write(seg, 0, &[9; 200]).unwrap_err();
        assert_eq!(err, SciError::LinkDown { delivered: 128 });
        let mut buf = [0u8; 200];
        node.read(seg, 0, &mut buf).unwrap();
        assert!(buf[..128].iter().all(|&b| b == 9));
        assert!(buf[128..].iter().all(|&b| b == 0));
        assert!(link.is_down());
    }

    #[test]
    fn healed_link_works_again() {
        let (_, node, link) = setup();
        let seg = node.export_segment(64, 0).unwrap();
        link.cut_after_packets(0);
        assert!(link.remote_write(seg, 0, &[1]).is_err());
        link.heal();
        link.remote_write(seg, 0, &[1]).unwrap();
    }

    #[test]
    fn cut_with_zero_budget_delivers_nothing() {
        let (clock, node, link) = setup();
        let seg = node.export_segment(64, 0).unwrap();
        let t0 = clock.now();
        let err = link.remote_write(seg, 0, &[1; 64]).map(|_| ());
        assert!(err.is_ok());
        link.cut_after_packets(0);
        let err = link.remote_write(seg, 0, &[2; 64]).unwrap_err();
        assert_eq!(err, SciError::LinkDown { delivered: 0 });
        // No bytes delivered => no additional latency beyond the first write.
        let after_first = remote_write_latency(link.params(), 0, 64);
        assert_eq!(clock.now().duration_since(t0), after_first);
    }

    #[test]
    fn remote_read_roundtrip_costs_more_than_write() {
        let (clock, node, link) = setup();
        let seg = node.export_segment(64, 0).unwrap();
        link.remote_write(seg, 0, &[5; 64]).unwrap();
        let t_after_write = clock.now();
        let mut buf = [0u8; 64];
        link.remote_read(seg, 0, &mut buf).unwrap();
        assert_eq!(buf, [5; 64]);
        let read_cost = clock.now().duration_since(t_after_write);
        let write_cost = t_after_write.duration_since(perseas_simtime::SimInstant::ORIGIN);
        assert!(read_cost > write_cost);
    }

    #[test]
    fn write_latency_predicts_actual_charge() {
        let (clock, node, link) = setup();
        let seg = node.export_segment(128, 0).unwrap();
        let predicted = link.write_latency(seg, 8, 100).unwrap();
        let t0 = clock.now();
        link.remote_write(seg, 8, &[0; 100]).unwrap();
        assert_eq!(clock.now().duration_since(t0), predicted);
    }

    #[test]
    fn segment_base_alignment_gives_same_latency_for_same_offsets() {
        // Two segments both start 64-byte aligned, so identical
        // offset/length pairs cost the same.
        let (_, node, link) = setup();
        let a = node.export_segment(128, 0).unwrap();
        let b = node.export_segment(128, 0).unwrap();
        assert_eq!(
            link.write_latency(a, 4, 32).unwrap(),
            link.write_latency(b, 4, 32).unwrap()
        );
    }

    #[test]
    fn vectored_write_delivers_all_ranges_as_one_message() {
        let (clock, node, link) = setup();
        let a = node.export_segment(128, 0).unwrap();
        let b = node.export_segment(128, 0).unwrap();
        let t0 = clock.now();
        link.remote_write_v(&[(a, 0, &[1; 64]), (b, 32, &[2; 16]), (a, 100, &[3; 8])])
            .unwrap();
        let mut buf = [0u8; 64];
        node.read(a, 0, &mut buf).unwrap();
        assert_eq!(buf, [1; 64]);
        let mut buf = [0u8; 16];
        node.read(b, 32, &mut buf).unwrap();
        assert_eq!(buf, [2; 16]);
        let st = link.stats();
        assert_eq!(st.writes, 1, "one message, not three");
        assert_eq!(st.bytes_written, 64 + 16 + 8);
        let predicted = link
            .write_latency_v(&[(a, 0, 64), (b, 32, 16), (a, 100, 8)])
            .unwrap();
        assert_eq!(clock.now().duration_since(t0), predicted);
    }

    #[test]
    fn vectored_write_cheaper_than_separate_writes() {
        let (clock, node, link) = setup();
        let seg = node.export_segment(1024, 0).unwrap();
        let ranges: Vec<(SegmentId, usize, &[u8])> =
            (0..8).map(|i| (seg, i * 128, &[7u8; 64][..])).collect();
        let t0 = clock.now();
        link.remote_write_v(&ranges).unwrap();
        let batched = clock.now().duration_since(t0);
        let t1 = clock.now();
        for &(s, o, d) in &ranges {
            link.remote_write(s, o, d).unwrap();
        }
        let separate = clock.now().duration_since(t1);
        assert!(batched < separate);
        // Eight ranges amortise seven base setups.
        assert_eq!(
            separate.as_nanos() - batched.as_nanos(),
            7 * link.params().base_ns
        );
    }

    #[test]
    fn vectored_write_cut_delivers_cross_range_packet_prefix() {
        let (_, node, link) = setup();
        let seg = node.export_segment(512, 0).unwrap();
        // Range 1 = 1 full packet, range 2 = 3 full packets + 1 line.
        // Allow 3 packets: range 1 fully, 128 bytes of range 2.
        link.cut_after_packets(3);
        let err = link
            .remote_write_v(&[(seg, 0, &[1; 64]), (seg, 128, &[2; 200])])
            .unwrap_err();
        assert_eq!(
            err,
            SciError::LinkDown {
                delivered: 64 + 128
            }
        );
        let mut buf = [0u8; 512];
        node.read(seg, 0, &mut buf).unwrap();
        assert!(buf[..64].iter().all(|&b| b == 1));
        assert!(buf[128..256].iter().all(|&b| b == 2));
        assert!(buf[256..].iter().all(|&b| b == 0), "tail never arrived");
        assert!(link.is_down());
    }

    #[test]
    fn vectored_write_validates_before_transmitting() {
        let (clock, node, link) = setup();
        let seg = node.export_segment(64, 0).unwrap();
        let t0 = clock.now();
        // Second range is out of bounds: nothing at all must be delivered.
        let err = link
            .remote_write_v(&[(seg, 0, &[1; 32]), (seg, 60, &[2; 8])])
            .unwrap_err();
        assert!(matches!(err, SciError::OutOfBounds { .. }));
        let mut buf = [0u8; 32];
        node.read(seg, 0, &mut buf).unwrap();
        assert_eq!(buf, [0; 32], "batch failed validation, no bytes moved");
        assert_eq!(clock.now(), t0, "no latency charged");
    }

    #[test]
    fn vectored_write_empty_batch_is_free() {
        let (clock, node, link) = setup();
        let seg = node.export_segment(64, 0).unwrap();
        let t0 = clock.now();
        link.remote_write_v(&[]).unwrap();
        link.remote_write_v(&[(seg, 0, &[])]).unwrap();
        assert_eq!(clock.now(), t0);
        assert_eq!(link.stats().bytes_written, 0);
    }

    #[test]
    fn errors_propagate_from_node() {
        let (_, node, link) = setup();
        let seg = node.export_segment(8, 0).unwrap();
        assert!(matches!(
            link.remote_write(seg, 6, &[0; 8]),
            Err(SciError::OutOfBounds { .. })
        ));
        node.crash();
        assert_eq!(link.remote_write(seg, 0, &[0]), Err(SciError::NodeCrashed));
    }
}
