//! Error type for the SCI layer.

use std::error::Error;
use std::fmt;

use crate::node::SegmentId;

/// Errors reported by the SCI model.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SciError {
    /// The referenced segment does not exist (never exported, or freed).
    SegmentNotFound(SegmentId),
    /// An access fell outside the bounds of a segment.
    OutOfBounds {
        /// Segment being accessed.
        segment: SegmentId,
        /// Starting offset of the access.
        offset: usize,
        /// Length of the access.
        len: usize,
        /// Length of the segment.
        segment_len: usize,
    },
    /// The remote node has no memory left to export.
    OutOfMemory {
        /// Bytes requested.
        requested: usize,
        /// Bytes still available on the node.
        available: usize,
    },
    /// The link was cut (fault injection) before the operation completed;
    /// carries the number of bytes that did reach the remote node.
    LinkDown {
        /// Bytes delivered before the cut.
        delivered: usize,
    },
    /// The remote node itself has crashed and lost its memory.
    NodeCrashed,
}

impl fmt::Display for SciError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SciError::SegmentNotFound(id) => write!(f, "remote segment {id} not found"),
            SciError::OutOfBounds {
                segment,
                offset,
                len,
                segment_len,
            } => write!(
                f,
                "access [{offset}, {}) out of bounds for segment {segment} of length {segment_len}",
                offset + len
            ),
            SciError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "remote node out of memory: requested {requested} bytes, {available} available"
            ),
            SciError::LinkDown { delivered } => {
                write!(f, "SCI link down after delivering {delivered} bytes")
            }
            SciError::NodeCrashed => write!(f, "remote node crashed"),
        }
    }
}

impl Error for SciError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SciError::OutOfBounds {
            segment: SegmentId::from_raw(3),
            offset: 10,
            len: 20,
            segment_len: 16,
        };
        let s = e.to_string();
        assert!(s.contains("[10, 30)"));
        assert!(s.contains("16"));
        assert!(!SciError::NodeCrashed.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SciError>();
    }
}
