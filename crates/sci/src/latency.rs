//! The calibrated latency model reproducing Figure 5 of the paper.

use serde::{Deserialize, Serialize};

use perseas_simtime::SimDuration;

use crate::addr::BufferAddr;
use crate::packet::{packetize, PacketKind};

/// Timing parameters of the PCI-SCI adapter.
///
/// The model charges a fixed setup cost per store burst, a full cost for the
/// first packet, a smaller *streamed* cost for each subsequent packet
/// (buffer streaming overlaps packet creation with transmission of the
/// previous packet), and a flush penalty when the burst does not end on the
/// last word of a buffer (the card then has to time out before flushing the
/// partial buffer; the paper notes that stores involving the last word of a
/// buffer have better latency).
///
/// [`SciParams::dolphin_1998`] is calibrated against the paper's numbers:
/// a 4-byte remote store costs 2.5 µs end-to-end one-way, a 16-byte store
/// crossing a line boundary ~3.1 µs, and whole 64-byte aligned stores are
/// the cheapest way to move ≥32 bytes (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SciParams {
    /// Per-burst setup: PIO store issue + fabric traversal (ns).
    pub base_ns: u64,
    /// Cost of the first 64-byte packet of a burst (ns).
    pub pkt64_first_ns: u64,
    /// Cost of each subsequent (streamed) 64-byte packet (ns).
    pub pkt64_stream_ns: u64,
    /// Cost of the first 16-byte packet of a burst (ns).
    pub pkt16_first_ns: u64,
    /// Cost of each subsequent (streamed) 16-byte packet (ns).
    pub pkt16_stream_ns: u64,
    /// Extra latency when the burst does not end on the last word of an SCI
    /// buffer, so the card flushes on timeout rather than eagerly (ns).
    pub partial_flush_ns: u64,
    /// Remote reads are synchronous round-trips through the read buffers;
    /// they cost this multiple of the equivalent write (fixed-point, in
    /// percent: 200 = 2×).
    pub read_multiplier_pct: u64,
}

impl SciParams {
    /// Parameters calibrated to the Dolphin PCI-SCI rev. B card measured in
    /// the paper (ring topology, 133 MHz Pentium hosts).
    pub fn dolphin_1998() -> Self {
        SciParams {
            base_ns: 1_650,
            pkt64_first_ns: 550,
            pkt64_stream_ns: 550,
            pkt16_first_ns: 550,
            pkt16_stream_ns: 550,
            partial_flush_ns: 300,
            read_multiplier_pct: 220,
        }
    }

    /// A hypothetical interconnect `speedup`× faster than the 1998 card.
    /// Used by the technology-trend ablation (the paper argues network
    /// speed improves 20–45 %/year while disks improve 10–20 %/year).
    ///
    /// # Panics
    ///
    /// Panics if `speedup` is not positive.
    pub fn scaled(speedup: f64) -> Self {
        assert!(speedup > 0.0, "speedup must be positive");
        let s = |ns: u64| ((ns as f64 / speedup).round() as u64).max(1);
        let d = SciParams::dolphin_1998();
        SciParams {
            base_ns: s(d.base_ns),
            pkt64_first_ns: s(d.pkt64_first_ns),
            pkt64_stream_ns: s(d.pkt64_stream_ns),
            pkt16_first_ns: s(d.pkt16_first_ns),
            pkt16_stream_ns: s(d.pkt16_stream_ns),
            partial_flush_ns: s(d.partial_flush_ns),
            read_multiplier_pct: d.read_multiplier_pct,
        }
    }
}

impl Default for SciParams {
    fn default() -> Self {
        SciParams::dolphin_1998()
    }
}

/// End-to-end one-way latency of a remote store of `len` bytes whose first
/// byte maps to physical address `start` on the remote node.
///
/// # Examples
///
/// ```
/// use perseas_sci::{remote_write_latency, SciParams};
///
/// let p = SciParams::dolphin_1998();
/// // The paper's headline number: a 4-byte remote store takes 2.5 us.
/// assert_eq!(remote_write_latency(&p, 0, 4).as_nanos(), 2_500);
/// ```
pub fn remote_write_latency(params: &SciParams, start: u64, len: usize) -> SimDuration {
    if len == 0 {
        return SimDuration::ZERO;
    }
    let packets = packetize(start, len);
    let mut ns = params.base_ns;
    for (i, p) in packets.iter().enumerate() {
        let first = i == 0;
        ns += match (p.kind, first) {
            (PacketKind::Full64, true) => params.pkt64_first_ns,
            (PacketKind::Full64, false) => params.pkt64_stream_ns,
            (PacketKind::Line16, true) => params.pkt16_first_ns,
            (PacketKind::Line16, false) => params.pkt16_stream_ns,
        };
    }
    let last_byte = BufferAddr::from_phys(start + len as u64 - 1);
    if !last_byte.is_last_word() {
        ns += params.partial_flush_ns;
    }
    SimDuration::from_nanos(ns)
}

/// End-to-end one-way latency of a *vectored* remote store: several
/// `(start, len)` ranges gathered into one message.
///
/// The whole batch pays [`SciParams::base_ns`] once — the card keeps
/// streaming packets after the initial PIO issue and fabric traversal, so
/// per-range setup is amortised away. Every packet after the first is
/// charged at the streamed rate regardless of which range it carries.
/// Switching ranges flushes the current buffer eagerly (the next range's
/// stores displace it), so only the final range can leave a partially
/// filled buffer to the timeout flush; the partial-flush penalty is
/// therefore charged at most once, for the last non-empty range.
///
/// # Examples
///
/// ```
/// use perseas_sci::{remote_write_latency, remote_write_v_latency, SciParams};
///
/// let p = SciParams::dolphin_1998();
/// let batched = remote_write_v_latency(&p, &[(0, 64), (256, 64)]);
/// let separate = remote_write_latency(&p, 0, 64) + remote_write_latency(&p, 256, 64);
/// assert!(batched < separate); // base_ns is paid once, not twice
/// ```
pub fn remote_write_v_latency(params: &SciParams, ranges: &[(u64, usize)]) -> SimDuration {
    let mut ns = 0u64;
    let mut sent_any = false;
    let mut last_byte = None;
    for &(start, len) in ranges {
        if len == 0 {
            continue;
        }
        for p in packetize(start, len) {
            ns += match (p.kind, !sent_any) {
                (PacketKind::Full64, true) => params.pkt64_first_ns,
                (PacketKind::Full64, false) => params.pkt64_stream_ns,
                (PacketKind::Line16, true) => params.pkt16_first_ns,
                (PacketKind::Line16, false) => params.pkt16_stream_ns,
            };
            sent_any = true;
        }
        last_byte = Some(BufferAddr::from_phys(start + len as u64 - 1));
    }
    if !sent_any {
        return SimDuration::ZERO;
    }
    ns += params.base_ns;
    if let Some(b) = last_byte {
        if !b.is_last_word() {
            ns += params.partial_flush_ns;
        }
    }
    SimDuration::from_nanos(ns)
}

/// Latency of a remote read of `len` bytes at `start`: a synchronous
/// round-trip through the card's read buffers.
pub fn remote_read_latency(params: &SciParams, start: u64, len: usize) -> SimDuration {
    let w = remote_write_latency(params, start, len);
    SimDuration::from_nanos(w.as_nanos() * params.read_multiplier_pct / 100)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat(start: u64, len: usize) -> u64 {
        remote_write_latency(&SciParams::dolphin_1998(), start, len).as_nanos()
    }

    #[test]
    fn four_byte_store_is_2_5_us() {
        assert_eq!(lat(0, 4), 2_500);
    }

    #[test]
    fn crossing_a_line_boundary_costs_one_more_streamed_packet() {
        // Paper: <=16-byte stores produce one or two 16-byte packets with
        // latencies around 2.5 and 3.05 us.
        assert_eq!(lat(12, 8), lat(0, 8) + 550);
    }

    #[test]
    fn aligned_64_byte_store_beats_nearby_sizes() {
        // Figure 5: whole 64-byte aligned stores have the lowest latency of
        // all sizes >= 32 bytes.
        let full = lat(0, 64);
        assert!(full < lat(0, 60), "64B should beat 60B");
        assert!(full < lat(0, 68), "64B should beat 68B");
        assert!(full <= lat(0, 48));
    }

    #[test]
    fn ending_on_last_word_is_faster() {
        // 60 bytes ending at byte 63 ends on the last word -> eager flush.
        assert!(lat(4, 60) < lat(0, 60));
    }

    #[test]
    fn latency_grows_roughly_linearly_in_full_chunks() {
        let p = SciParams::dolphin_1998();
        let one = lat(0, 64);
        let two = lat(0, 128);
        let three = lat(0, 192);
        assert_eq!(two - one, p.pkt64_stream_ns);
        assert_eq!(three - two, p.pkt64_stream_ns);
    }

    #[test]
    fn zero_length_is_free() {
        assert_eq!(lat(0, 0), 0);
    }

    #[test]
    fn reads_cost_more_than_writes() {
        let p = SciParams::dolphin_1998();
        for &len in &[4usize, 64, 200] {
            assert!(
                remote_read_latency(&p, 0, len) > remote_write_latency(&p, 0, len),
                "len={len}"
            );
        }
    }

    #[test]
    fn scaled_params_are_faster() {
        let fast = SciParams::scaled(10.0);
        assert!(
            remote_write_latency(&fast, 0, 64) < remote_write_latency(&SciParams::default(), 0, 64)
        );
    }

    #[test]
    #[should_panic(expected = "speedup")]
    fn zero_speedup_rejected() {
        let _ = SciParams::scaled(0.0);
    }

    #[test]
    fn vectored_latency_charges_base_once() {
        let p = SciParams::dolphin_1998();
        let ranges = [(0u64, 64usize), (256, 64), (1024, 64)];
        let batched = remote_write_v_latency(&p, &ranges).as_nanos();
        let separate: u64 = ranges
            .iter()
            .map(|&(s, l)| remote_write_latency(&p, s, l).as_nanos())
            .sum();
        // Three aligned chunks: batched saves exactly two base setups.
        assert_eq!(separate - batched, 2 * p.base_ns);
    }

    #[test]
    fn vectored_latency_single_range_matches_plain_write() {
        let p = SciParams::dolphin_1998();
        for &(s, l) in &[(0u64, 4usize), (12, 8), (0, 64), (32, 128), (7, 200)] {
            assert_eq!(
                remote_write_v_latency(&p, &[(s, l)]),
                remote_write_latency(&p, s, l),
                "start={s} len={l}"
            );
        }
    }

    #[test]
    fn vectored_latency_flush_penalty_follows_last_range() {
        let p = SciParams::dolphin_1998();
        // Last range ends on the final word of a buffer: no flush penalty.
        let eager = remote_write_v_latency(&p, &[(0, 4), (64, 64)]);
        // Same packet mix, but the last range ends mid-buffer.
        let timeout = remote_write_v_latency(&p, &[(0, 64), (64, 4)]);
        assert_eq!(timeout.as_nanos() - eager.as_nanos(), p.partial_flush_ns);
    }

    #[test]
    fn vectored_latency_skips_empty_ranges() {
        let p = SciParams::dolphin_1998();
        assert_eq!(remote_write_v_latency(&p, &[]), SimDuration::ZERO);
        assert_eq!(
            remote_write_v_latency(&p, &[(0, 0), (64, 0)]),
            SimDuration::ZERO
        );
        assert_eq!(
            remote_write_v_latency(&p, &[(0, 0), (0, 4), (64, 0)]),
            remote_write_latency(&p, 0, 4)
        );
    }

    #[test]
    fn figure_5_shape_staircase_with_notches() {
        // Latency is non-decreasing across packet-count boundaries and has
        // local minima exactly at multiples of 64 bytes.
        let l64 = lat(0, 64);
        let l128 = lat(0, 128);
        for sz in (4..=60).step_by(4) {
            assert!(lat(0, sz) >= 2_500);
        }
        for sz in (68..=124).step_by(4) {
            assert!(lat(0, sz) > l64, "size {sz} should cost more than 64B");
        }
        assert!(l128 > l64);
    }
}
