//! Property tests for the SCI model: packetisation, latency, and node
//! memory against reference models.

use std::collections::HashMap;

use proptest::prelude::*;

use perseas_sci::{
    packetize, remote_write_latency, NodeMemory, PacketKind, SciError, SciParams, BUFFER_SIZE,
};

proptest! {
    /// Packetisation conserves bytes, orders packets by address, and
    /// never emits an empty packet.
    #[test]
    fn packetize_conserves_and_orders(start in 0u64..10_000, len in 0usize..5_000) {
        let packets = packetize(start, len);
        let total: usize = packets.iter().map(|p| p.store_bytes).sum();
        prop_assert_eq!(total, len);
        for p in &packets {
            prop_assert!(p.store_bytes > 0 || len == 0);
            prop_assert!(p.store_bytes <= p.kind.payload_len());
        }
        for w in packets.windows(2) {
            prop_assert!(
                (w[0].chunk, w[0].line) < (w[1].chunk, w[1].line)
                    || (w[0].kind == PacketKind::Full64 && w[0].chunk < w[1].chunk)
            );
        }
    }

    /// A fully covered chunk is always one 64-byte packet; partially
    /// covered chunks are always 16-byte packets.
    #[test]
    fn full_chunks_full_packets(start in 0u64..1_000, len in 1usize..2_000) {
        for p in packetize(start, len) {
            let chunk_start = p.chunk * BUFFER_SIZE as u64;
            let chunk_end = chunk_start + BUFFER_SIZE as u64;
            let covered = (start.max(chunk_start)..(start + len as u64).min(chunk_end)).count();
            match p.kind {
                PacketKind::Full64 => prop_assert_eq!(covered, BUFFER_SIZE),
                PacketKind::Line16 => prop_assert!(covered < BUFFER_SIZE),
            }
        }
    }

    /// Latency is positive for non-empty stores and non-decreasing in the
    /// packet count for a fixed start.
    #[test]
    fn latency_positive_and_packet_monotone(start in 0u64..512, len in 1usize..2_000) {
        let p = SciParams::dolphin_1998();
        let lat = remote_write_latency(&p, start, len);
        prop_assert!(lat.as_nanos() >= p.base_ns);
        // Adding 64 bytes can never reduce the packet count, and latency
        // differences are bounded by one packet + the flush penalty.
        let bigger = remote_write_latency(&p, start, len + BUFFER_SIZE);
        prop_assert!(
            bigger.as_nanos() + p.partial_flush_ns >= lat.as_nanos(),
            "adding a chunk reduced latency too much"
        );
    }

    /// The node memory behaves like a flat map of segments.
    #[test]
    fn node_memory_matches_model(ops in prop::collection::vec(
        (0usize..4, 0usize..64, 0usize..64, any::<u8>()), 1..60))
    {
        let node = NodeMemory::with_capacity("prop", 1 << 16);
        let mut segs = Vec::new();
        let mut model: HashMap<usize, Vec<u8>> = HashMap::new();
        for (i, (op, off, len, b)) in ops.into_iter().enumerate() {
            match op {
                0 => {
                    let id = node.export_segment(64, i as u64).unwrap();
                    segs.push(id);
                    model.insert(segs.len() - 1, vec![0; 64]);
                }
                1 if !segs.is_empty() => {
                    let idx = i % segs.len();
                    let end = (off + len.max(1)).min(64);
                    let off = off.min(end - 1);
                    let data = vec![b; end - off];
                    let r = node.write(segs[idx], off, &data);
                    if let Some(m) = model.get_mut(&idx) {
                        prop_assert!(r.is_ok());
                        m[off..end].copy_from_slice(&data);
                    } else {
                        prop_assert!(matches!(r, Err(SciError::SegmentNotFound(_))));
                    }
                }
                2 if !segs.is_empty() => {
                    let idx = i % segs.len();
                    if model.contains_key(&idx) {
                        let mut buf = vec![0u8; 64];
                        node.read(segs[idx], 0, &mut buf).unwrap();
                        prop_assert_eq!(&buf, model.get(&idx).unwrap());
                    }
                }
                3 if !segs.is_empty() => {
                    let idx = i % segs.len();
                    if model.remove(&idx).is_some() {
                        node.free_segment(segs[idx]).unwrap();
                    } else {
                        prop_assert!(node.free_segment(segs[idx]).is_err());
                    }
                }
                _ => {}
            }
        }
    }
}
