//! Property tests for the network-RAM layer: wire-format robustness and
//! the `sci_memcpy` transfer planner.

use proptest::prelude::*;

use perseas_rnram::{plan_transfer, RemoteMemory, SimRemote, TransferStrategy};

mod wire {
    use super::*;
    use perseas_rnram::SegmentId;

    proptest! {
        /// Decoding arbitrary bytes never panics, whatever it returns.
        #[test]
        fn decoders_are_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
            use perseas_rnram::{RnError};
            // The protocol module is internal; exercise it through the
            // public TCP server by feeding a raw frame.
            // (Request/Response decode totality is covered indirectly:
            // a malformed frame must yield an error response or a clean
            // protocol error, never a panic.)
            let server = perseas_rnram::server::Server::bind("fuzz", "127.0.0.1:0")
                .unwrap()
                .start();
            let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
            use std::io::Write;
            // Frame: length prefix + body + crc over body.
            let len = (bytes.len() as u32).to_le_bytes();
            let crc = crc32(&bytes).to_le_bytes();
            stream.write_all(&len).unwrap();
            stream.write_all(&bytes).unwrap();
            stream.write_all(&crc).unwrap();
            // Whatever happens, the server must stay alive for a valid
            // client afterwards.
            drop(stream);
            let mut c = perseas_rnram::TcpRemote::connect(server.addr()).unwrap();
            let seg = c.remote_malloc(8, 0).unwrap();
            prop_assert_eq!(seg.id, seg.id);
            server.shutdown();
            let _ = RnError::TagNotFound(0); // keep the import used
            let _ = SegmentId::from_raw(0);
        }
    }

    fn crc32(data: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in data {
            crc ^= b as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
        !crc
    }
}

proptest! {
    /// The transfer plan always covers the requested range, stays inside
    /// the segment, and aligned plans sit on 64-byte boundaries except
    /// where clamped by the segment end.
    #[test]
    fn plans_cover_and_align(
        base in (0u64..1_000).prop_map(|b| b * 64),
        seg_len in 64usize..10_000,
        offset in 0usize..9_000,
        len in 1usize..4_096,
    ) {
        prop_assume!(offset + len <= seg_len);
        let plan = plan_transfer(base, offset, len, seg_len);
        prop_assert!(plan.offset <= offset);
        prop_assert!(plan.offset + plan.len >= offset + len);
        prop_assert!(plan.offset + plan.len <= seg_len);
        if plan.strategy == TransferStrategy::Aligned {
            prop_assert_eq!((base as usize + plan.offset) % 64, 0);
            let end = base as usize + plan.offset + plan.len;
            prop_assert!(end.is_multiple_of(64) || plan.offset + plan.len == seg_len);
        } else {
            prop_assert_eq!((plan.offset, plan.len), (offset, len));
        }
    }

    /// Issuing the plan against a mirror that already matches the local
    /// image leaves the mirror byte-identical to the updated local image.
    #[test]
    fn mirror_copy_is_exact(
        seg_len in 64usize..1_024,
        offset in 0usize..1_000,
        len in 1usize..256,
        fill in any::<u8>(),
    ) {
        prop_assume!(offset + len <= seg_len);
        let mut remote = SimRemote::new("prop");
        let seg = remote.remote_malloc(seg_len, 0).unwrap();
        let mut local = vec![0xAB; seg_len];
        remote.remote_write(seg.id, 0, &local).unwrap();

        local[offset..offset + len].fill(fill);
        perseas_rnram::mirror_copy(&mut remote, seg.id, seg.base_addr, &local, offset, len)
            .unwrap();

        let mut got = vec![0u8; seg_len];
        remote.remote_read(seg.id, 0, &mut got).unwrap();
        prop_assert_eq!(got, local);
    }

    /// The aligned plan never issues more SCI packets than the naive
    /// store (the whole point of the Section 4 optimisation).
    #[test]
    fn aligned_never_costs_more(
        offset in 0usize..2_000,
        len in 1usize..1_024,
    ) {
        use perseas_sci::{remote_write_latency, SciParams};
        let seg_len = 4_096;
        prop_assume!(offset + len <= seg_len);
        let p = SciParams::dolphin_1998();
        let plan = plan_transfer(0, offset, len, seg_len);
        let naive = remote_write_latency(&p, offset as u64, len);
        let planned = remote_write_latency(&p, plan.offset as u64, plan.len);
        prop_assert!(
            planned <= naive,
            "plan {plan:?} slower: {planned} > {naive}"
        );
    }
}

#[test]
fn hostile_lengths_do_not_kill_the_server() {
    use perseas_rnram::{server::Server, RnError, TcpRemote};
    let server = Server::bind("hostile", "127.0.0.1:0").unwrap().start();
    let mut c = TcpRemote::connect(server.addr()).unwrap();
    let seg = c.remote_malloc(16, 0).unwrap();

    // A read far beyond any segment (and beyond addressable memory).
    let mut tiny = [0u8; 4];
    let err = c
        .remote_read(seg.id, usize::MAX - 8, &mut tiny)
        .unwrap_err();
    assert!(matches!(err, RnError::Remote(_)));

    // An absurd malloc must be refused, not attempted.
    let err = c.remote_malloc(usize::MAX, 0).unwrap_err();
    assert!(matches!(err, RnError::Remote(_)));

    // The server is still healthy.
    c.remote_write(seg.id, 0, &[1; 16]).unwrap();
    server.shutdown();
}
