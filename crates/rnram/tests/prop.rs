//! Property tests for the network-RAM layer: wire-format robustness and
//! the `sci_memcpy` transfer planner.

use proptest::prelude::*;

use perseas_rnram::{plan_transfer, RemoteMemory, SimRemote, TransferStrategy};

mod wire {
    use super::*;
    use perseas_rnram::SegmentId;

    proptest! {
        /// Decoding arbitrary bytes never panics, whatever it returns.
        #[test]
        fn decoders_are_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
            use perseas_rnram::{RnError};
            // The protocol module is internal; exercise it through the
            // public TCP server by feeding a raw frame.
            // (Request/Response decode totality is covered indirectly:
            // a malformed frame must yield an error response or a clean
            // protocol error, never a panic.)
            let server = perseas_rnram::server::Server::bind("fuzz", "127.0.0.1:0")
                .unwrap()
                .start();
            let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
            use std::io::Write;
            // Frame: length prefix + body + crc over body.
            let len = (bytes.len() as u32).to_le_bytes();
            let crc = crc32(&bytes).to_le_bytes();
            stream.write_all(&len).unwrap();
            stream.write_all(&bytes).unwrap();
            stream.write_all(&crc).unwrap();
            // Whatever happens, the server must stay alive for a valid
            // client afterwards.
            drop(stream);
            let mut c = perseas_rnram::TcpRemote::connect(server.addr()).unwrap();
            let seg = c.remote_malloc(8, 0).unwrap();
            prop_assert_eq!(seg.id, seg.id);
            server.shutdown();
            let _ = RnError::TagNotFound(0); // keep the import used
            let _ = SegmentId::from_raw(0);
        }
    }

    fn crc32(data: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in data {
            crc ^= b as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
        !crc
    }
}

proptest! {
    /// The transfer plan always covers the requested range, stays inside
    /// the segment, and aligned plans sit on 64-byte boundaries except
    /// where clamped by the segment end.
    #[test]
    fn plans_cover_and_align(
        base in (0u64..1_000).prop_map(|b| b * 64),
        seg_len in 64usize..10_000,
        offset in 0usize..9_000,
        len in 1usize..4_096,
    ) {
        prop_assume!(offset + len <= seg_len);
        let plan = plan_transfer(base, offset, len, seg_len);
        prop_assert!(plan.offset <= offset);
        prop_assert!(plan.offset + plan.len >= offset + len);
        prop_assert!(plan.offset + plan.len <= seg_len);
        if plan.strategy == TransferStrategy::Aligned {
            prop_assert_eq!((base as usize + plan.offset) % 64, 0);
            let end = base as usize + plan.offset + plan.len;
            prop_assert!(end.is_multiple_of(64) || plan.offset + plan.len == seg_len);
        } else {
            prop_assert_eq!((plan.offset, plan.len), (offset, len));
        }
    }

    /// Issuing the plan against a mirror that already matches the local
    /// image leaves the mirror byte-identical to the updated local image.
    #[test]
    fn mirror_copy_is_exact(
        seg_len in 64usize..1_024,
        offset in 0usize..1_000,
        len in 1usize..256,
        fill in any::<u8>(),
    ) {
        prop_assume!(offset + len <= seg_len);
        let mut remote = SimRemote::new("prop");
        let seg = remote.remote_malloc(seg_len, 0).unwrap();
        let mut local = vec![0xAB; seg_len];
        remote.remote_write(seg.id, 0, &local).unwrap();

        local[offset..offset + len].fill(fill);
        perseas_rnram::mirror_copy(&mut remote, seg.id, seg.base_addr, &local, offset, len)
            .unwrap();

        let mut got = vec![0u8; seg_len];
        remote.remote_read(seg.id, 0, &mut got).unwrap();
        prop_assert_eq!(got, local);
    }

    /// The aligned plan never issues more SCI packets than the naive
    /// store (the whole point of the Section 4 optimisation).
    #[test]
    fn aligned_never_costs_more(
        offset in 0usize..2_000,
        len in 1usize..1_024,
    ) {
        use perseas_sci::{remote_write_latency, SciParams};
        let seg_len = 4_096;
        prop_assume!(offset + len <= seg_len);
        let p = SciParams::dolphin_1998();
        let plan = plan_transfer(0, offset, len, seg_len);
        let naive = remote_write_latency(&p, offset as u64, len);
        let planned = remote_write_latency(&p, plan.offset as u64, plan.len);
        prop_assert!(
            planned <= naive,
            "plan {plan:?} slower: {planned} > {naive}"
        );
    }
}

/// Transport fuzz battery (ISSUE 4): random, truncated, and bit-flipped
/// frames against the decoder and the live server. The decoder must be
/// total (typed `Err`, never a panic), length fields may never reach past
/// the frame, and the server must survive every hostile frame — answering
/// a typed error or dropping the connection, but staying up for the next
/// well-behaved client.
mod frame_fuzz {
    use super::*;
    use perseas_rnram::protocol::{crc32, Request, Response};
    use std::io::Write as _;

    /// Any request the client can legitimately encode, including the
    /// pipelined `Seq` wrapping and the multiplexed `Mux` wrapping.
    fn arb_request() -> impl Strategy<Value = Request> {
        let plain = prop_oneof![
            (any::<u64>(), any::<u64>()).prop_map(|(len, tag)| Request::Malloc { len, tag }),
            any::<u64>().prop_map(|seg| Request::Free { seg }),
            (
                any::<u64>(),
                any::<u64>(),
                prop::collection::vec(any::<u8>(), 0..64)
            )
                .prop_map(|(seg, offset, data)| Request::Write { seg, offset, data }),
            (any::<u64>(), any::<u64>(), any::<u64>())
                .prop_map(|(seg, offset, len)| Request::Read { seg, offset, len }),
            any::<u64>().prop_map(|tag| Request::Connect { tag }),
            any::<u64>().prop_map(|seg| Request::Info { seg }),
            prop::collection::vec(
                (
                    any::<u64>(),
                    any::<u64>(),
                    prop::collection::vec(any::<u8>(), 0..32)
                ),
                0..4
            )
            .prop_map(|ranges| Request::WriteV { ranges }),
            Just(Request::Name),
            Just(Request::Ping),
        ]
        .boxed();
        (0u8..3, any::<u64>(), any::<u64>(), plain).prop_map(|(wrap, seq, session, req)| match wrap
        {
            1 => Request::Seq {
                seq,
                inner: Box::new(req),
            },
            2 => Request::Mux {
                session,
                seq,
                inner: Box::new(req),
            },
            _ => req,
        })
    }

    /// Sends `body` as one correctly framed message and hangs up, then
    /// proves the server survived by running a real operation on a fresh
    /// connection.
    fn poke_server_with(addr: std::net::SocketAddr, body: &[u8]) {
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        stream
            .write_all(&(body.len() as u32).to_le_bytes())
            .unwrap();
        stream.write_all(body).unwrap();
        stream.write_all(&crc32(body).to_le_bytes()).unwrap();
        drop(stream);
    }

    fn server_is_alive(addr: std::net::SocketAddr) {
        let mut c = perseas_rnram::TcpRemote::connect_pipelined(addr).unwrap();
        let seg = c.remote_malloc(8, 0).unwrap();
        c.remote_write(seg.id, 0, &[7; 8]).unwrap();
        c.flush().unwrap();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Both decoders are total over arbitrary bytes: any outcome but
        /// a panic.
        #[test]
        fn decoders_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
            let _ = Request::decode(&bytes);
            let _ = Response::decode(&bytes);
        }

        /// Every strict truncation of a valid request either decodes to
        /// a plain `Write` prefix (the one variant whose payload is the
        /// frame remainder — the frame CRC guards it on the wire) or is
        /// rejected with a typed error.
        #[test]
        fn truncations_are_rejected_or_benign(req in arb_request(), cut in 0usize..512) {
            let full = req.encode();
            prop_assume!(!full.is_empty());
            let cut = cut % full.len();
            match Request::decode(&full[..cut]) {
                Err(_) => {}
                // A `Write`'s payload is the frame remainder, so cutting
                // its tail yields a shorter, still-valid write (the wire
                // CRC is what protects it in flight). Everything else has
                // explicit lengths and must refuse its truncations.
                Ok(Request::Write { .. }) => {}
                Ok(Request::Seq { inner, .. }) | Ok(Request::Mux { inner, .. }) => {
                    prop_assert!(
                        matches!(*inner, Request::Write { .. }),
                        "truncated frame decoded as a wrapper around {inner:?}"
                    );
                }
                Ok(other) => prop_assert!(false, "truncated frame decoded as {other:?}"),
            }
        }

        /// Single bit flips anywhere in the body never panic the decoder,
        /// and a live server fed the flipped frame keeps serving.
        #[test]
        fn bit_flips_never_panic(req in arb_request(), bit in any::<u64>()) {
            let mut body = req.encode();
            let bit = (bit as usize) % (body.len() * 8);
            body[bit / 8] ^= 1 << (bit % 8);
            let decoded = Request::decode(&body);

            // A flip can legitimately turn the opcode into `Shutdown`;
            // feeding that to the server would stop it by design, which
            // is not the robustness property under test.
            let is_shutdown = match &decoded {
                Ok(Request::Shutdown) => true,
                Ok(Request::Seq { inner, .. }) | Ok(Request::Mux { inner, .. }) => {
                    matches!(**inner, Request::Shutdown)
                }
                _ => false,
            };
            prop_assume!(!is_shutdown);

            let server = perseas_rnram::server::Server::bind("flip", "127.0.0.1:0")
                .unwrap()
                .start();
            poke_server_with(server.addr(), &body);
            server_is_alive(server.addr());
            server.shutdown();
        }

        /// A frame whose CRC does not match its (corrupted) body is
        /// refused at the framing layer without killing the server.
        #[test]
        fn stale_crc_frames_are_dropped(req in arb_request(), flip in any::<u64>()) {
            let body = req.encode();
            let server = perseas_rnram::server::Server::bind("crc", "127.0.0.1:0")
                .unwrap()
                .start();
            let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
            stream.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
            // Corrupt the body after computing the CRC of the original.
            let crc = crc32(&body).to_le_bytes();
            let mut sent = body.clone();
            if !sent.is_empty() {
                let bit = (flip as usize) % (sent.len() * 8);
                sent[bit / 8] ^= 1 << (bit % 8);
            }
            stream.write_all(&sent).unwrap();
            stream.write_all(&crc).unwrap();
            drop(stream);
            server_is_alive(server.addr());
            server.shutdown();
        }

        /// Length fields that reach past the frame are rejected: a
        /// vectored write claiming more ranges or payload than the frame
        /// holds must never decode.
        #[test]
        fn lying_length_fields_are_rejected(
            count_lie in 1u64..1_000_000,
            len_lie in 1u64..1_000_000,
            data in prop::collection::vec(any::<u8>(), 0..32),
        ) {
            // Range-count lie: claims `count_lie` extra ranges.
            let real = Request::WriteV {
                ranges: vec![(1, 0, data.clone())],
            };
            let mut body = real.encode();
            let claimed = 1u64 + count_lie;
            body[1..9].copy_from_slice(&claimed.to_le_bytes());
            prop_assert!(Request::decode(&body).is_err(), "count lie accepted");

            // Payload-length lie: the single range claims more bytes than
            // the frame carries.
            let mut body = real.encode();
            let len_off = 1 + 8 + 16; // op, count, (seg, offset)
            let claimed = data.len() as u64 + len_lie;
            body[len_off..len_off + 8].copy_from_slice(&claimed.to_le_bytes());
            prop_assert!(Request::decode(&body).is_err(), "length lie accepted");
        }

        /// A frame advertising more bytes than the peer ever sends must
        /// not wedge or kill the server: the connection dies, the server
        /// lives.
        #[test]
        fn truncated_wire_frames_do_not_wedge_the_server(
            claim in 1u32..4_096,
            sent in prop::collection::vec(any::<u8>(), 0..64),
        ) {
            prop_assume!((sent.len() as u32) < claim);
            let server = perseas_rnram::server::Server::bind("short", "127.0.0.1:0")
                .unwrap()
                .start();
            let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
            stream.write_all(&claim.to_le_bytes()).unwrap();
            stream.write_all(&sent).unwrap();
            drop(stream); // EOF mid-frame
            server_is_alive(server.addr());
            server.shutdown();
        }

        /// Session frames with arbitrary session ids, seqs, and inner
        /// requests — including hostile nested wrappings — are served or
        /// refused with a typed error, never fatally (ISSUE 8).
        #[test]
        fn random_session_frames_never_kill_the_server(
            session in any::<u64>(),
            seq in any::<u64>(),
            req in arb_request(),
        ) {
            let body = perseas_rnram::protocol::encode_mux(session, seq, &req);
            let server = perseas_rnram::server::Server::bind("sess", "127.0.0.1:0")
                .unwrap()
                .start();
            poke_server_with(server.addr(), &body);
            server_is_alive(server.addr());
            server.shutdown();
        }

        /// Truncating a mux frame never smears it into a *different*
        /// session: the fixed-width mux header either survives the cut
        /// intact or the frame is refused. (Past the header the usual
        /// `Write`-remainder exception applies — the wire CRC guards it.)
        #[test]
        fn truncated_session_frames_keep_their_identity(
            session in any::<u64>(),
            seq in any::<u64>(),
            req in arb_request(),
            cut in 0usize..512,
        ) {
            let full = perseas_rnram::protocol::encode_mux(session, seq, &req);
            let cut = cut % full.len();
            match Request::decode(&full[..cut]) {
                Err(_) => {}
                Ok(Request::Mux { session: s, seq: q, inner }) => {
                    prop_assert_eq!(s, session, "truncation moved the frame across sessions");
                    prop_assert_eq!(q, seq, "truncation renumbered the frame");
                    prop_assert!(
                        matches!(*inner, Request::Write { .. }),
                        "truncated mux frame decoded as {inner:?}"
                    );
                }
                Ok(other) => prop_assert!(false, "truncated mux frame decoded as {other:?}"),
            }
        }
    }

    /// Nested `Seq` frames and oversized frame claims are refused — the
    /// two fixed hostile shapes the sweep above cannot reliably hit.
    #[test]
    fn fixed_hostile_shapes_are_refused() {
        let inner = Request::Seq {
            seq: 2,
            inner: Box::new(Request::Ping),
        };
        let nested = perseas_rnram::protocol::encode_seq(1, &inner);
        assert!(Request::decode(&nested).is_err(), "nested seq accepted");

        let server = perseas_rnram::server::Server::bind("huge", "127.0.0.1:0")
            .unwrap()
            .start();
        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        // A length prefix beyond MAX_FRAME: the server must refuse to
        // allocate and drop the connection.
        let claim = (perseas_rnram::protocol::MAX_FRAME as u32).saturating_add(1);
        stream.write_all(&claim.to_le_bytes()).unwrap();
        drop(stream);
        server_is_alive(server.addr());
        server.shutdown();
    }
}

/// Session-multiplexing property battery (ISSUE 8), driven through the
/// public [`SessionMux`] API: sessions interleaved on one socket never
/// observe each other's lanes, and a session dying with its window in
/// flight takes down only itself.
mod session_mux_fuzz {
    use super::*;
    use perseas_rnram::SessionMux;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Three sessions interleave posted writes over one socket into
        /// their own segments; after per-session flush barriers every
        /// segment matches the per-session model exactly.
        #[test]
        fn interleaved_sessions_keep_their_lanes(
            script in prop::collection::vec((0usize..3, 0usize..16, any::<u8>()), 1..24),
        ) {
            let server = perseas_rnram::server::Server::bind("lanes", "127.0.0.1:0")
                .unwrap()
                .start();
            let mux = SessionMux::connect(server.addr()).unwrap();
            let mut sessions = Vec::new();
            let mut model = [[0u8; 16]; 3];
            for i in 0..3u64 {
                let mut s = mux.session();
                let seg = s.remote_malloc(16, i).unwrap();
                s.remote_write(seg.id, 0, &[0; 16]).unwrap();
                sessions.push((s, seg.id));
            }
            for &(who, offset, value) in &script {
                let (s, seg) = &mut sessions[who];
                s.remote_write(*seg, offset, &[value]).unwrap();
                model[who][offset] = value;
            }
            for (who, (s, seg)) in sessions.iter_mut().enumerate() {
                s.flush().unwrap();
                let mut got = [0u8; 16];
                s.remote_read(*seg, 0, &mut got).unwrap();
                prop_assert_eq!(got, model[who], "session {} lane corrupted", who);
            }
            server.shutdown();
        }

        /// A session dropped with posted-but-unflushed writes is the only
        /// casualty: the surviving session's window, segment, and RPCs
        /// are untouched, and the server keeps serving.
        #[test]
        fn a_session_dying_mid_window_strands_only_itself(
            doomed_posts in 1usize..12,
            survivor_value in any::<u8>(),
        ) {
            let server = perseas_rnram::server::Server::bind("doom", "127.0.0.1:0")
                .unwrap()
                .start();
            let mux = SessionMux::connect(server.addr()).unwrap();
            let mut doomed = mux.session();
            let mut survivor = mux.session();
            let dseg = doomed.remote_malloc(32, 0).unwrap();
            let sseg = survivor.remote_malloc(32, 1).unwrap();
            for i in 0..doomed_posts {
                doomed.remote_write(dseg.id, i % 32, &[0xDD]).unwrap();
            }
            prop_assert!(doomed.in_flight() > 0);
            drop(doomed); // dies mid-window
            survivor.remote_write(sseg.id, 0, &[survivor_value]).unwrap();
            survivor.flush().unwrap();
            let mut got = [0u8; 1];
            survivor.remote_read(sseg.id, 0, &mut got).unwrap();
            prop_assert_eq!(got[0], survivor_value);
            prop_assert_eq!(mux.open_sessions(), 1);
            server.shutdown();
        }
    }
}

#[test]
fn hostile_lengths_do_not_kill_the_server() {
    use perseas_rnram::{server::Server, RnError, TcpRemote};
    let server = Server::bind("hostile", "127.0.0.1:0").unwrap().start();
    let mut c = TcpRemote::connect(server.addr()).unwrap();
    let seg = c.remote_malloc(16, 0).unwrap();

    // A read far beyond any segment (and beyond addressable memory).
    let mut tiny = [0u8; 4];
    let err = c
        .remote_read(seg.id, usize::MAX - 8, &mut tiny)
        .unwrap_err();
    assert!(matches!(err, RnError::Remote(_)));

    // An absurd malloc must be refused, not attempted.
    let err = c.remote_malloc(usize::MAX, 0).unwrap_err();
    assert!(matches!(err, RnError::Remote(_)));

    // The server is still healthy.
    c.remote_write(seg.id, 0, &[1; 16]).unwrap();
    server.shutdown();
}
