//! TCP client backend: network RAM on a genuinely separate process.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

use perseas_sci::SegmentId;

use crate::protocol::{read_frame, write_frame, Request, Response};
use crate::{RemoteMemory, RemoteSegment, RnError};

/// A [`RemoteMemory`] that talks to a [`crate::server::Server`] over TCP.
///
/// Latency here is real wall-clock network latency; use this backend for
/// actual deployments and the two-process examples, and [`crate::SimRemote`]
/// for reproducing the paper's virtual-time figures.
#[derive(Debug)]
pub struct TcpRemote {
    stream: TcpStream,
    peer: SocketAddr,
    cached_name: Option<String>,
}

impl TcpRemote {
    /// Connects to a network-RAM server.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<TcpRemote, RnError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        Ok(TcpRemote {
            stream,
            peer,
            cached_name: None,
        })
    }

    /// The server address this client is connected to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Sends a liveness probe.
    ///
    /// # Errors
    ///
    /// Fails if the server is unreachable.
    pub fn ping(&mut self) -> Result<(), RnError> {
        match self.call(&Request::Ping)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the server to stop accepting new connections.
    ///
    /// # Errors
    ///
    /// Fails if the server is unreachable.
    pub fn shutdown_server(&mut self) -> Result<(), RnError> {
        match self.call(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    fn call(&mut self, req: &Request) -> Result<Response, RnError> {
        write_frame(&mut self.stream, &req.encode())?;
        let body = read_frame(&mut self.stream)?;
        Response::decode(&body)
    }

    fn expect_segment(&mut self, req: &Request) -> Result<RemoteSegment, RnError> {
        match self.call(req)? {
            Response::Segment {
                seg,
                len,
                tag,
                base_addr,
            } => Ok(RemoteSegment {
                id: SegmentId::from_raw(seg),
                len: len as usize,
                tag,
                base_addr,
            }),
            Response::Err(m) => Err(RnError::Remote(m)),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(resp: Response) -> RnError {
    RnError::Protocol(format!("unexpected response: {resp:?}"))
}

impl RemoteMemory for TcpRemote {
    fn remote_malloc(&mut self, len: usize, tag: u64) -> Result<RemoteSegment, RnError> {
        self.expect_segment(&Request::Malloc {
            len: len as u64,
            tag,
        })
    }

    fn remote_free(&mut self, seg: SegmentId) -> Result<(), RnError> {
        match self.call(&Request::Free { seg: seg.as_raw() })? {
            Response::Ok => Ok(()),
            Response::Err(m) => Err(RnError::Remote(m)),
            other => Err(unexpected(other)),
        }
    }

    fn remote_write(&mut self, seg: SegmentId, offset: usize, data: &[u8]) -> Result<(), RnError> {
        match self.call(&Request::Write {
            seg: seg.as_raw(),
            offset: offset as u64,
            data: data.to_vec(),
        })? {
            Response::Ok => Ok(()),
            Response::Err(m) => Err(RnError::Remote(m)),
            other => Err(unexpected(other)),
        }
    }

    fn remote_write_v(&mut self, writes: &[(SegmentId, usize, &[u8])]) -> Result<(), RnError> {
        // The whole batch rides in one frame and is confirmed by one ack.
        match self.call(&Request::WriteV {
            ranges: writes
                .iter()
                .map(|&(seg, offset, data)| (seg.as_raw(), offset as u64, data.to_vec()))
                .collect(),
        })? {
            Response::Ok => Ok(()),
            Response::Err(m) => Err(RnError::Remote(m)),
            other => Err(unexpected(other)),
        }
    }

    fn remote_read(
        &mut self,
        seg: SegmentId,
        offset: usize,
        buf: &mut [u8],
    ) -> Result<(), RnError> {
        match self.call(&Request::Read {
            seg: seg.as_raw(),
            offset: offset as u64,
            len: buf.len() as u64,
        })? {
            Response::Data(d) if d.len() == buf.len() => {
                buf.copy_from_slice(&d);
                Ok(())
            }
            Response::Data(d) => Err(RnError::Protocol(format!(
                "short read: wanted {} bytes, got {}",
                buf.len(),
                d.len()
            ))),
            Response::Err(m) => Err(RnError::Remote(m)),
            other => Err(unexpected(other)),
        }
    }

    fn connect_segment(&mut self, tag: u64) -> Result<RemoteSegment, RnError> {
        self.expect_segment(&Request::Connect { tag })
            .map_err(|e| match e {
                RnError::Remote(_) => RnError::TagNotFound(tag),
                other => other,
            })
    }

    fn segment_info(&mut self, seg: SegmentId) -> Result<RemoteSegment, RnError> {
        self.expect_segment(&Request::Info { seg: seg.as_raw() })
    }

    fn node_name(&self) -> String {
        self.cached_name
            .clone()
            .unwrap_or_else(|| format!("tcp://{}", self.peer))
    }
}

impl TcpRemote {
    /// Fetches and caches the server's node name.
    ///
    /// # Errors
    ///
    /// Fails if the server is unreachable.
    pub fn fetch_name(&mut self) -> Result<String, RnError> {
        match self.call(&Request::Name)? {
            Response::Name(n) => {
                self.cached_name = Some(n.clone());
                Ok(n)
            }
            Response::Err(m) => Err(RnError::Remote(m)),
            other => Err(unexpected(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;

    #[test]
    fn ping_and_name() {
        let server = Server::bind("pinger", "127.0.0.1:0").unwrap().start();
        let mut c = TcpRemote::connect(server.addr()).unwrap();
        c.ping().unwrap();
        assert_eq!(c.fetch_name().unwrap(), "pinger");
        assert_eq!(c.node_name(), "pinger");
        server.shutdown();
    }

    #[test]
    fn node_name_falls_back_to_address() {
        let server = Server::bind("x", "127.0.0.1:0").unwrap().start();
        let c = TcpRemote::connect(server.addr()).unwrap();
        assert!(c.node_name().starts_with("tcp://127.0.0.1"));
        server.shutdown();
    }

    #[test]
    fn large_transfer_roundtrips() {
        let server = Server::bind("big", "127.0.0.1:0").unwrap().start();
        let mut c = TcpRemote::connect(server.addr()).unwrap();
        let seg = c.remote_malloc(1 << 20, 0).unwrap();
        let data: Vec<u8> = (0..1 << 20).map(|i| (i % 251) as u8).collect();
        c.remote_write(seg.id, 0, &data).unwrap();
        let mut back = vec![0u8; 1 << 20];
        c.remote_read(seg.id, 0, &mut back).unwrap();
        assert_eq!(back, data);
        server.shutdown();
    }

    #[test]
    fn vectored_write_roundtrips_over_the_wire() {
        let server = Server::bind("vec", "127.0.0.1:0").unwrap().start();
        let mut c = TcpRemote::connect(server.addr()).unwrap();
        let a = c.remote_malloc(256, 0).unwrap();
        let b = c.remote_malloc(64, 1).unwrap();
        c.remote_write_v(&[
            (a.id, 0, &[1; 32]),
            (b.id, 8, &[2; 8]),
            (a.id, 200, &[3; 56]),
        ])
        .unwrap();
        let mut buf = [0u8; 56];
        c.remote_read(a.id, 200, &mut buf).unwrap();
        assert_eq!(buf, [3; 56]);
        let mut buf = [0u8; 8];
        c.remote_read(b.id, 8, &mut buf).unwrap();
        assert_eq!(buf, [2; 8]);
        server.shutdown();
    }

    #[test]
    fn vectored_write_applies_prefix_before_failing_range() {
        let server = Server::bind("vec-err", "127.0.0.1:0").unwrap().start();
        let mut c = TcpRemote::connect(server.addr()).unwrap();
        let seg = c.remote_malloc(64, 0).unwrap();
        // Second range is out of bounds; the first must still be applied
        // (torn-prefix semantics).
        let err = c
            .remote_write_v(&[(seg.id, 0, &[5; 16]), (seg.id, 60, &[6; 8])])
            .unwrap_err();
        assert!(matches!(err, RnError::Remote(_)));
        let mut buf = [0u8; 16];
        c.remote_read(seg.id, 0, &mut buf).unwrap();
        assert_eq!(buf, [5; 16]);
        server.shutdown();
    }

    #[test]
    fn free_round_trips_errors() {
        let server = Server::bind("f", "127.0.0.1:0").unwrap().start();
        let mut c = TcpRemote::connect(server.addr()).unwrap();
        let seg = c.remote_malloc(8, 0).unwrap();
        c.remote_free(seg.id).unwrap();
        assert!(matches!(c.remote_free(seg.id), Err(RnError::Remote(_))));
        server.shutdown();
    }
}
