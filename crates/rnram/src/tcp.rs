//! TCP client backend: network RAM on a genuinely separate process.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

use perseas_sci::SegmentId;

use crate::metrics::ClientMetrics;
use crate::protocol::{
    encode_seq, encode_write, encode_write_v, read_frame, write_frame, Request, Response,
};
use crate::{FlushStats, RemoteMemory, RemoteSegment, RnError};

/// Environment variable read by [`TcpRemote::connect_auto`]: set it to
/// `1`, `true`, `on`, or `yes` to get a pipelined connection, anything
/// else (or unset) for the synchronous one.
pub const PIPELINE_ENV: &str = "PERSEAS_TCP_PIPELINE";

/// Bounds on the pipelined in-flight window: how many write operations
/// may be posted without an acknowledgement, and how many payload bytes
/// they may carry in total. A write larger than `max_bytes` is still
/// accepted — it just flies alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Maximum posted-but-unacknowledged operations (at least 1).
    pub max_ops: usize,
    /// Maximum payload bytes in flight at once.
    pub max_bytes: usize,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            max_ops: 64,
            max_bytes: 4 << 20,
        }
    }
}

/// Client-side pipelining state: the FIFO of posted-but-unacknowledged
/// sequence numbers and the refusals their acks carried back.
#[derive(Debug)]
struct PipelineState {
    cfg: PipelineConfig,
    next_seq: u64,
    /// `(seq, payload_bytes)` of posted writes, oldest first. The server
    /// answers in FIFO order, so the next tagged response always matches
    /// the front (or a synchronous RPC posted after all of them).
    outstanding: VecDeque<(u64, usize)>,
    outstanding_bytes: usize,
    /// Typed refusals earned by posted writes, surfaced one per
    /// [`RemoteMemory::flush`] call.
    refusals: VecDeque<String>,
}

/// A [`RemoteMemory`] that talks to a [`crate::server::Server`] over TCP.
///
/// Latency here is real wall-clock network latency; use this backend for
/// actual deployments and the two-process examples, and [`crate::SimRemote`]
/// for reproducing the paper's virtual-time figures.
///
/// Two modes share the connection logic:
///
/// - [`TcpRemote::connect`] acknowledges every operation inline — one
///   round trip per call, errors surface at the call that earned them.
/// - [`TcpRemote::connect_pipelined`] *posts* writes: `remote_write` and
///   `remote_write_v` return as soon as the frame is on the wire (within
///   a bounded window), and [`RemoteMemory::flush`] is the ack barrier
///   that confirms them — the paper's "write now, confirm at the commit
///   point" shape over a real network. A posted write's refusal never
///   surfaces through another operation's result; it is queued and
///   reported by `flush`, one per call.
#[derive(Debug)]
pub struct TcpRemote {
    stream: TcpStream,
    peer: SocketAddr,
    cached_name: Option<String>,
    pipeline: Option<PipelineState>,
    metrics: Option<ClientMetrics>,
}

impl TcpRemote {
    /// Connects to a network-RAM server in synchronous (one round trip
    /// per operation) mode.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<TcpRemote, RnError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        Ok(TcpRemote {
            stream,
            peer,
            cached_name: None,
            pipeline: None,
            metrics: None,
        })
    }

    /// Installs metrics: round trips, posted writes, frame bytes, window
    /// stalls, flush barriers, and window occupancy are registered in
    /// `registry` (names in `docs/OBSERVABILITY.md`). Without this call
    /// the transport pays one `Option` branch per operation.
    pub fn set_metrics(&mut self, registry: &perseas_obs::Registry) {
        self.metrics = Some(ClientMetrics::new(registry));
    }

    /// Updates the window-occupancy gauge (no-op without metrics).
    fn gauge_in_flight(&self) {
        if let Some(m) = self.metrics.as_ref() {
            m.in_flight
                .set(self.pipeline.as_ref().map_or(0, |p| p.outstanding.len()) as i64);
        }
    }

    /// Connects in pipelined mode with the default window
    /// ([`PipelineConfig::default`]: 64 ops / 4 MiB).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect_pipelined(addr: impl ToSocketAddrs) -> Result<TcpRemote, RnError> {
        TcpRemote::connect_with(addr, PipelineConfig::default())
    }

    /// Connects in pipelined mode with an explicit window configuration.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        cfg: PipelineConfig,
    ) -> Result<TcpRemote, RnError> {
        let mut conn = TcpRemote::connect(addr)?;
        conn.enable_pipeline(cfg);
        Ok(conn)
    }

    /// Switches an idle connection into pipelined mode (used by the
    /// reconnect wrapper so enabling pipelining does not re-dial).
    pub(crate) fn enable_pipeline(&mut self, cfg: PipelineConfig) {
        debug_assert_eq!(self.in_flight(), 0, "enable on an idle connection");
        self.pipeline = Some(PipelineState {
            cfg: PipelineConfig {
                max_ops: cfg.max_ops.max(1),
                max_bytes: cfg.max_bytes.max(1),
            },
            next_seq: 0,
            outstanding: VecDeque::new(),
            outstanding_bytes: 0,
            refusals: VecDeque::new(),
        });
    }

    /// Connects in the mode selected by the [`PIPELINE_ENV`] environment
    /// variable — the hook the test suites use to run the same scenarios
    /// over both transports.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect_auto(addr: impl ToSocketAddrs) -> Result<TcpRemote, RnError> {
        if env_enables_pipeline(std::env::var(PIPELINE_ENV).ok().as_deref()) {
            TcpRemote::connect_pipelined(addr)
        } else {
            TcpRemote::connect(addr)
        }
    }

    /// Whether this connection posts writes (pipelined mode).
    pub fn is_pipelined(&self) -> bool {
        self.pipeline.is_some()
    }

    /// The server address this client is connected to.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// Sends a liveness probe.
    ///
    /// # Errors
    ///
    /// Fails if the server is unreachable.
    pub fn ping(&mut self) -> Result<(), RnError> {
        match self.call(&Request::Ping)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the server to stop accepting new connections.
    ///
    /// # Errors
    ///
    /// Fails if the server is unreachable.
    pub fn shutdown_server(&mut self) -> Result<(), RnError> {
        match self.call(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    fn call(&mut self, req: &Request) -> Result<Response, RnError> {
        if self.pipeline.is_some() {
            let seq = self.take_seq();
            let body = encode_seq(seq, req);
            if let Some(m) = self.metrics.as_ref() {
                m.ops.inc();
                m.bytes.add(body.len() as u64);
            }
            write_frame(&mut self.stream, &body)?;
            let resp = self.await_tagged(seq);
            self.gauge_in_flight();
            return resp;
        }
        self.sync_roundtrip(&req.encode())
    }

    /// One synchronous request/response exchange from an already-encoded
    /// frame body.
    fn sync_roundtrip(&mut self, body: &[u8]) -> Result<Response, RnError> {
        if let Some(m) = self.metrics.as_ref() {
            m.ops.inc();
            m.bytes.add(body.len() as u64);
        }
        write_frame(&mut self.stream, body)?;
        let resp = read_frame(&mut self.stream)?;
        Response::decode(&resp)
    }

    /// Allocates the next sequence number (pipelined mode only).
    fn take_seq(&mut self) -> u64 {
        let p = self.pipeline.as_mut().expect("pipelined mode");
        let seq = p.next_seq;
        p.next_seq += 1;
        seq
    }

    /// Posts an already-encoded, seq-wrapped write without waiting for
    /// its acknowledgement, draining old acks first if the window is
    /// full. `bytes` is the payload size charged against the window.
    fn post(&mut self, body: Vec<u8>, seq: u64, bytes: usize) -> Result<(), RnError> {
        let mut stalled = false;
        loop {
            let p = self.pipeline.as_ref().expect("pipelined mode");
            let fits = p.outstanding.len() < p.cfg.max_ops
                && (p.outstanding.is_empty() || p.outstanding_bytes + bytes <= p.cfg.max_bytes);
            if fits {
                break;
            }
            stalled = true;
            self.drain_one()?;
        }
        write_frame(&mut self.stream, &body)?;
        let p = self.pipeline.as_mut().expect("pipelined mode");
        p.outstanding.push_back((seq, bytes));
        p.outstanding_bytes += bytes;
        if let Some(m) = self.metrics.as_ref() {
            m.posted.inc();
            m.bytes.add(body.len() as u64);
            if stalled {
                m.window_stalls.inc();
            }
        }
        self.gauge_in_flight();
        Ok(())
    }

    /// Reads one tagged response and resolves it against the oldest
    /// outstanding posted write; a refusal is queued for [`Self::flush`],
    /// never returned here.
    fn drain_one(&mut self) -> Result<(), RnError> {
        let body = read_frame(&mut self.stream)?;
        let resp = Response::decode(&body)?;
        let Response::Tagged { seq, inner } = resp else {
            return Err(unexpected(resp));
        };
        let p = self.pipeline.as_mut().expect("pipelined mode");
        let Some(&(front, bytes)) = p.outstanding.front() else {
            return Err(RnError::Protocol(format!("unsolicited ack for seq {seq}")));
        };
        if seq != front {
            return Err(RnError::Protocol(format!(
                "ack for seq {seq} arrived while seq {front} is oldest in flight"
            )));
        }
        p.outstanding.pop_front();
        p.outstanding_bytes -= bytes;
        match *inner {
            Response::Ok => Ok(()),
            Response::Err(m) => {
                p.refusals.push_back(m);
                Ok(())
            }
            other => Err(unexpected(other)),
        }
    }

    /// Reads tagged responses until the one for `want` arrives, resolving
    /// acknowledgements of earlier posted writes along the way (the
    /// server answers in FIFO order, so they all precede `want`).
    fn await_tagged(&mut self, want: u64) -> Result<Response, RnError> {
        loop {
            let body = read_frame(&mut self.stream)?;
            let resp = Response::decode(&body)?;
            let Response::Tagged { seq, inner } = resp else {
                return Err(unexpected(resp));
            };
            let p = self.pipeline.as_mut().expect("pipelined mode");
            if let Some(&(front, bytes)) = p.outstanding.front() {
                if seq == front {
                    p.outstanding.pop_front();
                    p.outstanding_bytes -= bytes;
                    match *inner {
                        Response::Ok => continue,
                        Response::Err(m) => {
                            p.refusals.push_back(m);
                            continue;
                        }
                        other => return Err(unexpected(other)),
                    }
                }
            }
            if seq == want {
                return Ok(*inner);
            }
            return Err(RnError::Protocol(format!(
                "response for seq {seq} out of order (awaiting {want})"
            )));
        }
    }

    fn expect_segment(&mut self, req: &Request) -> Result<RemoteSegment, RnError> {
        match self.call(req)? {
            Response::Segment {
                seg,
                len,
                tag,
                base_addr,
            } => Ok(RemoteSegment {
                id: SegmentId::from_raw(seg),
                len: len as usize,
                tag,
                base_addr,
            }),
            Response::Err(m) => Err(RnError::Remote(m)),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(resp: Response) -> RnError {
    RnError::Protocol(format!("unexpected response: {resp:?}"))
}

/// Validates a [`Response::DataV`] against the ranges that were requested:
/// exactly one buffer per range, each of the requested length. Shared by
/// the plain TCP client and mux sessions.
pub(crate) fn check_data_v(
    reads: &[(SegmentId, usize, usize)],
    bufs: Vec<Vec<u8>>,
) -> Result<Vec<Vec<u8>>, RnError> {
    if bufs.len() != reads.len() {
        return Err(RnError::Protocol(format!(
            "vectored read: wanted {} buffers, got {}",
            reads.len(),
            bufs.len()
        )));
    }
    for (i, (buf, &(_, _, len))) in bufs.iter().zip(reads).enumerate() {
        if buf.len() != len {
            return Err(RnError::Protocol(format!(
                "vectored read: range {i} wanted {len} bytes, got {}",
                buf.len()
            )));
        }
    }
    Ok(bufs)
}

/// Interprets the [`PIPELINE_ENV`] value: `1`/`true`/`on`/`yes`
/// (case-insensitive) enable pipelining, anything else — including
/// unset — selects the synchronous transport.
pub(crate) fn env_enables_pipeline(value: Option<&str>) -> bool {
    matches!(
        value.map(str::trim).map(str::to_ascii_lowercase).as_deref(),
        Some("1") | Some("true") | Some("on") | Some("yes")
    )
}

impl RemoteMemory for TcpRemote {
    fn remote_malloc(&mut self, len: usize, tag: u64) -> Result<RemoteSegment, RnError> {
        self.expect_segment(&Request::Malloc {
            len: len as u64,
            tag,
        })
    }

    fn remote_free(&mut self, seg: SegmentId) -> Result<(), RnError> {
        match self.call(&Request::Free { seg: seg.as_raw() })? {
            Response::Ok => Ok(()),
            Response::Err(m) => Err(RnError::Remote(m)),
            other => Err(unexpected(other)),
        }
    }

    fn remote_write(&mut self, seg: SegmentId, offset: usize, data: &[u8]) -> Result<(), RnError> {
        // The frame is encoded straight from the borrowed payload: one
        // allocation, one copy, no intermediate `data.to_vec()`.
        if self.pipeline.is_some() {
            let seq = self.take_seq();
            let body = encode_write(Some(seq), seg.as_raw(), offset as u64, data);
            return self.post(body, seq, data.len());
        }
        let body = encode_write(None, seg.as_raw(), offset as u64, data);
        match self.sync_roundtrip(&body)? {
            Response::Ok => Ok(()),
            Response::Err(m) => Err(RnError::Remote(m)),
            other => Err(unexpected(other)),
        }
    }

    fn remote_write_v(&mut self, writes: &[(SegmentId, usize, &[u8])]) -> Result<(), RnError> {
        // The whole batch rides in one frame and is confirmed by one ack;
        // the frame is encoded straight from the borrowed ranges.
        let ranges: Vec<(u64, u64, &[u8])> = writes
            .iter()
            .map(|&(seg, offset, data)| (seg.as_raw(), offset as u64, data))
            .collect();
        if self.pipeline.is_some() {
            let seq = self.take_seq();
            let body = encode_write_v(Some(seq), &ranges);
            let bytes = ranges.iter().map(|(_, _, d)| d.len()).sum();
            return self.post(body, seq, bytes);
        }
        let body = encode_write_v(None, &ranges);
        match self.sync_roundtrip(&body)? {
            Response::Ok => Ok(()),
            Response::Err(m) => Err(RnError::Remote(m)),
            other => Err(unexpected(other)),
        }
    }

    fn flush(&mut self) -> Result<FlushStats, RnError> {
        if self.pipeline.is_none() {
            return Ok(FlushStats::default());
        }
        let stats = {
            let p = self.pipeline.as_ref().expect("pipelined mode");
            FlushStats {
                posted: p.outstanding.len(),
                bytes: p.outstanding_bytes,
            }
        };
        while !self
            .pipeline
            .as_ref()
            .expect("pipelined mode")
            .outstanding
            .is_empty()
        {
            // On a socket error the outstanding window stays recorded, so
            // `in_flight()` keeps reporting the lost operations and a
            // reconnect wrapper knows it must not silently re-dial.
            self.drain_one()?;
        }
        if let Some(m) = self.metrics.as_ref() {
            m.flush_barriers.inc();
            m.flush_posted.add(stats.posted as u64);
            m.flush_bytes.add(stats.bytes as u64);
        }
        self.gauge_in_flight();
        let p = self.pipeline.as_mut().expect("pipelined mode");
        if let Some(m) = p.refusals.pop_front() {
            return Err(RnError::Remote(m));
        }
        Ok(stats)
    }

    fn in_flight(&self) -> usize {
        self.pipeline.as_ref().map_or(0, |p| p.outstanding.len())
    }

    fn remote_read(
        &mut self,
        seg: SegmentId,
        offset: usize,
        buf: &mut [u8],
    ) -> Result<(), RnError> {
        match self.call(&Request::Read {
            seg: seg.as_raw(),
            offset: offset as u64,
            len: buf.len() as u64,
        })? {
            Response::Data(d) if d.len() == buf.len() => {
                buf.copy_from_slice(&d);
                Ok(())
            }
            Response::Data(d) => Err(RnError::Protocol(format!(
                "short read: wanted {} bytes, got {}",
                buf.len(),
                d.len()
            ))),
            Response::Err(m) => Err(RnError::Remote(m)),
            other => Err(unexpected(other)),
        }
    }

    fn remote_read_v(
        &mut self,
        reads: &[(SegmentId, usize, usize)],
    ) -> Result<Vec<Vec<u8>>, RnError> {
        match self.call(&Request::ReadV {
            reads: reads
                .iter()
                .map(|&(seg, offset, len)| (seg.as_raw(), offset as u64, len as u64))
                .collect(),
        })? {
            Response::DataV(bufs) => check_data_v(reads, bufs),
            Response::Err(m) => Err(RnError::Remote(m)),
            other => Err(unexpected(other)),
        }
    }

    fn connect_segment(&mut self, tag: u64) -> Result<RemoteSegment, RnError> {
        self.expect_segment(&Request::Connect { tag })
            .map_err(|e| match e {
                RnError::Remote(_) => RnError::TagNotFound(tag),
                other => other,
            })
    }

    fn segment_info(&mut self, seg: SegmentId) -> Result<RemoteSegment, RnError> {
        self.expect_segment(&Request::Info { seg: seg.as_raw() })
    }

    fn node_name(&self) -> String {
        self.cached_name
            .clone()
            .unwrap_or_else(|| format!("tcp://{}", self.peer))
    }
}

impl TcpRemote {
    /// Fetches and caches the server's node name.
    ///
    /// # Errors
    ///
    /// Fails if the server is unreachable.
    pub fn fetch_name(&mut self) -> Result<String, RnError> {
        match self.call(&Request::Name)? {
            Response::Name(n) => {
                self.cached_name = Some(n.clone());
                Ok(n)
            }
            Response::Err(m) => Err(RnError::Remote(m)),
            other => Err(unexpected(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;

    #[test]
    fn ping_and_name() {
        let server = Server::bind("pinger", "127.0.0.1:0").unwrap().start();
        let mut c = TcpRemote::connect(server.addr()).unwrap();
        c.ping().unwrap();
        assert_eq!(c.fetch_name().unwrap(), "pinger");
        assert_eq!(c.node_name(), "pinger");
        server.shutdown();
    }

    #[test]
    fn node_name_falls_back_to_address() {
        let server = Server::bind("x", "127.0.0.1:0").unwrap().start();
        let c = TcpRemote::connect(server.addr()).unwrap();
        assert!(c.node_name().starts_with("tcp://127.0.0.1"));
        server.shutdown();
    }

    #[test]
    fn large_transfer_roundtrips() {
        let server = Server::bind("big", "127.0.0.1:0").unwrap().start();
        let mut c = TcpRemote::connect(server.addr()).unwrap();
        let seg = c.remote_malloc(1 << 20, 0).unwrap();
        let data: Vec<u8> = (0..1 << 20).map(|i| (i % 251) as u8).collect();
        c.remote_write(seg.id, 0, &data).unwrap();
        let mut back = vec![0u8; 1 << 20];
        c.remote_read(seg.id, 0, &mut back).unwrap();
        assert_eq!(back, data);
        server.shutdown();
    }

    #[test]
    fn vectored_write_roundtrips_over_the_wire() {
        let server = Server::bind("vec", "127.0.0.1:0").unwrap().start();
        let mut c = TcpRemote::connect(server.addr()).unwrap();
        let a = c.remote_malloc(256, 0).unwrap();
        let b = c.remote_malloc(64, 1).unwrap();
        c.remote_write_v(&[
            (a.id, 0, &[1; 32]),
            (b.id, 8, &[2; 8]),
            (a.id, 200, &[3; 56]),
        ])
        .unwrap();
        let mut buf = [0u8; 56];
        c.remote_read(a.id, 200, &mut buf).unwrap();
        assert_eq!(buf, [3; 56]);
        let mut buf = [0u8; 8];
        c.remote_read(b.id, 8, &mut buf).unwrap();
        assert_eq!(buf, [2; 8]);
        server.shutdown();
    }

    #[test]
    fn vectored_write_applies_prefix_before_failing_range() {
        let server = Server::bind("vec-err", "127.0.0.1:0").unwrap().start();
        let mut c = TcpRemote::connect(server.addr()).unwrap();
        let seg = c.remote_malloc(64, 0).unwrap();
        // Second range is out of bounds; the first must still be applied
        // (torn-prefix semantics).
        let err = c
            .remote_write_v(&[(seg.id, 0, &[5; 16]), (seg.id, 60, &[6; 8])])
            .unwrap_err();
        assert!(matches!(err, RnError::Remote(_)));
        let mut buf = [0u8; 16];
        c.remote_read(seg.id, 0, &mut buf).unwrap();
        assert_eq!(buf, [5; 16]);
        server.shutdown();
    }

    #[test]
    fn free_round_trips_errors() {
        let server = Server::bind("f", "127.0.0.1:0").unwrap().start();
        let mut c = TcpRemote::connect(server.addr()).unwrap();
        let seg = c.remote_malloc(8, 0).unwrap();
        c.remote_free(seg.id).unwrap();
        assert!(matches!(c.remote_free(seg.id), Err(RnError::Remote(_))));
        server.shutdown();
    }

    #[test]
    fn pipelined_writes_flush_at_the_barrier() {
        let server = Server::bind("pipe", "127.0.0.1:0").unwrap().start();
        let mut c = TcpRemote::connect_pipelined(server.addr()).unwrap();
        assert!(c.is_pipelined());
        let seg = c.remote_malloc(64, 0).unwrap();
        for i in 0..8u8 {
            c.remote_write(seg.id, i as usize * 4, &[i; 4]).unwrap();
        }
        assert!(c.in_flight() > 0, "writes are posted, not confirmed");
        let stats = c.flush().unwrap();
        assert_eq!(stats.posted, 8);
        assert_eq!(stats.bytes, 32);
        assert_eq!(c.in_flight(), 0);
        // A second barrier with nothing outstanding is free.
        assert_eq!(c.flush().unwrap(), FlushStats::default());
        let mut buf = [0u8; 4];
        c.remote_read(seg.id, 28, &mut buf).unwrap();
        assert_eq!(buf, [7; 4]);
        server.shutdown();
    }

    #[test]
    fn metrics_count_ops_posts_stalls_and_flushes() {
        let server_registry = perseas_obs::Registry::new();
        let client_registry = perseas_obs::Registry::new();
        let server = Server::bind("met", "127.0.0.1:0")
            .unwrap()
            .with_metrics(&server_registry)
            .start();
        let mut c = TcpRemote::connect_with(
            server.addr(),
            PipelineConfig {
                max_ops: 2,
                max_bytes: 1 << 20,
            },
        )
        .unwrap();
        c.set_metrics(&client_registry);
        let seg = c.remote_malloc(64, 0).unwrap();
        for i in 0..6u8 {
            c.remote_write(seg.id, i as usize * 4, &[i; 4]).unwrap();
        }
        c.flush().unwrap();
        let mut buf = [0u8; 4];
        c.remote_read(seg.id, 0, &mut buf).unwrap();

        let client = perseas_obs::parse_exposition(&client_registry.render()).unwrap();
        let get = |name: &str| {
            client
                .iter()
                .find(|s| s.name == name)
                .map_or(0.0, |s| s.value)
        };
        assert_eq!(get("perseas_client_posted_total"), 6.0);
        // Posts 3..6 each found the 2-slot window full and drained an ack.
        assert_eq!(get("perseas_client_window_stalls_total"), 4.0);
        assert_eq!(get("perseas_client_flush_barriers_total"), 1.0);
        assert_eq!(get("perseas_client_flush_posted_total"), 2.0);
        // malloc + read are synchronous (tagged) round trips.
        assert_eq!(get("perseas_client_ops_total"), 2.0);
        assert_eq!(get("perseas_client_in_flight"), 0.0);

        // Scrape the server after shutdown so connection accounting is done.
        drop(c);
        server.shutdown();
        let samples = perseas_obs::parse_exposition(&server_registry.render()).unwrap();
        let op_count = |op: &str| {
            samples
                .iter()
                .find(|s| s.name == "perseas_server_requests_total" && s.label("op") == Some(op))
                .map_or(0.0, |s| s.value)
        };
        assert_eq!(op_count("malloc"), 1.0);
        assert_eq!(op_count("write"), 6.0);
        assert_eq!(op_count("read"), 1.0);
    }

    #[test]
    fn window_limit_drains_oldest_acks_first() {
        let server = Server::bind("win", "127.0.0.1:0").unwrap().start();
        let mut c = TcpRemote::connect_with(
            server.addr(),
            PipelineConfig {
                max_ops: 2,
                max_bytes: 1 << 20,
            },
        )
        .unwrap();
        let seg = c.remote_malloc(256, 0).unwrap();
        for i in 0..10u8 {
            c.remote_write(seg.id, i as usize, &[i]).unwrap();
            assert!(c.in_flight() <= 2, "window stays bounded");
        }
        let stats = c.flush().unwrap();
        assert!(stats.posted <= 2);
        let mut buf = [0u8; 10];
        c.remote_read(seg.id, 0, &mut buf).unwrap();
        assert_eq!(buf, [0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        server.shutdown();
    }

    #[test]
    fn byte_budget_bounds_the_window() {
        let server = Server::bind("bytes", "127.0.0.1:0").unwrap().start();
        let mut c = TcpRemote::connect_with(
            server.addr(),
            PipelineConfig {
                max_ops: 64,
                max_bytes: 16,
            },
        )
        .unwrap();
        let seg = c.remote_malloc(256, 0).unwrap();
        c.remote_write(seg.id, 0, &[1; 10]).unwrap();
        // 10 + 10 > 16: posting drains the first ack before sending.
        c.remote_write(seg.id, 10, &[2; 10]).unwrap();
        assert_eq!(c.in_flight(), 1);
        // Larger than the whole budget: still accepted, flies alone.
        c.remote_write(seg.id, 20, &[3; 32]).unwrap();
        c.flush().unwrap();
        let mut buf = [0u8; 52];
        c.remote_read(seg.id, 0, &mut buf).unwrap();
        assert_eq!(&buf[..10], &[1; 10]);
        assert_eq!(&buf[10..20], &[2; 10]);
        assert_eq!(&buf[20..], &[3; 32]);
        server.shutdown();
    }

    #[test]
    fn posted_refusals_surface_one_per_flush() {
        let server = Server::bind("refuse", "127.0.0.1:0").unwrap().start();
        let mut c = TcpRemote::connect_pipelined(server.addr()).unwrap();
        let seg = c.remote_malloc(8, 0).unwrap();
        // Two out-of-bounds writes: both post fine, both are refused.
        c.remote_write(seg.id, 100, &[1]).unwrap();
        c.remote_write(seg.id, 200, &[2]).unwrap();
        c.remote_write(seg.id, 0, &[3]).unwrap();
        assert!(matches!(c.flush(), Err(RnError::Remote(_))));
        assert_eq!(c.in_flight(), 0, "barrier drained everything");
        assert!(matches!(c.flush(), Err(RnError::Remote(_))));
        c.flush().unwrap();
        let mut buf = [0u8; 1];
        c.remote_read(seg.id, 0, &mut buf).unwrap();
        assert_eq!(buf, [3], "in-bounds write landed despite neighbours");
        server.shutdown();
    }

    #[test]
    fn rpcs_resolve_earlier_posted_acks_in_order() {
        let server = Server::bind("mix", "127.0.0.1:0").unwrap().start();
        let mut c = TcpRemote::connect_pipelined(server.addr()).unwrap();
        let seg = c.remote_malloc(16, 7).unwrap();
        c.remote_write(seg.id, 0, b"abcd").unwrap();
        c.remote_write(seg.id, 99, &[1]).unwrap(); // refused later
                                                   // A read immediately after posted writes: FIFO means it observes
                                                   // them, and its result is never polluted by their refusals.
        let mut buf = [0u8; 4];
        c.remote_read(seg.id, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"abcd");
        assert_eq!(c.in_flight(), 0, "the read resolved the posted acks");
        // The refusal is still waiting at the barrier.
        assert!(matches!(c.flush(), Err(RnError::Remote(_))));
        c.flush().unwrap();
        // Other RPC kinds work seq-wrapped too.
        assert_eq!(c.connect_segment(7).unwrap().id, seg.id);
        c.ping().unwrap();
        assert_eq!(c.fetch_name().unwrap(), "mix");
        server.shutdown();
    }

    #[test]
    fn dead_server_leaves_the_window_in_flight() {
        let server = Server::bind("die", "127.0.0.1:0").unwrap().start();
        let mut c = TcpRemote::connect_pipelined(server.addr()).unwrap();
        let seg = c.remote_malloc(64, 0).unwrap();
        server.shutdown();
        // The post lands in the OS buffer or fails; either way the
        // barrier must report the connection as unavailable and keep the
        // lost window visible through in_flight().
        let mut posted = 0;
        for i in 0..4u8 {
            if c.remote_write(seg.id, i as usize, &[i]).is_ok() {
                posted += 1;
            }
        }
        if posted > 0 {
            let err = c.flush().unwrap_err();
            assert!(err.is_unavailable(), "barrier reports the dead link: {err}");
            assert!(c.in_flight() > 0, "lost window stays visible");
        }
    }

    #[test]
    fn env_toggle_parses_truthy_values_only() {
        assert!(env_enables_pipeline(Some("1")));
        assert!(env_enables_pipeline(Some("true")));
        assert!(env_enables_pipeline(Some("ON")));
        assert!(env_enables_pipeline(Some(" yes ")));
        assert!(!env_enables_pipeline(Some("0")));
        assert!(!env_enables_pipeline(Some("off")));
        assert!(!env_enables_pipeline(Some("")));
        assert!(!env_enables_pipeline(None));
    }

    #[test]
    fn sync_mode_flush_is_a_noop() {
        let server = Server::bind("sync", "127.0.0.1:0").unwrap().start();
        let mut c = TcpRemote::connect(server.addr()).unwrap();
        assert!(!c.is_pipelined());
        let seg = c.remote_malloc(8, 0).unwrap();
        c.remote_write(seg.id, 0, &[1]).unwrap();
        assert_eq!(c.in_flight(), 0);
        assert_eq!(c.flush().unwrap(), FlushStats::default());
        server.shutdown();
    }
}
