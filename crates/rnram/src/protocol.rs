//! Wire protocol of the TCP network-RAM backend.
//!
//! Frames are length-prefixed and CRC-protected:
//!
//! ```text
//! +----------------+----------------------+----------------+
//! | body_len: u32  | body (op + payload)  | crc32 of body  |
//! +----------------+----------------------+----------------+
//! ```
//!
//! All integers are little-endian. The CRC is the IEEE 802.3 CRC-32.

use std::io::{Read, Write};

use crate::RnError;

/// Upper bound on a frame body; a malloc of the node's whole 64 MB plus
/// slack.
pub const MAX_FRAME: usize = 96 << 20;

/// Requests a client may send.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Allocate `len` bytes tagged `tag`.
    Malloc { len: u64, tag: u64 },
    /// Free a segment.
    Free { seg: u64 },
    /// Write `data` at `offset` of `seg`.
    Write {
        seg: u64,
        offset: u64,
        data: Vec<u8>,
    },
    /// Read `len` bytes at `offset` of `seg`.
    Read { seg: u64, offset: u64, len: u64 },
    /// Read several `(seg, offset, len)` ranges as one message with one
    /// answer (the wire form of a vectored `remote_read_v`). The
    /// event-driven server serves the whole batch atomically with
    /// respect to other sessions' writes, which is what lets a read
    /// replica take an untearable snapshot cut.
    ReadV {
        /// The `(seg, offset, len)` ranges, read in order.
        reads: Vec<(u64, u64, u64)>,
    },
    /// Find a segment by tag (recovery).
    Connect { tag: u64 },
    /// Fetch metadata of a segment.
    Info { seg: u64 },
    /// Write several `(seg, offset, data)` ranges as one message with one
    /// acknowledgement (the wire form of a vectored `remote_write_v`).
    /// Ranges are applied in order; on a mid-batch failure the earlier
    /// ranges stay applied, mirroring a torn SCI burst.
    WriteV {
        /// The `(seg, offset, data)` ranges, applied in order.
        ranges: Vec<(u64, u64, Vec<u8>)>,
    },
    /// Ask the server for its node name.
    Name,
    /// Liveness probe.
    Ping,
    /// Ask the server to stop accepting connections.
    Shutdown,
    /// A pipelined request: `inner` tagged with the client-chosen
    /// sequence number `seq`. The server answers with
    /// [`Response::Tagged`] carrying the same `seq`, which lets the
    /// client post many requests before draining any acknowledgement.
    /// Nesting is rejected: a `Seq` may not wrap another `Seq` or a
    /// [`Request::Mux`].
    Seq {
        /// Client-chosen sequence number echoed in the response.
        seq: u64,
        /// The wrapped request.
        inner: Box<Request>,
    },
    /// A multiplexed request: `inner` belongs to the logical client
    /// session `session` and carries that session's sequence number
    /// `seq`. Many sessions share one socket; the server answers with
    /// [`Response::Mux`] echoing both identifiers so the client can
    /// route the acknowledgement to the right session. Per-session
    /// ordering is FIFO (the server answers a connection's requests in
    /// receipt order, and a session's frames are a subsequence of the
    /// connection's). Nesting is rejected: a `Mux` may not wrap a `Seq`
    /// or another `Mux`.
    Mux {
        /// The logical session this request belongs to.
        session: u64,
        /// The session's sequence number, echoed in the response.
        seq: u64,
        /// The wrapped request.
        inner: Box<Request>,
    },
    /// Retires the wrapping [`Request::Mux`]'s session: the server
    /// forgets the session id (gauge bookkeeping only — sessions hold no
    /// server-side state beyond their count). Sent best-effort when a
    /// client session handle is dropped.
    SessClose,
}

/// Responses the server returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Generic success.
    Ok,
    /// Segment metadata (for malloc/connect/info).
    Segment {
        /// Raw segment id.
        seg: u64,
        /// Segment length in bytes.
        len: u64,
        /// Client tag.
        tag: u64,
        /// Base physical address on the server.
        base_addr: u64,
    },
    /// Read payload.
    Data(Vec<u8>),
    /// Vectored read payload: one buffer per requested range, in request
    /// order (answers a [`Request::ReadV`]).
    DataV(Vec<Vec<u8>>),
    /// The server's node name.
    Name(String),
    /// Request refused; human-readable reason.
    Err(String),
    /// Response to a [`Request::Seq`]: `inner` tagged with the request's
    /// sequence number. `Tagged { seq, inner: Ok }` is the pipelined
    /// `Ack{seq}`; `Tagged { seq, inner: Err(_) }` is the typed
    /// `Err{seq}`. Nesting is rejected.
    Tagged {
        /// The sequence number of the request this answers.
        seq: u64,
        /// The wrapped response.
        inner: Box<Response>,
    },
    /// Response to a [`Request::Mux`]: `inner` tagged with the session id
    /// and the session's sequence number, so a client multiplexing many
    /// sessions over one socket can route each acknowledgement. Nesting
    /// is rejected.
    Mux {
        /// The logical session the answered request belonged to.
        session: u64,
        /// The sequence number of the request this answers.
        seq: u64,
        /// The wrapped response.
        inner: Box<Response>,
    },
    /// Typed admission refusal: the server's shared service pool and its
    /// bounded overflow queue are both full, so the request was refused
    /// *without being applied*. Clients surface this as
    /// [`crate::RnError::Overloaded`]; retrying after backoff is safe.
    Overloaded,
}

const OP_MALLOC: u8 = 1;
const OP_FREE: u8 = 2;
const OP_WRITE: u8 = 3;
const OP_READ: u8 = 4;
const OP_CONNECT: u8 = 5;
const OP_INFO: u8 = 6;
const OP_NAME: u8 = 7;
const OP_PING: u8 = 8;
const OP_SHUTDOWN: u8 = 9;
const OP_WRITE_V: u8 = 10;
const OP_SEQ: u8 = 11;
const OP_MUX: u8 = 12;
const OP_SESS_CLOSE: u8 = 13;
const OP_READ_V: u8 = 14;

const RE_OK: u8 = 128;
const RE_SEGMENT: u8 = 129;
const RE_DATA: u8 = 130;
const RE_NAME: u8 = 131;
const RE_ERR: u8 = 132;
const RE_TAGGED: u8 = 133;
const RE_MUX: u8 = 134;
const RE_OVERLOADED: u8 = 135;
const RE_DATA_V: u8 = 136;

/// Computes the IEEE CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64, RnError> {
    let end = *pos + 8;
    let bytes = buf
        .get(*pos..end)
        .ok_or_else(|| RnError::Protocol("truncated integer".into()))?;
    *pos = end;
    Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
}

impl Request {
    /// Serializes the request into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Malloc { len, tag } => {
                out.push(OP_MALLOC);
                put_u64(&mut out, *len);
                put_u64(&mut out, *tag);
            }
            Request::Free { seg } => {
                out.push(OP_FREE);
                put_u64(&mut out, *seg);
            }
            Request::Write { seg, offset, data } => {
                out.push(OP_WRITE);
                put_u64(&mut out, *seg);
                put_u64(&mut out, *offset);
                out.extend_from_slice(data);
            }
            Request::Read { seg, offset, len } => {
                out.push(OP_READ);
                put_u64(&mut out, *seg);
                put_u64(&mut out, *offset);
                put_u64(&mut out, *len);
            }
            Request::Connect { tag } => {
                out.push(OP_CONNECT);
                put_u64(&mut out, *tag);
            }
            Request::Info { seg } => {
                out.push(OP_INFO);
                put_u64(&mut out, *seg);
            }
            Request::WriteV { ranges } => {
                out.push(OP_WRITE_V);
                put_u64(&mut out, ranges.len() as u64);
                for (seg, offset, data) in ranges {
                    put_u64(&mut out, *seg);
                    put_u64(&mut out, *offset);
                    put_u64(&mut out, data.len() as u64);
                    out.extend_from_slice(data);
                }
            }
            Request::ReadV { reads } => {
                out.push(OP_READ_V);
                put_u64(&mut out, reads.len() as u64);
                for (seg, offset, len) in reads {
                    put_u64(&mut out, *seg);
                    put_u64(&mut out, *offset);
                    put_u64(&mut out, *len);
                }
            }
            Request::Name => out.push(OP_NAME),
            Request::Ping => out.push(OP_PING),
            Request::Shutdown => out.push(OP_SHUTDOWN),
            Request::Seq { seq, inner } => {
                out.push(OP_SEQ);
                put_u64(&mut out, *seq);
                out.extend_from_slice(&inner.encode());
            }
            Request::Mux {
                session,
                seq,
                inner,
            } => {
                out.push(OP_MUX);
                put_u64(&mut out, *session);
                put_u64(&mut out, *seq);
                out.extend_from_slice(&inner.encode());
            }
            Request::SessClose => out.push(OP_SESS_CLOSE),
        }
        out
    }

    /// Parses a frame body into a request.
    ///
    /// # Errors
    ///
    /// Returns [`RnError::Protocol`] on malformed input.
    pub fn decode(body: &[u8]) -> Result<Request, RnError> {
        let (&op, rest) = body
            .split_first()
            .ok_or_else(|| RnError::Protocol("empty frame".into()))?;
        let mut pos = 0;
        let req = match op {
            OP_MALLOC => Request::Malloc {
                len: get_u64(rest, &mut pos)?,
                tag: get_u64(rest, &mut pos)?,
            },
            OP_FREE => Request::Free {
                seg: get_u64(rest, &mut pos)?,
            },
            OP_WRITE => {
                let seg = get_u64(rest, &mut pos)?;
                let offset = get_u64(rest, &mut pos)?;
                Request::Write {
                    seg,
                    offset,
                    data: rest[pos..].to_vec(),
                }
            }
            OP_READ => Request::Read {
                seg: get_u64(rest, &mut pos)?,
                offset: get_u64(rest, &mut pos)?,
                len: get_u64(rest, &mut pos)?,
            },
            OP_CONNECT => Request::Connect {
                tag: get_u64(rest, &mut pos)?,
            },
            OP_INFO => Request::Info {
                seg: get_u64(rest, &mut pos)?,
            },
            OP_WRITE_V => {
                let count = get_u64(rest, &mut pos)?;
                // Each range needs at least its 24-byte header; reject
                // counts the frame cannot possibly hold before allocating.
                if count > (rest.len() as u64) / 24 {
                    return Err(RnError::Protocol(format!(
                        "vectored write claims {count} ranges in a {} byte frame",
                        rest.len()
                    )));
                }
                let mut ranges = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let seg = get_u64(rest, &mut pos)?;
                    let offset = get_u64(rest, &mut pos)?;
                    let len = get_u64(rest, &mut pos)? as usize;
                    let end = pos
                        .checked_add(len)
                        .filter(|&e| e <= rest.len())
                        .ok_or_else(|| RnError::Protocol("truncated range data".into()))?;
                    ranges.push((seg, offset, rest[pos..end].to_vec()));
                    pos = end;
                }
                Request::WriteV { ranges }
            }
            OP_READ_V => {
                let count = get_u64(rest, &mut pos)?;
                // Each range is exactly its 24-byte descriptor; reject
                // counts the frame cannot possibly hold before allocating.
                if count > (rest.len() as u64) / 24 {
                    return Err(RnError::Protocol(format!(
                        "vectored read claims {count} ranges in a {} byte frame",
                        rest.len()
                    )));
                }
                let mut reads = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let seg = get_u64(rest, &mut pos)?;
                    let offset = get_u64(rest, &mut pos)?;
                    let len = get_u64(rest, &mut pos)?;
                    reads.push((seg, offset, len));
                }
                Request::ReadV { reads }
            }
            OP_NAME => Request::Name,
            OP_PING => Request::Ping,
            OP_SHUTDOWN => Request::Shutdown,
            OP_SEQ => {
                let seq = get_u64(rest, &mut pos)?;
                let inner = Request::decode(&rest[pos..])?;
                if matches!(inner, Request::Seq { .. } | Request::Mux { .. }) {
                    // Depth one only: unbounded nesting would let a
                    // hostile frame recurse the decoder off the stack.
                    return Err(RnError::Protocol("nested seq frame".into()));
                }
                Request::Seq {
                    seq,
                    inner: Box::new(inner),
                }
            }
            OP_MUX => {
                let session = get_u64(rest, &mut pos)?;
                let seq = get_u64(rest, &mut pos)?;
                let inner = Request::decode(&rest[pos..])?;
                if matches!(inner, Request::Seq { .. } | Request::Mux { .. }) {
                    return Err(RnError::Protocol("nested mux frame".into()));
                }
                Request::Mux {
                    session,
                    seq,
                    inner: Box::new(inner),
                }
            }
            OP_SESS_CLOSE => Request::SessClose,
            other => return Err(RnError::Protocol(format!("unknown opcode {other}"))),
        };
        Ok(req)
    }
}

/// Encodes a `Write` request body straight from a borrowed payload —
/// the frame body is built in one allocation with one copy of `data`,
/// instead of the copy-into-`Vec`-then-copy-into-frame of constructing
/// a [`Request::Write`]. With `seq`, the body is the [`Request::Seq`]
/// wrapping of the write.
pub fn encode_write(seq: Option<u64>, seg: u64, offset: u64, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + 34);
    if let Some(s) = seq {
        out.push(OP_SEQ);
        put_u64(&mut out, s);
    }
    out.push(OP_WRITE);
    put_u64(&mut out, seg);
    put_u64(&mut out, offset);
    out.extend_from_slice(data);
    out
}

/// Encodes a `WriteV` request body straight from borrowed ranges (see
/// [`encode_write`]): one allocation, one copy per range.
pub fn encode_write_v(seq: Option<u64>, ranges: &[(u64, u64, &[u8])]) -> Vec<u8> {
    let payload: usize = ranges.iter().map(|(_, _, d)| d.len()).sum();
    let mut out = Vec::with_capacity(payload + 24 * ranges.len() + 18);
    if let Some(s) = seq {
        out.push(OP_SEQ);
        put_u64(&mut out, s);
    }
    out.push(OP_WRITE_V);
    put_u64(&mut out, ranges.len() as u64);
    for &(seg, offset, data) in ranges {
        put_u64(&mut out, seg);
        put_u64(&mut out, offset);
        put_u64(&mut out, data.len() as u64);
        out.extend_from_slice(data);
    }
    out
}

/// Encodes `req` wrapped in a [`Request::Seq`] body without cloning the
/// request.
pub fn encode_seq(seq: u64, req: &Request) -> Vec<u8> {
    let inner = req.encode();
    let mut out = Vec::with_capacity(inner.len() + 9);
    out.push(OP_SEQ);
    put_u64(&mut out, seq);
    out.extend_from_slice(&inner);
    out
}

/// Encodes `req` wrapped in a [`Request::Mux`] body without cloning the
/// request.
pub fn encode_mux(session: u64, seq: u64, req: &Request) -> Vec<u8> {
    let inner = req.encode();
    let mut out = Vec::with_capacity(inner.len() + 17);
    out.push(OP_MUX);
    put_u64(&mut out, session);
    put_u64(&mut out, seq);
    out.extend_from_slice(&inner);
    out
}

/// Encodes a session-wrapped `Write` body straight from a borrowed
/// payload (the [`Request::Mux`] counterpart of [`encode_write`]): one
/// allocation, one copy of `data`.
pub fn encode_write_mux(session: u64, seq: u64, seg: u64, offset: u64, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + 42);
    out.push(OP_MUX);
    put_u64(&mut out, session);
    put_u64(&mut out, seq);
    out.push(OP_WRITE);
    put_u64(&mut out, seg);
    put_u64(&mut out, offset);
    out.extend_from_slice(data);
    out
}

/// Encodes a session-wrapped `WriteV` body straight from borrowed ranges
/// (the [`Request::Mux`] counterpart of [`encode_write_v`]).
pub fn encode_write_v_mux(session: u64, seq: u64, ranges: &[(u64, u64, &[u8])]) -> Vec<u8> {
    let payload: usize = ranges.iter().map(|(_, _, d)| d.len()).sum();
    let mut out = Vec::with_capacity(payload + 24 * ranges.len() + 26);
    out.push(OP_MUX);
    put_u64(&mut out, session);
    put_u64(&mut out, seq);
    out.push(OP_WRITE_V);
    put_u64(&mut out, ranges.len() as u64);
    for &(seg, offset, data) in ranges {
        put_u64(&mut out, seg);
        put_u64(&mut out, offset);
        put_u64(&mut out, data.len() as u64);
        out.extend_from_slice(data);
    }
    out
}

impl Response {
    /// Serializes the response into a frame body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Ok => out.push(RE_OK),
            Response::Segment {
                seg,
                len,
                tag,
                base_addr,
            } => {
                out.push(RE_SEGMENT);
                put_u64(&mut out, *seg);
                put_u64(&mut out, *len);
                put_u64(&mut out, *tag);
                put_u64(&mut out, *base_addr);
            }
            Response::Data(d) => {
                out.push(RE_DATA);
                out.extend_from_slice(d);
            }
            Response::DataV(bufs) => {
                out.push(RE_DATA_V);
                put_u64(&mut out, bufs.len() as u64);
                for b in bufs {
                    put_u64(&mut out, b.len() as u64);
                    out.extend_from_slice(b);
                }
            }
            Response::Name(n) => {
                out.push(RE_NAME);
                out.extend_from_slice(n.as_bytes());
            }
            Response::Err(m) => {
                out.push(RE_ERR);
                out.extend_from_slice(m.as_bytes());
            }
            Response::Tagged { seq, inner } => {
                out.push(RE_TAGGED);
                put_u64(&mut out, *seq);
                out.extend_from_slice(&inner.encode());
            }
            Response::Mux {
                session,
                seq,
                inner,
            } => {
                out.push(RE_MUX);
                put_u64(&mut out, *session);
                put_u64(&mut out, *seq);
                out.extend_from_slice(&inner.encode());
            }
            Response::Overloaded => out.push(RE_OVERLOADED),
        }
        out
    }

    /// Parses a frame body into a response.
    ///
    /// # Errors
    ///
    /// Returns [`RnError::Protocol`] on malformed input.
    pub fn decode(body: &[u8]) -> Result<Response, RnError> {
        let (&op, rest) = body
            .split_first()
            .ok_or_else(|| RnError::Protocol("empty frame".into()))?;
        let mut pos = 0;
        let resp = match op {
            RE_OK => Response::Ok,
            RE_SEGMENT => Response::Segment {
                seg: get_u64(rest, &mut pos)?,
                len: get_u64(rest, &mut pos)?,
                tag: get_u64(rest, &mut pos)?,
                base_addr: get_u64(rest, &mut pos)?,
            },
            RE_DATA => Response::Data(rest.to_vec()),
            RE_DATA_V => {
                let count = get_u64(rest, &mut pos)?;
                // Each buffer needs at least its 8-byte length prefix.
                if count > (rest.len() as u64) / 8 {
                    return Err(RnError::Protocol(format!(
                        "vectored data claims {count} buffers in a {} byte frame",
                        rest.len()
                    )));
                }
                let mut bufs = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let len = get_u64(rest, &mut pos)? as usize;
                    let end = pos
                        .checked_add(len)
                        .filter(|&e| e <= rest.len())
                        .ok_or_else(|| RnError::Protocol("truncated buffer data".into()))?;
                    bufs.push(rest[pos..end].to_vec());
                    pos = end;
                }
                Response::DataV(bufs)
            }
            RE_NAME => Response::Name(
                String::from_utf8(rest.to_vec())
                    .map_err(|_| RnError::Protocol("name not UTF-8".into()))?,
            ),
            RE_ERR => Response::Err(
                String::from_utf8(rest.to_vec())
                    .map_err(|_| RnError::Protocol("error message not UTF-8".into()))?,
            ),
            RE_TAGGED => {
                let seq = get_u64(rest, &mut pos)?;
                let inner = Response::decode(&rest[pos..])?;
                if matches!(inner, Response::Tagged { .. } | Response::Mux { .. }) {
                    return Err(RnError::Protocol("nested tagged response".into()));
                }
                Response::Tagged {
                    seq,
                    inner: Box::new(inner),
                }
            }
            RE_MUX => {
                let session = get_u64(rest, &mut pos)?;
                let seq = get_u64(rest, &mut pos)?;
                let inner = Response::decode(&rest[pos..])?;
                if matches!(inner, Response::Tagged { .. } | Response::Mux { .. }) {
                    return Err(RnError::Protocol("nested mux response".into()));
                }
                Response::Mux {
                    session,
                    seq,
                    inner: Box::new(inner),
                }
            }
            RE_OVERLOADED => Response::Overloaded,
            other => return Err(RnError::Protocol(format!("unknown response tag {other}"))),
        };
        Ok(resp)
    }
}

/// Writes one frame (length prefix + body + CRC).
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> Result<(), RnError> {
    let len = body.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(body)?;
    w.write_all(&crc32(body).to_le_bytes())?;
    w.flush()?;
    Ok(())
}

/// The full wire encoding of one frame (length prefix + body + CRC) as a
/// single buffer. The event-driven server builds these up front so it can
/// write them incrementally as the socket drains.
pub fn frame_bytes(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 8);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out
}

/// Reads one frame, verifying length bounds and CRC.
///
/// # Errors
///
/// Returns [`RnError::Protocol`] on oversized frames or CRC mismatch, and
/// propagates socket errors.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, RnError> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(RnError::Protocol(format!("frame of {len} bytes too large")));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let mut crc_buf = [0u8; 4];
    r.read_exact(&mut crc_buf)?;
    if u32::from_le_bytes(crc_buf) != crc32(&body) {
        return Err(RnError::Protocol("CRC mismatch".into()));
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The canonical check value for IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn request_roundtrips() {
        let reqs = [
            Request::Malloc { len: 10, tag: 3 },
            Request::Free { seg: 7 },
            Request::Write {
                seg: 1,
                offset: 5,
                data: vec![1, 2, 3],
            },
            Request::Read {
                seg: 2,
                offset: 0,
                len: 9,
            },
            Request::Connect { tag: 11 },
            Request::Info { seg: 4 },
            Request::Name,
            Request::Ping,
            Request::Shutdown,
        ];
        for r in reqs {
            assert_eq!(Request::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn response_roundtrips() {
        let resps = [
            Response::Ok,
            Response::Segment {
                seg: 1,
                len: 2,
                tag: 3,
                base_addr: 64,
            },
            Response::Data(vec![9; 100]),
            Response::Name("node".into()),
            Response::Err("nope".into()),
        ];
        for r in resps {
            assert_eq!(Response::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn empty_write_data_roundtrips() {
        let r = Request::Write {
            seg: 1,
            offset: 0,
            data: vec![],
        };
        assert_eq!(Request::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn vectored_write_roundtrips() {
        let reqs = [
            Request::WriteV { ranges: vec![] },
            Request::WriteV {
                ranges: vec![(1, 0, vec![9; 3])],
            },
            Request::WriteV {
                ranges: vec![(1, 0, vec![1, 2]), (2, 64, vec![]), (1, 128, vec![3; 100])],
            },
        ];
        for r in reqs {
            assert_eq!(Request::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn vectored_write_rejects_lying_lengths() {
        // Claimed range count larger than the frame can hold.
        let mut body = vec![OP_WRITE_V];
        body.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(Request::decode(&body).is_err());

        // Range data length pointing past the end of the frame.
        let mut body = vec![OP_WRITE_V];
        body.extend_from_slice(&1u64.to_le_bytes()); // one range
        body.extend_from_slice(&1u64.to_le_bytes()); // seg
        body.extend_from_slice(&0u64.to_le_bytes()); // offset
        body.extend_from_slice(&100u64.to_le_bytes()); // len, but no data
        assert!(Request::decode(&body).is_err());
    }

    #[test]
    fn vectored_read_roundtrips() {
        let reqs = [
            Request::ReadV { reads: vec![] },
            Request::ReadV {
                reads: vec![(1, 0, 8)],
            },
            Request::ReadV {
                reads: vec![(1, 0, 2), (2, 64, 0), (7, 4096, 512)],
            },
        ];
        for r in reqs {
            assert_eq!(Request::decode(&r.encode()).unwrap(), r);
        }

        let resps = [
            Response::DataV(vec![]),
            Response::DataV(vec![vec![1, 2, 3]]),
            Response::DataV(vec![vec![9; 100], vec![], vec![0, 1]]),
        ];
        for r in resps {
            assert_eq!(Response::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn vectored_read_rejects_lying_lengths() {
        // Claimed range count larger than the frame can hold.
        let mut body = vec![OP_READ_V];
        body.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(Request::decode(&body).is_err());

        // Claimed buffer count larger than the frame can hold.
        let mut body = vec![RE_DATA_V];
        body.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(Response::decode(&body).is_err());

        // Buffer length pointing past the end of the frame.
        let mut body = vec![RE_DATA_V];
        body.extend_from_slice(&1u64.to_le_bytes()); // one buffer
        body.extend_from_slice(&100u64.to_le_bytes()); // len, but no data
        assert!(Response::decode(&body).is_err());
    }

    #[test]
    fn seq_and_tagged_roundtrip() {
        let reqs = [
            Request::Seq {
                seq: 0,
                inner: Box::new(Request::Ping),
            },
            Request::Seq {
                seq: u64::MAX,
                inner: Box::new(Request::Write {
                    seg: 3,
                    offset: 9,
                    data: vec![7; 40],
                }),
            },
            Request::Seq {
                seq: 17,
                inner: Box::new(Request::WriteV {
                    ranges: vec![(1, 0, vec![1, 2]), (2, 8, vec![])],
                }),
            },
        ];
        for r in reqs {
            assert_eq!(Request::decode(&r.encode()).unwrap(), r);
        }
        let resps = [
            Response::Tagged {
                seq: 5,
                inner: Box::new(Response::Ok),
            },
            Response::Tagged {
                seq: 6,
                inner: Box::new(Response::Err("bounds".into())),
            },
            Response::Tagged {
                seq: 7,
                inner: Box::new(Response::Data(vec![4; 12])),
            },
        ];
        for r in resps {
            assert_eq!(Response::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn mux_frames_roundtrip() {
        let reqs = [
            Request::Mux {
                session: 0,
                seq: 0,
                inner: Box::new(Request::Ping),
            },
            Request::Mux {
                session: u64::MAX,
                seq: 3,
                inner: Box::new(Request::Write {
                    seg: 3,
                    offset: 9,
                    data: vec![7; 40],
                }),
            },
            Request::Mux {
                session: 12,
                seq: 17,
                inner: Box::new(Request::WriteV {
                    ranges: vec![(1, 0, vec![1, 2]), (2, 8, vec![])],
                }),
            },
            Request::Mux {
                session: 5,
                seq: 1,
                inner: Box::new(Request::SessClose),
            },
            Request::SessClose,
        ];
        for r in reqs {
            assert_eq!(Request::decode(&r.encode()).unwrap(), r);
        }
        let resps = [
            Response::Mux {
                session: 5,
                seq: 7,
                inner: Box::new(Response::Ok),
            },
            Response::Mux {
                session: 5,
                seq: 8,
                inner: Box::new(Response::Err("bounds".into())),
            },
            Response::Mux {
                session: 9,
                seq: 0,
                inner: Box::new(Response::Overloaded),
            },
            Response::Overloaded,
        ];
        for r in resps {
            assert_eq!(Response::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn nested_mux_frames_rejected() {
        // Mux in Mux, Seq in Mux, Mux in Seq: all depth violations.
        let mux_ping = Request::Mux {
            session: 1,
            seq: 1,
            inner: Box::new(Request::Ping),
        };
        let seq_ping = Request::Seq {
            seq: 1,
            inner: Box::new(Request::Ping),
        };
        for (outer_session, inner) in [(Some(2), mux_ping.clone()), (Some(2), seq_ping.clone())] {
            let outer = Request::Mux {
                session: outer_session.unwrap(),
                seq: 9,
                inner: Box::new(inner),
            };
            assert!(Request::decode(&outer.encode()).is_err());
        }
        let seq_wrapping_mux = Request::Seq {
            seq: 9,
            inner: Box::new(mux_ping),
        };
        assert!(Request::decode(&seq_wrapping_mux.encode()).is_err());

        let mux_ok = Response::Mux {
            session: 1,
            seq: 1,
            inner: Box::new(Response::Ok),
        };
        let tagged_ok = Response::Tagged {
            seq: 1,
            inner: Box::new(Response::Ok),
        };
        for inner in [mux_ok.clone(), tagged_ok] {
            let outer = Response::Mux {
                session: 2,
                seq: 9,
                inner: Box::new(inner),
            };
            assert!(Response::decode(&outer.encode()).is_err());
        }
        let tagged_wrapping_mux = Response::Tagged {
            seq: 9,
            inner: Box::new(mux_ok),
        };
        assert!(Response::decode(&tagged_wrapping_mux.encode()).is_err());

        // Truncated mux headers.
        assert!(Request::decode(&[OP_MUX, 1, 2, 3]).is_err());
        assert!(Response::decode(&[RE_MUX, 1]).is_err());
        // Mux with an empty inner body.
        let mut body = vec![OP_MUX];
        body.extend_from_slice(&9u64.to_le_bytes());
        body.extend_from_slice(&4u64.to_le_bytes());
        assert!(Request::decode(&body).is_err());
    }

    #[test]
    fn borrowed_mux_encoders_match_the_owned_forms() {
        let data = [5u8; 33];
        assert_eq!(
            encode_write_mux(6, 9, 4, 12, &data),
            Request::Mux {
                session: 6,
                seq: 9,
                inner: Box::new(Request::Write {
                    seg: 4,
                    offset: 12,
                    data: data.to_vec(),
                }),
            }
            .encode()
        );
        let ranges: [(u64, u64, &[u8]); 2] = [(1, 0, &data[..2]), (2, 64, &data[..0])];
        let owned = Request::WriteV {
            ranges: ranges.iter().map(|&(s, o, d)| (s, o, d.to_vec())).collect(),
        };
        assert_eq!(
            encode_write_v_mux(6, 3, &ranges),
            Request::Mux {
                session: 6,
                seq: 3,
                inner: Box::new(owned.clone()),
            }
            .encode()
        );
        assert_eq!(
            encode_mux(6, 8, &owned),
            Request::Mux {
                session: 6,
                seq: 8,
                inner: Box::new(owned),
            }
            .encode()
        );
    }

    #[test]
    fn nested_seq_frames_rejected() {
        let inner = Request::Seq {
            seq: 1,
            inner: Box::new(Request::Ping),
        };
        let outer = Request::Seq {
            seq: 2,
            inner: Box::new(inner),
        };
        assert!(Request::decode(&outer.encode()).is_err());

        let inner = Response::Tagged {
            seq: 1,
            inner: Box::new(Response::Ok),
        };
        let outer = Response::Tagged {
            seq: 2,
            inner: Box::new(inner),
        };
        assert!(Response::decode(&outer.encode()).is_err());

        // Truncated seq header.
        assert!(Request::decode(&[OP_SEQ, 1, 2, 3]).is_err());
        assert!(Response::decode(&[RE_TAGGED, 1]).is_err());
        // Seq with an empty inner body.
        let mut body = vec![OP_SEQ];
        body.extend_from_slice(&9u64.to_le_bytes());
        assert!(Request::decode(&body).is_err());
    }

    #[test]
    fn borrowed_encoders_match_the_owned_forms() {
        let data = [5u8; 33];
        assert_eq!(
            encode_write(None, 4, 12, &data),
            Request::Write {
                seg: 4,
                offset: 12,
                data: data.to_vec(),
            }
            .encode()
        );
        assert_eq!(
            encode_write(Some(9), 4, 12, &data),
            Request::Seq {
                seq: 9,
                inner: Box::new(Request::Write {
                    seg: 4,
                    offset: 12,
                    data: data.to_vec(),
                }),
            }
            .encode()
        );
        let ranges: [(u64, u64, &[u8]); 2] = [(1, 0, &data[..2]), (2, 64, &data[..0])];
        let owned = Request::WriteV {
            ranges: ranges.iter().map(|&(s, o, d)| (s, o, d.to_vec())).collect(),
        };
        assert_eq!(encode_write_v(None, &ranges), owned.encode());
        assert_eq!(
            encode_write_v(Some(3), &ranges),
            Request::Seq {
                seq: 3,
                inner: Box::new(owned.clone()),
            }
            .encode()
        );
        assert_eq!(
            encode_seq(8, &owned),
            Request::Seq {
                seq: 8,
                inner: Box::new(owned),
            }
            .encode()
        );
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[255]).is_err());
        assert!(Response::decode(&[0]).is_err());
        // Truncated integer payload.
        assert!(Request::decode(&[OP_MALLOC, 1, 2]).is_err());
    }

    #[test]
    fn frames_roundtrip_and_detect_corruption() {
        let body = Request::Ping.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).unwrap();
        let got = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(got, body);

        // Flip a payload bit: CRC must catch it.
        let mut bad = wire.clone();
        bad[4] ^= 0x01;
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(RnError::Protocol(_))
        ));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(matches!(
            read_frame(&mut wire.as_slice()),
            Err(RnError::Protocol(_))
        ));
    }
}
