//! The simulated SCI backend.

use perseas_sci::{NodeMemory, SciLink, SciParams, SegmentId};
use perseas_simtime::SimClock;

use crate::{RemoteMemory, RemoteSegment, RnError};

/// A [`RemoteMemory`] backed by the simulated PCI-SCI link.
///
/// All latencies are charged to the link's virtual clock; all bytes really
/// land in the remote [`NodeMemory`], which survives local crashes.
///
/// # Examples
///
/// ```
/// use perseas_rnram::{RemoteMemory, SimRemote};
///
/// # fn main() -> Result<(), perseas_rnram::RnError> {
/// let mut r = SimRemote::new("mirror");
/// let seg = r.remote_malloc(64, 1)?;
/// r.remote_write(seg.id, 0, &[1, 2, 3])?;
/// assert!(r.clock().now().as_nanos() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimRemote {
    link: SciLink,
}

impl SimRemote {
    /// Creates a fresh remote node named `name` with its own clock and the
    /// default 1998 timing parameters.
    pub fn new(name: impl Into<String>) -> Self {
        SimRemote::with_parts(
            SimClock::new(),
            NodeMemory::new(name),
            SciParams::dolphin_1998(),
        )
    }

    /// Creates a backend over an existing clock, node, and parameter set —
    /// the form used by experiments that share one virtual timeline between
    /// several components.
    pub fn with_parts(clock: SimClock, node: NodeMemory, params: SciParams) -> Self {
        SimRemote {
            link: SciLink::new(clock, node, params),
        }
    }

    /// Wraps an existing link.
    pub fn from_link(link: SciLink) -> Self {
        SimRemote { link }
    }

    /// The underlying link (for stats and fault injection).
    pub fn link(&self) -> &SciLink {
        &self.link
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &SimClock {
        self.link.clock()
    }

    /// The remote node's memory (survives local crashes; crash it to model
    /// mirror failure).
    pub fn node(&self) -> &NodeMemory {
        self.link.node()
    }
}

impl RemoteMemory for SimRemote {
    fn remote_malloc(&mut self, len: usize, tag: u64) -> Result<RemoteSegment, RnError> {
        let id = self.link.node().export_segment(len, tag)?;
        Ok(self.link.node().segment_info(id)?.into())
    }

    fn remote_free(&mut self, seg: SegmentId) -> Result<(), RnError> {
        Ok(self.link.node().free_segment(seg)?)
    }

    fn remote_write(&mut self, seg: SegmentId, offset: usize, data: &[u8]) -> Result<(), RnError> {
        Ok(self.link.remote_write(seg, offset, data)?)
    }

    fn remote_write_v(&mut self, writes: &[(SegmentId, usize, &[u8])]) -> Result<(), RnError> {
        Ok(self.link.remote_write_v(writes)?)
    }

    fn virtual_clock(&self) -> Option<SimClock> {
        Some(self.link.clock().clone())
    }

    /// The simulated SCI mapping confirms every copy inline (the card
    /// stalls the store until the packet is acked), so the barrier is an
    /// explicit no-op: zero posted operations, zero virtual time — the
    /// paper's virtual-time figures are unchanged by barrier placement.
    fn flush(&mut self) -> Result<crate::FlushStats, RnError> {
        Ok(crate::FlushStats::default())
    }

    fn in_flight(&self) -> usize {
        0
    }

    fn remote_read(
        &mut self,
        seg: SegmentId,
        offset: usize,
        buf: &mut [u8],
    ) -> Result<(), RnError> {
        Ok(self.link.remote_read(seg, offset, buf)?)
    }

    fn connect_segment(&mut self, tag: u64) -> Result<RemoteSegment, RnError> {
        self.link
            .node()
            .find_by_tag(tag)
            .map(RemoteSegment::from)
            .ok_or(RnError::TagNotFound(tag))
    }

    fn segment_info(&mut self, seg: SegmentId) -> Result<RemoteSegment, RnError> {
        Ok(self.link.node().segment_info(seg)?.into())
    }

    fn node_name(&self) -> String {
        self.link.node().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perseas_sci::SciError;

    #[test]
    fn malloc_write_read_roundtrip() {
        let mut r = SimRemote::new("m");
        let seg = r.remote_malloc(32, 0).unwrap();
        assert_eq!(seg.len, 32);
        r.remote_write(seg.id, 8, &[4, 5]).unwrap();
        let mut buf = [0u8; 2];
        r.remote_read(seg.id, 8, &mut buf).unwrap();
        assert_eq!(buf, [4, 5]);
    }

    #[test]
    fn free_then_use_fails() {
        let mut r = SimRemote::new("m");
        let seg = r.remote_malloc(8, 0).unwrap();
        r.remote_free(seg.id).unwrap();
        assert!(matches!(
            r.remote_write(seg.id, 0, &[1]),
            Err(RnError::Sci(SciError::SegmentNotFound(_)))
        ));
    }

    #[test]
    fn connect_by_tag_after_losing_handles() {
        let mut r = SimRemote::new("m");
        let seg = r.remote_malloc(16, 77).unwrap();
        r.remote_write(seg.id, 0, b"persist").unwrap();
        // "Crash": drop every local handle, keep only the backend.
        let found = r.connect_segment(77).unwrap();
        assert_eq!(found.id, seg.id);
        assert_eq!(found.len, 16);
        assert!(matches!(
            r.connect_segment(123),
            Err(RnError::TagNotFound(123))
        ));
    }

    #[test]
    fn writes_cost_virtual_time() {
        let mut r = SimRemote::new("m");
        let seg = r.remote_malloc(64, 0).unwrap();
        let t0 = r.clock().now();
        r.remote_write(seg.id, 0, &[0; 64]).unwrap();
        assert!(r.clock().now() > t0);
    }

    #[test]
    fn vectored_write_is_one_link_message() {
        let mut r = SimRemote::new("m");
        let seg = r.remote_malloc(256, 0).unwrap();
        r.remote_write_v(&[(seg.id, 0, &[1; 64]), (seg.id, 128, &[2; 64])])
            .unwrap();
        assert_eq!(r.link().stats().writes, 1);
        let mut buf = [0u8; 64];
        r.remote_read(seg.id, 128, &mut buf).unwrap();
        assert_eq!(buf, [2; 64]);
        assert!(r.virtual_clock().is_some());
        assert!(
            r.virtual_clock().unwrap().same_clock(r.clock()),
            "reports the link's own clock"
        );
    }

    #[test]
    fn node_name_matches() {
        let r = SimRemote::new("backup-7");
        assert_eq!(r.node_name(), "backup-7");
    }

    #[test]
    fn segment_info_reports_geometry() {
        let mut r = SimRemote::new("m");
        let seg = r.remote_malloc(100, 3).unwrap();
        let info = r.segment_info(seg.id).unwrap();
        assert_eq!(info, seg);
        assert_eq!(info.base_addr % 64, 0);
    }
}
