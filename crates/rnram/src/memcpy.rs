//! The paper's optimised `sci_memcpy` (Section 4).
//!
//! Experiments with the PCI-SCI card showed that for copies of 32 bytes or
//! more it is cheaper to copy whole 64-byte regions aligned on 64-byte
//! boundaries: the card then transmits full 64-byte packets and store
//! gathering / buffer streaming work at their best. Copies of 16 bytes or
//! less are performed as-is (one or two 16-byte packets). Copies of 17–32
//! bytes are widened to an aligned 64-byte region *unless* the range
//! already touches the sixteenth (last) word of a buffer, which the card
//! flushes eagerly.
//!
//! Widening is only sound when the caller holds a byte-exact local image of
//! the whole segment (true for every PERSEAS mirror: the remote copy always
//! equals the local copy outside the range being updated). [`mirror_copy`]
//! encapsulates that pattern.

use perseas_sci::BUFFER_SIZE;

use crate::{RemoteMemory, RnError, SegmentId};

/// How a logical copy is actually issued to the card.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferStrategy {
    /// Issue the store exactly as requested.
    AsIs,
    /// Widen the store to whole 64-byte aligned chunks.
    Aligned,
}

/// The store actually issued for a logical `(offset, len)` update.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferPlan {
    /// Chosen strategy.
    pub strategy: TransferStrategy,
    /// Offset (within the segment) of the issued store.
    pub offset: usize,
    /// Length of the issued store.
    pub len: usize,
}

/// Returns `true` if the physical range `[start, start+len)` includes the
/// last word (word 15) of some SCI buffer.
fn touches_last_word(start: u64, len: usize) -> bool {
    let end = start + len as u64;
    let mut chunk_base = start & !(BUFFER_SIZE as u64 - 1);
    while chunk_base < end {
        let last_word_start = chunk_base + 60;
        let last_word_end = chunk_base + 64;
        if start < last_word_end && end > last_word_start {
            return true;
        }
        chunk_base += BUFFER_SIZE as u64;
    }
    false
}

/// Computes the store that `sci_memcpy` issues for a logical update of
/// `len` bytes at `offset` within a segment of `seg_len` bytes based at
/// physical address `base_addr`.
///
/// # Examples
///
/// ```
/// use perseas_rnram::{plan_transfer, TransferStrategy};
///
/// // A 100-byte update in the middle of a segment is widened to cover
/// // whole 64-byte chunks.
/// let plan = plan_transfer(0, 70, 100, 4096);
/// assert_eq!(plan.strategy, TransferStrategy::Aligned);
/// assert_eq!(plan.offset, 64);
/// assert_eq!(plan.len, 128);
///
/// // A 4-byte update goes out as-is.
/// let plan = plan_transfer(0, 70, 4, 4096);
/// assert_eq!(plan.strategy, TransferStrategy::AsIs);
/// ```
///
/// # Panics
///
/// Panics if the logical range exceeds the segment.
pub fn plan_transfer(base_addr: u64, offset: usize, len: usize, seg_len: usize) -> TransferPlan {
    assert!(
        offset.checked_add(len).is_some_and(|e| e <= seg_len),
        "range [{offset}, {offset}+{len}) out of segment of length {seg_len}"
    );
    let phys_start = base_addr + offset as u64;

    let as_is = TransferPlan {
        strategy: TransferStrategy::AsIs,
        offset,
        len,
    };
    if len <= 16 {
        return as_is;
    }
    if len <= 32 && touches_last_word(phys_start, len) {
        // The sixteenth word of a buffer is written: the card flushes
        // eagerly, so the unwidened store is already efficient.
        return as_is;
    }

    // Widen to whole 64-byte chunks, clamped to the segment.
    let phys_end = phys_start + len as u64;
    let aligned_start = phys_start & !(BUFFER_SIZE as u64 - 1);
    let aligned_end = (phys_end + BUFFER_SIZE as u64 - 1) & !(BUFFER_SIZE as u64 - 1);
    let new_offset = aligned_start.saturating_sub(base_addr) as usize;
    let new_end = ((aligned_end - base_addr) as usize).min(seg_len);
    TransferPlan {
        strategy: TransferStrategy::Aligned,
        offset: new_offset,
        len: new_end - new_offset,
    }
}

/// Pushes the logical update `[offset, offset+len)` of a mirrored segment
/// to the remote node using the optimised transfer plan.
///
/// `local` must be the byte-exact local image of the **whole** segment:
/// when the plan widens the store, the extra bytes are sourced from
/// `local`, which is correct precisely because mirror and local image agree
/// outside the updated range.
///
/// Returns the plan that was used.
///
/// # Errors
///
/// Propagates remote-write failures.
///
/// # Panics
///
/// Panics if `local` is shorter than the segment range implied by the plan
/// or if the logical range is out of bounds.
pub fn mirror_copy<M: RemoteMemory + ?Sized>(
    remote: &mut M,
    seg: SegmentId,
    base_addr: u64,
    local: &[u8],
    offset: usize,
    len: usize,
) -> Result<TransferPlan, RnError> {
    let plan = plan_transfer(base_addr, offset, len, local.len());
    remote.remote_write(
        seg,
        plan.offset,
        &local[plan.offset..plan.offset + plan.len],
    )?;
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRemote;

    #[test]
    fn small_stores_go_as_is() {
        for len in [1, 4, 8, 15, 16] {
            let p = plan_transfer(0, 100, len, 4096);
            assert_eq!(p.strategy, TransferStrategy::AsIs, "len={len}");
            assert_eq!((p.offset, p.len), (100, len));
        }
    }

    #[test]
    fn large_stores_are_widened_to_chunks() {
        let p = plan_transfer(0, 100, 33, 4096);
        assert_eq!(p.strategy, TransferStrategy::Aligned);
        assert_eq!(p.offset % 64, 0);
        assert_eq!(p.len % 64, 0);
        assert!(p.offset <= 100 && p.offset + p.len >= 133);
    }

    #[test]
    fn midsize_touching_last_word_stays_as_is() {
        // Offset 50, len 20 covers bytes 50..70: includes bytes 60..64,
        // the last word of chunk 0.
        let p = plan_transfer(0, 50, 20, 4096);
        assert_eq!(p.strategy, TransferStrategy::AsIs);
    }

    #[test]
    fn midsize_not_touching_last_word_is_widened() {
        // Offset 4, len 20 covers bytes 4..24 of chunk 0: no last word.
        let p = plan_transfer(0, 4, 20, 4096);
        assert_eq!(p.strategy, TransferStrategy::Aligned);
        assert_eq!((p.offset, p.len), (0, 64));
    }

    #[test]
    fn widening_clamps_to_segment_end() {
        let p = plan_transfer(0, 100 - 40, 40, 100);
        assert_eq!(p.strategy, TransferStrategy::Aligned);
        assert_eq!(p.offset, 0);
        assert_eq!(p.offset + p.len, 100);
    }

    #[test]
    fn unaligned_base_is_respected() {
        // Physical base 64-aligned segments are the norm, but the plan must
        // be correct for any base.
        let p = plan_transfer(64, 10, 100, 4096);
        // Physical range 74..174 -> aligned 64..192 -> offsets 0..128.
        assert_eq!((p.offset, p.len), (0, 128));
    }

    #[test]
    #[should_panic(expected = "out of segment")]
    fn out_of_range_panics() {
        let _ = plan_transfer(0, 90, 20, 100);
    }

    #[test]
    fn touches_last_word_detection() {
        assert!(touches_last_word(60, 4));
        assert!(touches_last_word(56, 8));
        assert!(!touches_last_word(0, 60));
        assert!(touches_last_word(0, 61));
        assert!(touches_last_word(30, 100)); // spans chunk 0's last word
        assert!(!touches_last_word(64, 16));
    }

    #[test]
    fn mirror_copy_preserves_byte_equality() {
        let mut remote = SimRemote::new("m");
        let seg = remote.remote_malloc(256, 0).unwrap();
        let mut local = vec![0u8; 256];
        // Establish the mirror.
        remote.remote_write(seg.id, 0, &local).unwrap();

        // Update bytes 70..170 locally, then mirror-copy only that range.
        for (i, b) in local.iter_mut().enumerate().take(170).skip(70) {
            *b = i as u8;
        }
        let plan = mirror_copy(&mut remote, seg.id, seg.base_addr, &local, 70, 100).unwrap();
        assert_eq!(plan.strategy, TransferStrategy::Aligned);

        let mut got = vec![0u8; 256];
        remote.remote_read(seg.id, 0, &mut got).unwrap();
        assert_eq!(got, local);
    }

    #[test]
    fn mirror_copy_small_update() {
        let mut remote = SimRemote::new("m");
        let seg = remote.remote_malloc(64, 0).unwrap();
        let mut local = vec![0u8; 64];
        remote.remote_write(seg.id, 0, &local).unwrap();
        local[10] = 9;
        let plan = mirror_copy(&mut remote, seg.id, seg.base_addr, &local, 10, 1).unwrap();
        assert_eq!(plan.strategy, TransferStrategy::AsIs);
        let mut got = vec![0u8; 64];
        remote.remote_read(seg.id, 0, &mut got).unwrap();
        assert_eq!(got, local);
    }
}
