//! The network-RAM server: the process that *exports* its memory.
//!
//! The paper's server process "runs in the remote node and is responsible
//! for accepting requests (remote malloc and free) and manipulating its
//! main memory (exporting physical memory segments and freeing them when
//! necessary)". This module is the TCP incarnation of that process; segment
//! bookkeeping is shared with the simulated backend through
//! [`NodeMemory`].

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use perseas_sci::{NodeMemory, SciError, SegmentId};

use crate::metrics::ServerMetrics;
use crate::protocol::{read_frame, write_frame, Request, Response, MAX_FRAME};
use crate::RnError;

/// A running network-RAM server.
///
/// Dropping the handle keeps the server running until the process exits;
/// call [`ServerHandle::shutdown`] for an orderly stop.
///
/// # Examples
///
/// ```
/// use perseas_rnram::{server::Server, RemoteMemory, TcpRemote};
///
/// # fn main() -> Result<(), perseas_rnram::RnError> {
/// let server = Server::bind("mirror", "127.0.0.1:0")?.start();
/// let mut client = TcpRemote::connect(server.addr())?;
/// let seg = client.remote_malloc(64, 1)?;
/// client.remote_write(seg.id, 0, b"over the wire")?;
/// server.shutdown();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Server {
    node: NodeMemory,
    listener: TcpListener,
    addr: SocketAddr,
    latency: Duration,
    metrics: Option<Arc<ServerMetrics>>,
}

/// Handle to a server running on background threads.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    node: NodeMemory,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds a server named `name` to `addr` (use port 0 for an ephemeral
    /// port).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(name: impl Into<String>, addr: impl ToSocketAddrs) -> Result<Server, RnError> {
        Server::with_node(NodeMemory::new(name), addr)
    }

    /// Binds a server exporting an existing [`NodeMemory`] — lets tests and
    /// the availability example pre-populate or share the exported memory.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn with_node(node: NodeMemory, addr: impl ToSocketAddrs) -> Result<Server, RnError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            node,
            listener,
            addr,
            latency: Duration::ZERO,
            metrics: None,
        })
    }

    /// Installs metrics: per-opcode request counts and service latency,
    /// frame bytes in/out, and connection churn are registered in
    /// `registry` (see `docs/OBSERVABILITY.md` for the names). Without
    /// this call the request loop pays one `Option` branch per frame.
    pub fn with_metrics(mut self, registry: &perseas_obs::Registry) -> Server {
        self.metrics = Some(Arc::new(ServerMetrics::new(registry)));
        self
    }

    /// Injects `latency` between receiving each request and sending its
    /// response, modelling network round-trip time for deterministic
    /// benchmarking. The request is *applied* to memory immediately on
    /// receipt — only its acknowledgement is delayed — so delays of
    /// pipelined requests overlap the way propagation delay does on a
    /// real link, while a synchronous client pays `latency` per
    /// operation.
    pub fn with_request_latency(mut self, latency: Duration) -> Server {
        self.latency = latency;
        self
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The exported memory.
    pub fn node(&self) -> &NodeMemory {
        &self.node
    }

    /// Starts accepting connections on background threads (one per client,
    /// mirroring the paper's blocking request/response model).
    pub fn start(self) -> ServerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let node = self.node.clone();
        let listener = self.listener;
        let addr = self.addr;
        let latency = self.latency;
        let metrics = self.metrics.clone();
        let stop2 = stop.clone();
        let accept_thread = thread::spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        let node = node.clone();
                        let stop = stop2.clone();
                        let metrics = metrics.clone();
                        thread::spawn(move || {
                            let _ = serve_connection(stream, &node, &stop, latency, metrics);
                        });
                    }
                    Err(_) => break,
                }
            }
        });
        ServerHandle {
            addr,
            node: self.node,
            stop,
            accept_thread: Some(accept_thread),
        }
    }
}

impl ServerHandle {
    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The exported memory (inspectable from tests).
    pub fn node(&self) -> &NodeMemory {
        &self.node
    }

    /// Stops accepting connections and joins the accept thread. Established
    /// connections finish their current request.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn sci_error_msg(e: &SciError) -> String {
    e.to_string()
}

/// Serves one client connection until EOF or shutdown.
///
/// With a zero `latency` every response is written inline. With a nonzero
/// `latency` the request is still applied to memory immediately, but the
/// encoded response is handed to a dedicated writer thread that holds it
/// until `receipt + latency` — a propagation delay, not a service time, so
/// the delays of pipelined requests overlap while a synchronous client
/// pays the full latency once per operation. The single writer thread
/// preserves response FIFO order (deadlines are monotone in receipt time).
fn serve_connection(
    mut stream: TcpStream,
    node: &NodeMemory,
    stop: &AtomicBool,
    latency: Duration,
    metrics: Option<Arc<ServerMetrics>>,
) -> Result<(), RnError> {
    stream.set_nodelay(true)?;
    if let Some(m) = metrics.as_deref() {
        m.connections_total.inc();
        m.connections.add(1);
    }
    let mut delayed: Option<DelayedWriter> = if latency > Duration::ZERO {
        Some(DelayedWriter::spawn(stream.try_clone()?))
    } else {
        None
    };
    let result = loop {
        let body = match read_frame(&mut stream) {
            Ok(b) => b,
            Err(RnError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof => break Ok(()),
            Err(e) => break Err(e),
        };
        let received = Instant::now();
        // A request that arrives after shutdown is not a "current request":
        // drop the connection so clients see the server as down instead of
        // racing one last answer out of a dying handler.
        if stop.load(Ordering::SeqCst) {
            break Ok(());
        }
        let decoded = Request::decode(&body);
        let op = decoded.as_ref().map_or("decode_error", op_name);
        let resp = match decoded {
            Err(e) => Response::Err(e.to_string()),
            Ok(req) => handle_request(req, node, stop),
        };
        let frame = resp.encode();
        if let Some(m) = metrics.as_deref() {
            m.bytes_in.add(body.len() as u64);
            m.bytes_out.add(frame.len() as u64);
            let op = m.op(op);
            op.requests.inc();
            op.latency.record_wall(received.elapsed());
        }
        match &delayed {
            Some(writer) => {
                if writer.send(received + latency, frame).is_err() {
                    // Writer thread died (peer hung up mid-write).
                    break Ok(());
                }
            }
            None => {
                if let Err(e) = write_frame(&mut stream, &frame) {
                    break Err(e);
                }
            }
        }
        if stop.load(Ordering::SeqCst) {
            break Ok(());
        }
    };
    if let Some(writer) = delayed.take() {
        writer.finish();
    }
    if let Some(m) = metrics.as_deref() {
        m.connections.add(-1);
        if result.is_err() {
            m.connections_dropped.inc();
        }
    }
    result
}

/// The metrics label for a request's opcode. `Seq` wrappers are
/// attributed to the operation they carry.
fn op_name(req: &Request) -> &'static str {
    match req {
        Request::Seq { inner, .. } => op_name(inner),
        Request::Malloc { .. } => "malloc",
        Request::Free { .. } => "free",
        Request::Write { .. } => "write",
        Request::Read { .. } => "read",
        Request::WriteV { .. } => "write_v",
        Request::Connect { .. } => "connect",
        Request::Info { .. } => "info",
        Request::Name => "name",
        Request::Ping => "ping",
        Request::Shutdown => "shutdown",
    }
}

/// Writer thread that sends each queued response frame no earlier than its
/// deadline. Owning the only writing half of the socket keeps responses in
/// FIFO order.
struct DelayedWriter {
    tx: Option<mpsc::Sender<(Instant, Vec<u8>)>>,
    thread: Option<JoinHandle<()>>,
}

impl DelayedWriter {
    fn spawn(mut stream: TcpStream) -> DelayedWriter {
        let (tx, rx) = mpsc::channel::<(Instant, Vec<u8>)>();
        let thread = thread::spawn(move || {
            while let Ok((deadline, frame)) = rx.recv() {
                let now = Instant::now();
                if deadline > now {
                    thread::sleep(deadline - now);
                }
                if write_frame(&mut stream, &frame).is_err() {
                    // Peer gone: drain and drop remaining responses.
                    break;
                }
            }
        });
        DelayedWriter {
            tx: Some(tx),
            thread: Some(thread),
        }
    }

    fn send(&self, deadline: Instant, frame: Vec<u8>) -> Result<(), ()> {
        match &self.tx {
            Some(tx) => tx.send((deadline, frame)).map_err(|_| ()),
            None => Err(()),
        }
    }

    /// Closes the queue and waits for every pending response to go out.
    fn finish(mut self) {
        self.tx.take();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn handle_request(req: Request, node: &NodeMemory, stop: &AtomicBool) -> Response {
    match req {
        Request::Seq { seq, inner } => Response::Tagged {
            seq,
            inner: Box::new(handle_request(*inner, node, stop)),
        },
        Request::Malloc { len, tag } => match node.export_segment(len as usize, tag) {
            Ok(id) => segment_response(node, id),
            Err(e) => Response::Err(sci_error_msg(&e)),
        },
        Request::Free { seg } => match node.free_segment(SegmentId::from_raw(seg)) {
            Ok(()) => Response::Ok,
            Err(e) => Response::Err(sci_error_msg(&e)),
        },
        Request::Write { seg, offset, data } => {
            match node.write(SegmentId::from_raw(seg), offset as usize, &data) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Err(sci_error_msg(&e)),
            }
        }
        Request::Read { seg, offset, len } => {
            // Bound the allocation before trusting the wire: a hostile or
            // corrupt length must not abort the server.
            if len > MAX_FRAME as u64 {
                return Response::Err(format!("read of {len} bytes exceeds frame limit"));
            }
            let mut buf = vec![0u8; len as usize];
            match node.read(SegmentId::from_raw(seg), offset as usize, &mut buf) {
                Ok(()) => Response::Data(buf),
                Err(e) => Response::Err(sci_error_msg(&e)),
            }
        }
        Request::WriteV { ranges } => {
            // Ranges apply in order; the first failure stops the batch and
            // leaves the earlier ranges applied (torn-prefix semantics, as
            // a real gathered burst would behave).
            for (seg, offset, data) in &ranges {
                if let Err(e) = node.write(SegmentId::from_raw(*seg), *offset as usize, data) {
                    return Response::Err(sci_error_msg(&e));
                }
            }
            Response::Ok
        }
        Request::Connect { tag } => match node.find_by_tag(tag) {
            Some(info) => segment_response(node, info.id),
            None => Response::Err(format!("no segment with tag {tag}")),
        },
        Request::Info { seg } => segment_response(node, SegmentId::from_raw(seg)),
        Request::Name => Response::Name(node.name()),
        Request::Ping => Response::Ok,
        Request::Shutdown => {
            stop.store(true, Ordering::SeqCst);
            Response::Ok
        }
    }
}

fn segment_response(node: &NodeMemory, id: SegmentId) -> Response {
    match node.segment_info(id) {
        Ok(info) => Response::Segment {
            seg: info.id.as_raw(),
            len: info.len as u64,
            tag: info.tag,
            base_addr: info.base_addr,
        },
        Err(e) => Response::Err(sci_error_msg(&e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RemoteMemory, TcpRemote};

    #[test]
    fn server_reports_name_and_serves_requests() {
        let server = Server::bind("wire-node", "127.0.0.1:0").unwrap().start();
        let mut c = TcpRemote::connect(server.addr()).unwrap();
        assert_eq!(c.fetch_name().unwrap(), "wire-node");
        let seg = c.remote_malloc(128, 5).unwrap();
        c.remote_write(seg.id, 3, &[7, 8, 9]).unwrap();
        let mut buf = [0u8; 3];
        c.remote_read(seg.id, 3, &mut buf).unwrap();
        assert_eq!(buf, [7, 8, 9]);
        server.shutdown();
    }

    #[test]
    fn two_clients_share_the_node() {
        let server = Server::bind("shared", "127.0.0.1:0").unwrap().start();
        let mut a = TcpRemote::connect(server.addr()).unwrap();
        let mut b = TcpRemote::connect(server.addr()).unwrap();
        let seg = a.remote_malloc(16, 9).unwrap();
        a.remote_write(seg.id, 0, b"hello").unwrap();
        // Client b reconnects by tag — the availability scenario.
        let found = b.connect_segment(9).unwrap();
        let mut buf = [0u8; 5];
        b.remote_read(found.id, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        server.shutdown();
    }

    #[test]
    fn remote_errors_are_reported() {
        let server = Server::bind("err", "127.0.0.1:0").unwrap().start();
        let mut c = TcpRemote::connect(server.addr()).unwrap();
        let seg = c.remote_malloc(8, 0).unwrap();
        let err = c.remote_write(seg.id, 6, &[0; 8]).unwrap_err();
        assert!(matches!(err, RnError::Remote(_)));
        let err = c.connect_segment(404).unwrap_err();
        assert!(matches!(err, RnError::TagNotFound(404)));
        server.shutdown();
    }
}
