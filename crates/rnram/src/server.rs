//! The network-RAM server: the process that *exports* its memory.
//!
//! The paper's server process "runs in the remote node and is responsible
//! for accepting requests (remote malloc and free) and manipulating its
//! main memory (exporting physical memory segments and freeing them when
//! necessary)". This module is the TCP incarnation of that process; segment
//! bookkeeping is shared with the simulated backend through
//! [`NodeMemory`].

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use perseas_sci::{NodeMemory, SciError, SegmentId};

use crate::protocol::{read_frame, write_frame, Request, Response, MAX_FRAME};
use crate::RnError;

/// A running network-RAM server.
///
/// Dropping the handle keeps the server running until the process exits;
/// call [`ServerHandle::shutdown`] for an orderly stop.
///
/// # Examples
///
/// ```
/// use perseas_rnram::{server::Server, RemoteMemory, TcpRemote};
///
/// # fn main() -> Result<(), perseas_rnram::RnError> {
/// let server = Server::bind("mirror", "127.0.0.1:0")?.start();
/// let mut client = TcpRemote::connect(server.addr())?;
/// let seg = client.remote_malloc(64, 1)?;
/// client.remote_write(seg.id, 0, b"over the wire")?;
/// server.shutdown();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Server {
    node: NodeMemory,
    listener: TcpListener,
    addr: SocketAddr,
}

/// Handle to a server running on background threads.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    node: NodeMemory,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds a server named `name` to `addr` (use port 0 for an ephemeral
    /// port).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(name: impl Into<String>, addr: impl ToSocketAddrs) -> Result<Server, RnError> {
        Server::with_node(NodeMemory::new(name), addr)
    }

    /// Binds a server exporting an existing [`NodeMemory`] — lets tests and
    /// the availability example pre-populate or share the exported memory.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn with_node(node: NodeMemory, addr: impl ToSocketAddrs) -> Result<Server, RnError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            node,
            listener,
            addr,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The exported memory.
    pub fn node(&self) -> &NodeMemory {
        &self.node
    }

    /// Starts accepting connections on background threads (one per client,
    /// mirroring the paper's blocking request/response model).
    pub fn start(self) -> ServerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let node = self.node.clone();
        let listener = self.listener;
        let addr = self.addr;
        let stop2 = stop.clone();
        let accept_thread = thread::spawn(move || {
            for conn in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        let node = node.clone();
                        let stop = stop2.clone();
                        thread::spawn(move || {
                            let _ = serve_connection(stream, &node, &stop);
                        });
                    }
                    Err(_) => break,
                }
            }
        });
        ServerHandle {
            addr,
            node: self.node,
            stop,
            accept_thread: Some(accept_thread),
        }
    }
}

impl ServerHandle {
    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The exported memory (inspectable from tests).
    pub fn node(&self) -> &NodeMemory {
        &self.node
    }

    /// Stops accepting connections and joins the accept thread. Established
    /// connections finish their current request.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn sci_error_msg(e: &SciError) -> String {
    e.to_string()
}

/// Serves one client connection until EOF or shutdown.
fn serve_connection(
    mut stream: TcpStream,
    node: &NodeMemory,
    stop: &AtomicBool,
) -> Result<(), RnError> {
    stream.set_nodelay(true)?;
    loop {
        let body = match read_frame(&mut stream) {
            Ok(b) => b,
            Err(RnError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        // A request that arrives after shutdown is not a "current request":
        // drop the connection so clients see the server as down instead of
        // racing one last answer out of a dying handler.
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let resp = match Request::decode(&body) {
            Err(e) => Response::Err(e.to_string()),
            Ok(req) => handle_request(req, node, stop),
        };
        write_frame(&mut stream, &resp.encode())?;
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

fn handle_request(req: Request, node: &NodeMemory, stop: &AtomicBool) -> Response {
    match req {
        Request::Malloc { len, tag } => match node.export_segment(len as usize, tag) {
            Ok(id) => segment_response(node, id),
            Err(e) => Response::Err(sci_error_msg(&e)),
        },
        Request::Free { seg } => match node.free_segment(SegmentId::from_raw(seg)) {
            Ok(()) => Response::Ok,
            Err(e) => Response::Err(sci_error_msg(&e)),
        },
        Request::Write { seg, offset, data } => {
            match node.write(SegmentId::from_raw(seg), offset as usize, &data) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Err(sci_error_msg(&e)),
            }
        }
        Request::Read { seg, offset, len } => {
            // Bound the allocation before trusting the wire: a hostile or
            // corrupt length must not abort the server.
            if len > MAX_FRAME as u64 {
                return Response::Err(format!("read of {len} bytes exceeds frame limit"));
            }
            let mut buf = vec![0u8; len as usize];
            match node.read(SegmentId::from_raw(seg), offset as usize, &mut buf) {
                Ok(()) => Response::Data(buf),
                Err(e) => Response::Err(sci_error_msg(&e)),
            }
        }
        Request::WriteV { ranges } => {
            // Ranges apply in order; the first failure stops the batch and
            // leaves the earlier ranges applied (torn-prefix semantics, as
            // a real gathered burst would behave).
            for (seg, offset, data) in &ranges {
                if let Err(e) = node.write(SegmentId::from_raw(*seg), *offset as usize, data) {
                    return Response::Err(sci_error_msg(&e));
                }
            }
            Response::Ok
        }
        Request::Connect { tag } => match node.find_by_tag(tag) {
            Some(info) => segment_response(node, info.id),
            None => Response::Err(format!("no segment with tag {tag}")),
        },
        Request::Info { seg } => segment_response(node, SegmentId::from_raw(seg)),
        Request::Name => Response::Name(node.name()),
        Request::Ping => Response::Ok,
        Request::Shutdown => {
            stop.store(true, Ordering::SeqCst);
            Response::Ok
        }
    }
}

fn segment_response(node: &NodeMemory, id: SegmentId) -> Response {
    match node.segment_info(id) {
        Ok(info) => Response::Segment {
            seg: info.id.as_raw(),
            len: info.len as u64,
            tag: info.tag,
            base_addr: info.base_addr,
        },
        Err(e) => Response::Err(sci_error_msg(&e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RemoteMemory, TcpRemote};

    #[test]
    fn server_reports_name_and_serves_requests() {
        let server = Server::bind("wire-node", "127.0.0.1:0").unwrap().start();
        let mut c = TcpRemote::connect(server.addr()).unwrap();
        assert_eq!(c.fetch_name().unwrap(), "wire-node");
        let seg = c.remote_malloc(128, 5).unwrap();
        c.remote_write(seg.id, 3, &[7, 8, 9]).unwrap();
        let mut buf = [0u8; 3];
        c.remote_read(seg.id, 3, &mut buf).unwrap();
        assert_eq!(buf, [7, 8, 9]);
        server.shutdown();
    }

    #[test]
    fn two_clients_share_the_node() {
        let server = Server::bind("shared", "127.0.0.1:0").unwrap().start();
        let mut a = TcpRemote::connect(server.addr()).unwrap();
        let mut b = TcpRemote::connect(server.addr()).unwrap();
        let seg = a.remote_malloc(16, 9).unwrap();
        a.remote_write(seg.id, 0, b"hello").unwrap();
        // Client b reconnects by tag — the availability scenario.
        let found = b.connect_segment(9).unwrap();
        let mut buf = [0u8; 5];
        b.remote_read(found.id, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        server.shutdown();
    }

    #[test]
    fn remote_errors_are_reported() {
        let server = Server::bind("err", "127.0.0.1:0").unwrap().start();
        let mut c = TcpRemote::connect(server.addr()).unwrap();
        let seg = c.remote_malloc(8, 0).unwrap();
        let err = c.remote_write(seg.id, 6, &[0; 8]).unwrap_err();
        assert!(matches!(err, RnError::Remote(_)));
        let err = c.connect_segment(404).unwrap_err();
        assert!(matches!(err, RnError::TagNotFound(404)));
        server.shutdown();
    }
}
