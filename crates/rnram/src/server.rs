//! The network-RAM server: the process that *exports* its memory.
//!
//! The paper's server process "runs in the remote node and is responsible
//! for accepting requests (remote malloc and free) and manipulating its
//! main memory (exporting physical memory segments and freeing them when
//! necessary)". This module is the TCP incarnation of that process; segment
//! bookkeeping is shared with the simulated backend through
//! [`NodeMemory`].
//!
//! # Event-driven request loop
//!
//! [`Server::start`] runs a single event-loop thread over nonblocking
//! sockets (readiness via `poll(2)`, no extra dependencies): one thread
//! serves every connection and every multiplexed session, so fan-in is
//! bounded by sockets and admission slots rather than OS threads. Requests
//! beyond the shared in-flight window ([`AdmissionConfig::max_inflight`])
//! queue up to [`AdmissionConfig::max_queue`] and are then refused with a
//! typed [`Response::Overloaded`] — never silently dropped, never
//! reordered: every request gets exactly one response, in receipt order
//! per connection. [`Server::start_threaded`] keeps the original
//! thread-per-connection loop alive solely as the baseline the mux
//! scaling bench compares against.

use std::collections::{HashSet, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use perseas_sci::{NodeMemory, SciError, SegmentId};

use crate::metrics::ServerMetrics;
use crate::protocol::{crc32, frame_bytes, read_frame, write_frame, Request, Response, MAX_FRAME};
use crate::RnError;

/// Readiness notification without new dependencies: a thin shim over the
/// libc `poll(2)` that std already links. The non-unix fallback claims
/// readiness after a short sleep and relies on nonblocking sockets
/// returning `WouldBlock`, trading latency for portability.
#[cfg(unix)]
mod readiness {
    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;

    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    #[cfg(target_os = "macos")]
    type NfdsT = u32;
    #[cfg(not(target_os = "macos"))]
    type NfdsT = std::os::raw::c_ulong;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: i32) -> i32;
    }

    /// Waits for readiness on `fds` for at most `timeout_ms`. EINTR and
    /// other failures report as "nothing ready"; callers retry.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
        if fds.is_empty() {
            std::thread::sleep(std::time::Duration::from_millis(
                timeout_ms.clamp(0, 25) as u64
            ));
            return 0;
        }
        let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms) };
        n.max(0)
    }
}

#[cfg(not(unix))]
mod readiness {
    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;

    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
        std::thread::sleep(std::time::Duration::from_millis(
            timeout_ms.clamp(0, 5) as u64
        ));
        for f in fds.iter_mut() {
            f.revents = f.events | POLLIN;
        }
        fds.len() as i32
    }
}

#[cfg(unix)]
fn fd_of<T: std::os::unix::io::AsRawFd>(t: &T) -> i32 {
    t.as_raw_fd()
}
#[cfg(not(unix))]
fn fd_of<T>(_t: &T) -> i32 {
    0
}

/// Shared admission-control limits for the event-driven server.
///
/// `max_inflight` bounds how many requests may be applied with their
/// responses still in flight (the shared window pool across every
/// connection and session); `max_queue` bounds how many further requests
/// may wait for a slot before the server answers [`Response::Overloaded`].
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Applied-but-unacknowledged requests allowed at once, across all
    /// connections.
    pub max_inflight: usize,
    /// Requests allowed to wait for an admission slot before refusal.
    pub max_queue: usize,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            max_inflight: 1024,
            max_queue: 4096,
        }
    }
}

/// A running network-RAM server.
///
/// Dropping the handle keeps the server running until the process exits;
/// call [`ServerHandle::shutdown`] for an orderly stop.
///
/// # Examples
///
/// ```
/// use perseas_rnram::{server::Server, RemoteMemory, TcpRemote};
///
/// # fn main() -> Result<(), perseas_rnram::RnError> {
/// let server = Server::bind("mirror", "127.0.0.1:0")?.start();
/// let mut client = TcpRemote::connect(server.addr())?;
/// let seg = client.remote_malloc(64, 1)?;
/// client.remote_write(seg.id, 0, b"over the wire")?;
/// server.shutdown();
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Server {
    node: NodeMemory,
    listener: TcpListener,
    addr: SocketAddr,
    latency: Duration,
    metrics: Option<Arc<ServerMetrics>>,
    admission: AdmissionConfig,
}

/// Handle to a server running on a background thread.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    node: NodeMemory,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds a server named `name` to `addr` (use port 0 for an ephemeral
    /// port).
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn bind(name: impl Into<String>, addr: impl ToSocketAddrs) -> Result<Server, RnError> {
        Server::with_node(NodeMemory::new(name), addr)
    }

    /// Binds a server exporting an existing [`NodeMemory`] — lets tests and
    /// the availability example pre-populate or share the exported memory.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn with_node(node: NodeMemory, addr: impl ToSocketAddrs) -> Result<Server, RnError> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            node,
            listener,
            addr,
            latency: Duration::ZERO,
            metrics: None,
            admission: AdmissionConfig::default(),
        })
    }

    /// Installs metrics: per-opcode request counts and service latency,
    /// frame bytes in/out, connection churn, open sessions, and admission
    /// queue/window occupancy are registered in `registry` (see
    /// `docs/OBSERVABILITY.md` for the names). Without this call the
    /// request loop pays one `Option` branch per frame.
    pub fn with_metrics(mut self, registry: &perseas_obs::Registry) -> Server {
        self.metrics = Some(Arc::new(ServerMetrics::new(registry)));
        self
    }

    /// Injects `latency` between receiving each request and sending its
    /// response, modelling network round-trip time for deterministic
    /// benchmarking. The request is *applied* to memory immediately on
    /// admission — only its acknowledgement is delayed — so delays of
    /// pipelined requests overlap the way propagation delay does on a
    /// real link, while a synchronous client pays `latency` per
    /// operation.
    pub fn with_request_latency(mut self, latency: Duration) -> Server {
        self.latency = latency;
        self
    }

    /// Overrides the shared admission limits (see [`AdmissionConfig`]).
    /// Tests shrink these to force [`RnError::Overloaded`] refusals
    /// deterministically.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Server {
        self.admission = admission;
        self
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The exported memory.
    pub fn node(&self) -> &NodeMemory {
        &self.node
    }

    /// Starts the event-driven request loop on one background thread.
    ///
    /// Every connection — and every multiplexed session within one — is
    /// served by this single thread; see the module docs for the
    /// admission-control and ordering guarantees.
    pub fn start(self) -> ServerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let addr = self.addr;
        let node = self.node.clone();
        let ev = EventLoop {
            listener: self.listener,
            conns: Vec::new(),
            next_admit: 0,
            ctx: Ctx {
                node: self.node,
                stop: stop.clone(),
                latency: self.latency,
                metrics: self.metrics,
                admission: self.admission,
                inflight: 0,
                queued: 0,
            },
        };
        let thread = thread::spawn(move || ev.run());
        ServerHandle {
            addr,
            node,
            stop,
            thread: Some(thread),
        }
    }

    /// Starts the legacy thread-per-connection loop (one OS thread per
    /// client, mirroring the paper's blocking request/response model).
    ///
    /// Kept as the baseline for the mux scaling bench: it has no admission
    /// control and its fan-in is capped by thread spawn cost. New code
    /// should use [`Server::start`].
    pub fn start_threaded(self) -> ServerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let node = self.node.clone();
        let listener = self.listener;
        let addr = self.addr;
        let latency = self.latency;
        let metrics = self.metrics.clone();
        let stop2 = stop.clone();
        let thread = thread::spawn(move || {
            let _ = listener.set_nonblocking(true);
            while !stop2.load(Ordering::SeqCst) {
                let mut fds = [readiness::PollFd {
                    fd: fd_of(&listener),
                    events: readiness::POLLIN,
                    revents: 0,
                }];
                readiness::poll_fds(&mut fds, 50);
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let _ = stream.set_nonblocking(false);
                            let node = node.clone();
                            let stop = stop2.clone();
                            let metrics = metrics.clone();
                            thread::spawn(move || {
                                let _ = serve_connection(stream, &node, &stop, latency, metrics);
                            });
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                }
            }
        });
        ServerHandle {
            addr,
            node: self.node,
            stop,
            thread: Some(thread),
        }
    }
}

impl ServerHandle {
    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The exported memory (inspectable from tests).
    pub fn node(&self) -> &NodeMemory {
        &self.node
    }

    /// Stops the server and joins its loop thread. In-flight responses are
    /// flushed (bounded by a grace period); requests not yet applied are
    /// dropped with their connections, so clients see the server as down
    /// rather than racing one last answer out of a dying handler. No
    /// self-connection trick is needed: the loop observes the stop flag
    /// directly.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn sci_error_msg(e: &SciError) -> String {
    e.to_string()
}

/// Shared event-loop state that is disjoint from the connection list, so
/// per-connection work can borrow one connection mutably alongside it.
struct Ctx {
    node: NodeMemory,
    stop: Arc<AtomicBool>,
    latency: Duration,
    metrics: Option<Arc<ServerMetrics>>,
    admission: AdmissionConfig,
    /// Admission slots held: applied requests whose responses are not yet
    /// fully written.
    inflight: usize,
    /// `Entry::Waiting` requests across all connections.
    queued: usize,
}

impl Ctx {
    fn gauge_inflight(&self, d: i64) {
        if let Some(m) = self.metrics.as_deref() {
            m.mux_inflight.add(d);
        }
    }

    fn gauge_queue(&self, d: i64) {
        if let Some(m) = self.metrics.as_deref() {
            m.mux_queue_depth.add(d);
        }
    }

    fn gauge_sessions(&self, d: i64) {
        if let Some(m) = self.metrics.as_deref() {
            m.sessions.add(d);
        }
    }
}

/// One response owed to a connection, in receipt order. `Waiting` holds a
/// decoded request parked in the admission queue; `Ready` holds the full
/// wire frame of a produced response, due no earlier than its deadline.
/// `slot` marks entries holding an admission slot (released when the
/// frame finishes writing, or when the connection dies).
enum Entry {
    Waiting {
        req: Request,
        received: Instant,
        op: &'static str,
    },
    Ready {
        frame: Vec<u8>,
        due: Instant,
        written: usize,
        slot: bool,
    },
}

struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    rpos: usize,
    queue: VecDeque<Entry>,
    /// `Entry::Waiting` count in `queue` (the first Waiting always has only
    /// Ready entries before it, so admitting it preserves apply order).
    waiting: usize,
    /// Sessions opened on this connection (for the sessions gauge).
    sessions: HashSet<u64>,
    eof: bool,
    dead: bool,
    errored: bool,
    write_blocked: bool,
}

struct EventLoop {
    listener: TcpListener,
    conns: Vec<Conn>,
    /// Round-robin cursor for fair admission across connections.
    next_admit: usize,
    ctx: Ctx,
}

impl EventLoop {
    fn run(mut self) {
        let _ = self.listener.set_nonblocking(true);
        let mut draining = false;
        let mut grace = Instant::now();
        loop {
            if !draining && self.ctx.stop.load(Ordering::SeqCst) {
                draining = true;
                grace = Instant::now() + self.ctx.latency + Duration::from_millis(500);
                self.begin_drain();
            }
            if draining {
                self.sweep(true);
                let done = self.conns.iter().all(|c| c.queue.is_empty());
                if done || Instant::now() >= grace {
                    break;
                }
            }
            let timeout = self.poll_timeout_ms();
            let mut fds = Vec::with_capacity(self.conns.len() + 1);
            if !draining {
                fds.push(readiness::PollFd {
                    fd: fd_of(&self.listener),
                    events: readiness::POLLIN,
                    revents: 0,
                });
            }
            for conn in &self.conns {
                let mut events = if draining { 0 } else { readiness::POLLIN };
                if conn.write_blocked {
                    events |= readiness::POLLOUT;
                }
                fds.push(readiness::PollFd {
                    fd: fd_of(&conn.stream),
                    events,
                    revents: 0,
                });
            }
            readiness::poll_fds(&mut fds, timeout);
            let conn_fds = if draining { &fds[..] } else { &fds[1..] };
            let readable: Vec<bool> = conn_fds.iter().map(|f| f.revents != 0).collect();
            if !draining {
                if fds[0].revents != 0 {
                    self.accept_ready();
                }
                for (i, was_ready) in readable.iter().enumerate() {
                    if *was_ready && i < self.conns.len() {
                        read_ready(&mut self.conns[i], &mut self.ctx);
                    }
                }
            }
            // Two admit/write rounds so slots released by completed writes
            // are re-used for queued requests within the same iteration.
            for _ in 0..2 {
                if !draining {
                    Self::admit_pump(&mut self.conns, &mut self.ctx, &mut self.next_admit);
                }
                let now = Instant::now();
                for conn in &mut self.conns {
                    write_pump(conn, &mut self.ctx, now);
                }
            }
            self.sweep(draining);
        }
        // Gauge hygiene for shared registries: account every survivor.
        for conn in std::mem::take(&mut self.conns) {
            release_conn(conn, &mut self.ctx);
        }
    }

    /// Milliseconds until the earliest pending response deadline, capped at
    /// a heartbeat that keeps the stop flag observed.
    fn poll_timeout_ms(&self) -> i32 {
        let mut t: u128 = 25;
        let now = Instant::now();
        for conn in &self.conns {
            if conn.write_blocked {
                continue; // POLLOUT will wake us.
            }
            if let Some(Entry::Ready { due, .. }) = conn.queue.front() {
                let ms = due.saturating_duration_since(now).as_millis();
                t = t.min(ms + u128::from(ms > 0));
            }
        }
        t as i32
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    if let Some(m) = self.ctx.metrics.as_deref() {
                        m.connections_total.inc();
                        m.connections.add(1);
                    }
                    self.conns.push(Conn {
                        stream,
                        rbuf: Vec::new(),
                        rpos: 0,
                        queue: VecDeque::new(),
                        waiting: 0,
                        sessions: HashSet::new(),
                        eof: false,
                        dead: false,
                        errored: false,
                        write_blocked: false,
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
    }

    /// Admits parked requests round-robin across connections while slots
    /// are free. Within one connection only the first `Waiting` entry is
    /// ever admitted, preserving per-connection apply order.
    fn admit_pump(conns: &mut [Conn], ctx: &mut Ctx, start: &mut usize) {
        if conns.is_empty() {
            return;
        }
        let n = conns.len();
        let mut progressed = true;
        while progressed && ctx.inflight < ctx.admission.max_inflight && ctx.queued > 0 {
            progressed = false;
            for k in 0..n {
                if ctx.inflight >= ctx.admission.max_inflight || ctx.queued == 0 {
                    break;
                }
                let i = (*start + k) % n;
                let conn = &mut conns[i];
                if conn.waiting == 0 || conn.dead {
                    continue;
                }
                let pos = conn
                    .queue
                    .iter()
                    .position(|e| matches!(e, Entry::Waiting { .. }))
                    .expect("waiting count matches queue");
                let placeholder = Entry::Ready {
                    frame: Vec::new(),
                    due: Instant::now(),
                    written: 0,
                    slot: false,
                };
                let taken = std::mem::replace(&mut conn.queue[pos], placeholder);
                let Entry::Waiting { req, received, op } = taken else {
                    unreachable!("position() returned a Waiting entry");
                };
                conn.waiting -= 1;
                ctx.queued -= 1;
                ctx.gauge_queue(-1);
                conn.queue[pos] = apply_now(conn, req, received, op, ctx);
                progressed = true;
            }
            *start = (*start + 1) % n;
        }
    }

    /// On shutdown: drop every request that has not been applied yet. The
    /// connections close without answering them, so clients observe an
    /// outage instead of a half-served window.
    fn begin_drain(&mut self) {
        for conn in &mut self.conns {
            if conn.waiting > 0 {
                conn.queue.retain(|e| matches!(e, Entry::Ready { .. }));
                self.ctx.queued -= conn.waiting;
                self.ctx.gauge_queue(-(conn.waiting as i64));
                conn.waiting = 0;
            }
            conn.rbuf.clear();
            conn.rpos = 0;
        }
    }

    /// Removes finished connections: dead ones immediately, EOF'd ones once
    /// their pending responses are flushed. During drain any empty queue
    /// retires its connection.
    fn sweep(&mut self, draining: bool) {
        let mut i = 0;
        while i < self.conns.len() {
            let c = &self.conns[i];
            let remove = c.dead || (c.queue.is_empty() && (c.eof || draining));
            if remove {
                let conn = self.conns.swap_remove(i);
                release_conn(conn, &mut self.ctx);
            } else {
                i += 1;
            }
        }
    }
}

/// Drains the socket's receive buffer and parses complete frames.
fn read_ready(conn: &mut Conn, ctx: &mut Ctx) {
    let mut tmp = [0u8; 64 * 1024];
    loop {
        match conn.stream.read(&mut tmp) {
            Ok(0) => {
                conn.eof = true;
                break;
            }
            Ok(n) => conn.rbuf.extend_from_slice(&tmp[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                conn.errored = true;
                break;
            }
        }
    }
    parse_frames(conn, ctx);
}

/// Splits complete frames out of the connection's read buffer, enforcing
/// the same length and CRC rules as [`read_frame`]: a violation kills this
/// connection (and only this connection).
fn parse_frames(conn: &mut Conn, ctx: &mut Ctx) {
    while !conn.dead && !ctx.stop.load(Ordering::SeqCst) {
        let buf = &conn.rbuf[conn.rpos..];
        if buf.len() < 4 {
            break;
        }
        let len = u32::from_le_bytes(buf[..4].try_into().expect("4-byte slice")) as usize;
        if len > MAX_FRAME {
            conn.dead = true;
            conn.errored = true;
            break;
        }
        if buf.len() < len + 8 {
            break;
        }
        let body = buf[4..4 + len].to_vec();
        let crc = u32::from_le_bytes(buf[4 + len..len + 8].try_into().expect("4-byte slice"));
        if crc != crc32(&body) {
            conn.dead = true;
            conn.errored = true;
            break;
        }
        conn.rpos += len + 8;
        ingest(conn, body, ctx);
    }
    if conn.rpos > 0 && (conn.rpos >= conn.rbuf.len() || conn.rpos > 64 * 1024) {
        conn.rbuf.drain(..conn.rpos);
        conn.rpos = 0;
    }
}

/// The admission decision for one received frame: apply now if a slot is
/// free and nothing earlier is parked, park it if the queue has room, else
/// refuse it. Every path enqueues exactly one entry at receipt position,
/// so responses stay in request order.
fn ingest(conn: &mut Conn, body: Vec<u8>, ctx: &mut Ctx) {
    let received = Instant::now();
    if let Some(m) = ctx.metrics.as_deref() {
        m.bytes_in.add(body.len() as u64);
    }
    let entry = match Request::decode(&body) {
        Err(e) => ready_response(Response::Err(e.to_string()), "decode_error", received, ctx),
        Ok(req) => {
            let op = op_name(&req);
            if conn.waiting == 0 && ctx.inflight < ctx.admission.max_inflight {
                apply_now(conn, req, received, op, ctx)
            } else if ctx.queued < ctx.admission.max_queue {
                ctx.queued += 1;
                ctx.gauge_queue(1);
                conn.waiting += 1;
                Entry::Waiting { req, received, op }
            } else {
                if let Some(m) = ctx.metrics.as_deref() {
                    m.admission_refusals.inc();
                }
                ready_response(refusal_for(&req), op, received, ctx)
            }
        }
    };
    conn.queue.push_back(entry);
}

/// Applies `req` to memory and builds its `Ready` response entry, holding
/// an admission slot until the frame is fully written.
fn apply_now(
    conn: &mut Conn,
    req: Request,
    received: Instant,
    op: &'static str,
    ctx: &mut Ctx,
) -> Entry {
    track_sessions(conn, &req, ctx);
    let resp = handle_request(req, &ctx.node, &ctx.stop);
    let mut entry = ready_response(resp, op, received, ctx);
    if let Entry::Ready { slot, .. } = &mut entry {
        *slot = true;
    }
    ctx.inflight += 1;
    ctx.gauge_inflight(1);
    entry
}

/// Encodes `resp` into a slotless `Ready` entry due after the injected
/// latency, recording the per-opcode metrics.
fn ready_response(resp: Response, op: &'static str, received: Instant, ctx: &Ctx) -> Entry {
    let body = resp.encode();
    if let Some(m) = ctx.metrics.as_deref() {
        m.bytes_out.add(body.len() as u64);
        let o = m.op(op);
        o.requests.inc();
        o.latency.record_wall(received.elapsed());
    }
    Entry::Ready {
        frame: frame_bytes(&body),
        due: received + ctx.latency,
        written: 0,
        slot: false,
    }
}

/// Session bookkeeping on apply: a `Mux` frame opens its session on first
/// sight; a `Mux`-wrapped `SessClose` retires it.
fn track_sessions(conn: &mut Conn, req: &Request, ctx: &Ctx) {
    if let Request::Mux { session, inner, .. } = req {
        if matches!(**inner, Request::SessClose) {
            if conn.sessions.remove(session) {
                ctx.gauge_sessions(-1);
            }
        } else if conn.sessions.insert(*session) {
            ctx.gauge_sessions(1);
        }
    }
}

/// An admission refusal shaped like its request, so pipelined and
/// multiplexed clients can route it by seq / session.
fn refusal_for(req: &Request) -> Response {
    match req {
        Request::Mux { session, seq, .. } => Response::Mux {
            session: *session,
            seq: *seq,
            inner: Box::new(Response::Overloaded),
        },
        Request::Seq { seq, .. } => Response::Tagged {
            seq: *seq,
            inner: Box::new(Response::Overloaded),
        },
        _ => Response::Overloaded,
    }
}

/// Writes due responses front-to-back until the socket would block. The
/// admission slot of a fully-written response is released here. During
/// drain, deadlines are still honored (they model propagation delay) but
/// parked entries no longer exist.
fn write_pump(conn: &mut Conn, ctx: &mut Ctx, now: Instant) {
    conn.write_blocked = false;
    while !conn.dead {
        let Some(front) = conn.queue.front_mut() else {
            break;
        };
        let Entry::Ready {
            frame,
            due,
            written,
            slot,
        } = front
        else {
            break;
        };
        if *due > now {
            break;
        }
        match conn.stream.write(&frame[*written..]) {
            Ok(0) => {
                conn.dead = true;
                conn.errored = true;
            }
            Ok(n) => {
                *written += n;
                if *written == frame.len() {
                    if *slot {
                        ctx.inflight -= 1;
                        ctx.gauge_inflight(-1);
                    }
                    conn.queue.pop_front();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                conn.write_blocked = true;
                break;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                conn.errored = true;
            }
        }
    }
}

/// Returns a connection's shared-state accounting on removal: parked
/// requests leave the queue count, held slots return to the pool, its
/// sessions close.
fn release_conn(conn: Conn, ctx: &mut Ctx) {
    let mut waiting = 0usize;
    let mut slots = 0usize;
    for e in &conn.queue {
        match e {
            Entry::Waiting { .. } => waiting += 1,
            Entry::Ready { slot: true, .. } => slots += 1,
            Entry::Ready { .. } => {}
        }
    }
    ctx.queued -= waiting;
    ctx.inflight -= slots;
    if waiting > 0 {
        ctx.gauge_queue(-(waiting as i64));
    }
    if slots > 0 {
        ctx.gauge_inflight(-(slots as i64));
    }
    if !conn.sessions.is_empty() {
        ctx.gauge_sessions(-(conn.sessions.len() as i64));
    }
    if let Some(m) = ctx.metrics.as_deref() {
        m.connections.add(-1);
        if conn.errored {
            m.connections_dropped.inc();
        }
    }
}

/// Serves one client connection until EOF or shutdown — the legacy
/// blocking loop behind [`Server::start_threaded`].
///
/// With a zero `latency` every response is written inline. With a nonzero
/// `latency` the request is still applied to memory immediately, but the
/// encoded response is handed to a dedicated writer thread that holds it
/// until `receipt + latency` — a propagation delay, not a service time, so
/// the delays of pipelined requests overlap while a synchronous client
/// pays the full latency once per operation. The single writer thread
/// preserves response FIFO order (deadlines are monotone in receipt time).
fn serve_connection(
    mut stream: TcpStream,
    node: &NodeMemory,
    stop: &AtomicBool,
    latency: Duration,
    metrics: Option<Arc<ServerMetrics>>,
) -> Result<(), RnError> {
    stream.set_nodelay(true)?;
    if let Some(m) = metrics.as_deref() {
        m.connections_total.inc();
        m.connections.add(1);
    }
    let mut delayed: Option<DelayedWriter> = if latency > Duration::ZERO {
        Some(DelayedWriter::spawn(stream.try_clone()?))
    } else {
        None
    };
    let result = loop {
        let body = match read_frame(&mut stream) {
            Ok(b) => b,
            Err(RnError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof => break Ok(()),
            Err(e) => break Err(e),
        };
        let received = Instant::now();
        // A request that arrives after shutdown is not a "current request":
        // drop the connection so clients see the server as down instead of
        // racing one last answer out of a dying handler.
        if stop.load(Ordering::SeqCst) {
            break Ok(());
        }
        let decoded = Request::decode(&body);
        let op = decoded.as_ref().map_or("decode_error", op_name);
        let resp = match decoded {
            Err(e) => Response::Err(e.to_string()),
            Ok(req) => handle_request(req, node, stop),
        };
        let frame = resp.encode();
        if let Some(m) = metrics.as_deref() {
            m.bytes_in.add(body.len() as u64);
            m.bytes_out.add(frame.len() as u64);
            let op = m.op(op);
            op.requests.inc();
            op.latency.record_wall(received.elapsed());
        }
        match &delayed {
            Some(writer) => {
                if writer.send(received + latency, frame).is_err() {
                    // Writer thread died (peer hung up mid-write).
                    break Ok(());
                }
            }
            None => {
                if let Err(e) = write_frame(&mut stream, &frame) {
                    break Err(e);
                }
            }
        }
        if stop.load(Ordering::SeqCst) {
            break Ok(());
        }
    };
    if let Some(writer) = delayed.take() {
        writer.finish();
    }
    if let Some(m) = metrics.as_deref() {
        m.connections.add(-1);
        if result.is_err() {
            m.connections_dropped.inc();
        }
    }
    result
}

/// The metrics label for a request's opcode. `Seq` and `Mux` wrappers are
/// attributed to the operation they carry.
fn op_name(req: &Request) -> &'static str {
    match req {
        Request::Seq { inner, .. } | Request::Mux { inner, .. } => op_name(inner),
        Request::Malloc { .. } => "malloc",
        Request::Free { .. } => "free",
        Request::Write { .. } => "write",
        Request::Read { .. } => "read",
        Request::ReadV { .. } => "read_v",
        Request::WriteV { .. } => "write_v",
        Request::Connect { .. } => "connect",
        Request::Info { .. } => "info",
        Request::Name => "name",
        Request::Ping => "ping",
        Request::Shutdown => "shutdown",
        Request::SessClose => "sess_close",
    }
}

/// Writer thread that sends each queued response frame no earlier than its
/// deadline. Owning the only writing half of the socket keeps responses in
/// FIFO order. (Legacy path only; the event loop tracks deadlines itself.)
struct DelayedWriter {
    tx: Option<mpsc::Sender<(Instant, Vec<u8>)>>,
    thread: Option<JoinHandle<()>>,
}

impl DelayedWriter {
    fn spawn(mut stream: TcpStream) -> DelayedWriter {
        let (tx, rx) = mpsc::channel::<(Instant, Vec<u8>)>();
        let thread = thread::spawn(move || {
            while let Ok((deadline, frame)) = rx.recv() {
                let now = Instant::now();
                if deadline > now {
                    thread::sleep(deadline - now);
                }
                if write_frame(&mut stream, &frame).is_err() {
                    // Peer gone: drain and drop remaining responses.
                    break;
                }
            }
        });
        DelayedWriter {
            tx: Some(tx),
            thread: Some(thread),
        }
    }

    fn send(&self, deadline: Instant, frame: Vec<u8>) -> Result<(), ()> {
        match &self.tx {
            Some(tx) => tx.send((deadline, frame)).map_err(|_| ()),
            None => Err(()),
        }
    }

    /// Closes the queue and waits for every pending response to go out.
    fn finish(mut self) {
        self.tx.take();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn handle_request(req: Request, node: &NodeMemory, stop: &AtomicBool) -> Response {
    match req {
        Request::Seq { seq, inner } => Response::Tagged {
            seq,
            inner: Box::new(handle_request(*inner, node, stop)),
        },
        Request::Mux {
            session,
            seq,
            inner,
        } => Response::Mux {
            session,
            seq,
            inner: Box::new(handle_request(*inner, node, stop)),
        },
        // Session retirement is connection-level bookkeeping (see
        // `track_sessions`); the memory side has nothing to undo.
        Request::SessClose => Response::Ok,
        Request::Malloc { len, tag } => match node.export_segment(len as usize, tag) {
            Ok(id) => segment_response(node, id),
            Err(e) => Response::Err(sci_error_msg(&e)),
        },
        Request::Free { seg } => match node.free_segment(SegmentId::from_raw(seg)) {
            Ok(()) => Response::Ok,
            Err(e) => Response::Err(sci_error_msg(&e)),
        },
        Request::Write { seg, offset, data } => {
            match node.write(SegmentId::from_raw(seg), offset as usize, &data) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Err(sci_error_msg(&e)),
            }
        }
        Request::Read { seg, offset, len } => {
            // Bound the allocation before trusting the wire: a hostile or
            // corrupt length must not abort the server.
            if len > MAX_FRAME as u64 {
                return Response::Err(format!("read of {len} bytes exceeds frame limit"));
            }
            let mut buf = vec![0u8; len as usize];
            match node.read(SegmentId::from_raw(seg), offset as usize, &mut buf) {
                Ok(()) => Response::Data(buf),
                Err(e) => Response::Err(sci_error_msg(&e)),
            }
        }
        Request::ReadV { reads } => {
            // The whole batch is served here, between any two writes from
            // other sessions — that single-threaded cut is the atomicity
            // a snapshot-taking replica relies on. Bound the total
            // allocation before trusting the wire.
            let total: u64 = reads.iter().map(|&(_, _, len)| len).sum();
            if total > MAX_FRAME as u64 {
                return Response::Err(format!(
                    "vectored read of {total} bytes exceeds frame limit"
                ));
            }
            let mut bufs = Vec::with_capacity(reads.len());
            for (seg, offset, len) in reads {
                let mut buf = vec![0u8; len as usize];
                if let Err(e) = node.read(SegmentId::from_raw(seg), offset as usize, &mut buf) {
                    return Response::Err(sci_error_msg(&e));
                }
                bufs.push(buf);
            }
            Response::DataV(bufs)
        }
        Request::WriteV { ranges } => {
            // Ranges apply in order; the first failure stops the batch and
            // leaves the earlier ranges applied (torn-prefix semantics, as
            // a real gathered burst would behave).
            for (seg, offset, data) in &ranges {
                if let Err(e) = node.write(SegmentId::from_raw(*seg), *offset as usize, data) {
                    return Response::Err(sci_error_msg(&e));
                }
            }
            Response::Ok
        }
        Request::Connect { tag } => match node.find_by_tag(tag) {
            Some(info) => segment_response(node, info.id),
            None => Response::Err(format!("no segment with tag {tag}")),
        },
        Request::Info { seg } => segment_response(node, SegmentId::from_raw(seg)),
        Request::Name => Response::Name(node.name()),
        Request::Ping => Response::Ok,
        Request::Shutdown => {
            stop.store(true, Ordering::SeqCst);
            Response::Ok
        }
    }
}

fn segment_response(node: &NodeMemory, id: SegmentId) -> Response {
    match node.segment_info(id) {
        Ok(info) => Response::Segment {
            seg: info.id.as_raw(),
            len: info.len as u64,
            tag: info.tag,
            base_addr: info.base_addr,
        },
        Err(e) => Response::Err(sci_error_msg(&e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::encode_seq;
    use crate::{RemoteMemory, TcpRemote};

    #[test]
    fn server_reports_name_and_serves_requests() {
        let server = Server::bind("wire-node", "127.0.0.1:0").unwrap().start();
        let mut c = TcpRemote::connect(server.addr()).unwrap();
        assert_eq!(c.fetch_name().unwrap(), "wire-node");
        let seg = c.remote_malloc(128, 5).unwrap();
        c.remote_write(seg.id, 3, &[7, 8, 9]).unwrap();
        let mut buf = [0u8; 3];
        c.remote_read(seg.id, 3, &mut buf).unwrap();
        assert_eq!(buf, [7, 8, 9]);
        server.shutdown();
    }

    #[test]
    fn two_clients_share_the_node() {
        let server = Server::bind("shared", "127.0.0.1:0").unwrap().start();
        let mut a = TcpRemote::connect(server.addr()).unwrap();
        let mut b = TcpRemote::connect(server.addr()).unwrap();
        let seg = a.remote_malloc(16, 9).unwrap();
        a.remote_write(seg.id, 0, b"hello").unwrap();
        // Client b reconnects by tag — the availability scenario.
        let found = b.connect_segment(9).unwrap();
        let mut buf = [0u8; 5];
        b.remote_read(found.id, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        server.shutdown();
    }

    #[test]
    fn remote_errors_are_reported() {
        let server = Server::bind("err", "127.0.0.1:0").unwrap().start();
        let mut c = TcpRemote::connect(server.addr()).unwrap();
        let seg = c.remote_malloc(8, 0).unwrap();
        let err = c.remote_write(seg.id, 6, &[0; 8]).unwrap_err();
        assert!(matches!(err, RnError::Remote(_)));
        let err = c.connect_segment(404).unwrap_err();
        assert!(matches!(err, RnError::TagNotFound(404)));
        server.shutdown();
    }

    #[test]
    fn threaded_mode_still_serves() {
        let server = Server::bind("legacy", "127.0.0.1:0")
            .unwrap()
            .start_threaded();
        let mut c = TcpRemote::connect(server.addr()).unwrap();
        let seg = c.remote_malloc(32, 2).unwrap();
        c.remote_write(seg.id, 0, b"old school").unwrap();
        let mut buf = [0u8; 10];
        c.remote_read(seg.id, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"old school");
        server.shutdown();
    }

    #[test]
    fn shutdown_without_any_connection_returns_promptly() {
        // The old accept loop needed a dummy self-connection to unblock;
        // the event loop must exit on the stop flag alone.
        for start in [Server::start, Server::start_threaded] {
            let server = start(Server::bind("idle", "127.0.0.1:0").unwrap());
            let t0 = Instant::now();
            server.shutdown();
            assert!(t0.elapsed() < Duration::from_secs(2));
        }
    }

    #[test]
    fn admission_overflow_is_refused_in_order() {
        // One slot, two queue places: of five pipelined pings the first
        // three are served and the last two refused, all in seq order.
        let server = Server::bind("narrow", "127.0.0.1:0")
            .unwrap()
            .with_admission(AdmissionConfig {
                max_inflight: 1,
                max_queue: 2,
            })
            .with_request_latency(Duration::from_millis(150))
            .start();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        for seq in 0..5u64 {
            write_frame(&mut s, &encode_seq(seq, &Request::Ping)).unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..5 {
            let body = read_frame(&mut s).unwrap();
            match Response::decode(&body).unwrap() {
                Response::Tagged { seq, inner } => got.push((seq, *inner)),
                other => panic!("unexpected response {other:?}"),
            }
        }
        let seqs: Vec<u64> = got.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4], "responses out of order");
        assert!(matches!(got[0].1, Response::Ok));
        assert!(matches!(got[1].1, Response::Ok));
        assert!(matches!(got[2].1, Response::Ok));
        assert!(matches!(got[3].1, Response::Overloaded));
        assert!(matches!(got[4].1, Response::Overloaded));
        server.shutdown();
    }

    #[test]
    fn shutdown_request_is_acked_then_connection_closes() {
        let server = Server::bind("bye", "127.0.0.1:0").unwrap().start();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        write_frame(&mut s, &Request::Shutdown.encode()).unwrap();
        let body = read_frame(&mut s).unwrap();
        assert!(matches!(Response::decode(&body).unwrap(), Response::Ok));
        // The fixed post-shutdown window: a later request is never served.
        write_frame(&mut s, &Request::Ping.encode()).unwrap();
        assert!(read_frame(&mut s).is_err(), "served a request after stop");
        server.shutdown();
    }

    #[test]
    fn mux_sessions_are_tracked_and_interleaved() {
        let registry = perseas_obs::Registry::new();
        let server = Server::bind("mux", "127.0.0.1:0")
            .unwrap()
            .with_metrics(&registry)
            .start();
        let mut s = TcpStream::connect(server.addr()).unwrap();
        let malloc = Request::Malloc { len: 64, tag: 1 };
        write_frame(&mut s, &crate::protocol::encode_mux(1, 0, &malloc)).unwrap();
        write_frame(&mut s, &crate::protocol::encode_mux(2, 0, &Request::Ping)).unwrap();
        let mut seg = 0;
        for want in [(1u64, 0u64), (2, 0)] {
            let body = read_frame(&mut s).unwrap();
            match Response::decode(&body).unwrap() {
                Response::Mux {
                    session,
                    seq,
                    inner,
                } => {
                    assert_eq!((session, seq), want);
                    if let Response::Segment { seg: id, .. } = *inner {
                        seg = id;
                    }
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
        assert!(registry.render().contains("perseas_server_sessions 2"));
        // Write through session 1, read through session 2: same memory.
        let data = b"cross-session".to_vec();
        write_frame(
            &mut s,
            &crate::protocol::encode_write_mux(1, 1, seg, 0, &data),
        )
        .unwrap();
        let read = Request::Read {
            seg,
            offset: 0,
            len: data.len() as u64,
        };
        write_frame(&mut s, &crate::protocol::encode_mux(2, 1, &read)).unwrap();
        let _ack = read_frame(&mut s).unwrap();
        let body = read_frame(&mut s).unwrap();
        match Response::decode(&body).unwrap() {
            Response::Mux { session, inner, .. } => {
                assert_eq!(session, 2);
                assert_eq!(*inner, Response::Data(data));
            }
            other => panic!("unexpected response {other:?}"),
        }
        // Closing a session drops the gauge.
        write_frame(
            &mut s,
            &crate::protocol::encode_mux(1, 2, &Request::SessClose),
        )
        .unwrap();
        let _ = read_frame(&mut s).unwrap();
        assert!(registry.render().contains("perseas_server_sessions 1"));
        server.shutdown();
    }
}
