//! Reliable network RAM for the PERSEAS reproduction.
//!
//! The paper builds transactions on three primitives (Section 3):
//!
//! * **remote malloc** — map physical memory of a remote node into the
//!   calling process;
//! * **remote free** — release such a segment;
//! * **remote memory copy** — `memcpy` between local and remote memory.
//!
//! Plus one recovery primitive, **`sci_connect_segment`** (Section 4):
//! re-map a segment that already exists on the remote node after the local
//! node crashed and lost its pointers.
//!
//! This crate exposes those operations behind the [`RemoteMemory`] trait and
//! provides two interchangeable backends:
//!
//! * [`SimRemote`] — a simulated Dolphin PCI-SCI mapping (deterministic
//!   virtual-time latencies; used by every experiment that reproduces a
//!   paper figure);
//! * [`TcpRemote`] / [`server`] — a real client/server deployment over TCP,
//!   for running the mirror on a genuinely separate process or machine.
//!
//! It also implements the paper's `sci_memcpy` optimisation
//! ([`plan_transfer`], [`mirror_copy`]): copies of 32 bytes or more are
//! widened to whole 64-byte-aligned chunks so the card emits full 64-byte
//! packets, and 17–32-byte copies are widened only when the range does not
//! already touch the eagerly-flushed last word of a buffer.
//!
//! # Examples
//!
//! ```
//! use perseas_rnram::{RemoteMemory, SimRemote};
//!
//! # fn main() -> Result<(), perseas_rnram::RnError> {
//! let mut remote = SimRemote::new("mirror");
//! let seg = remote.remote_malloc(1024, 42)?;
//! remote.remote_write(seg.id, 0, b"mirrored bytes")?;
//!
//! // After a local crash, reconnect by tag and read the data back.
//! let seg2 = remote.connect_segment(42)?;
//! assert_eq!(seg2.id, seg.id);
//! let mut buf = [0u8; 14];
//! remote.remote_read(seg2.id, 0, &mut buf)?;
//! assert_eq!(&buf, b"mirrored bytes");
//! # Ok(())
//! # }
//! ```

mod backoff;
mod error;
mod memcpy;
mod metrics;
mod mux;
pub mod protocol;
mod retry;
pub mod server;
mod sim;
mod tcp;
mod traits;

pub use backoff::BackoffPolicy;
pub use error::RnError;
pub use memcpy::{mirror_copy, plan_transfer, TransferPlan, TransferStrategy};
pub use mux::{AnyRemote, MuxSession, SessionMux, MUX_ENV};
pub use retry::ReconnectingRemote;
pub use server::AdmissionConfig;
pub use sim::SimRemote;
pub use tcp::{PipelineConfig, TcpRemote, PIPELINE_ENV};
pub use traits::{FlushStats, RemoteMemory, RemoteSegment};

pub use perseas_sci::SegmentId;
