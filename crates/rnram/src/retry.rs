//! Automatic reconnection for TCP-backed deployments.
//!
//! A transient network blip between the primary and its mirror should not
//! force a full database recovery. [`ReconnectingRemote`] wraps
//! [`TcpRemote`] and transparently re-dials the server when a socket-level
//! failure occurs, retrying the operation a bounded number of times.
//!
//! Only *connection* failures are retried. Remote refusals (bad segment,
//! out of bounds, unknown tag) are real answers and pass straight
//! through; and because every PERSEAS remote write is idempotent (it
//! writes bytes at an absolute offset), retrying a possibly-delivered
//! write is safe.
//!
//! Attempts are paced by a [`BackoffPolicy`]: exponential delays with
//! deterministic jitter, so a briefly-rebooting server is not hammered by
//! a tight re-dial loop. Tests pace against a [`SimClock`]
//! ([`ReconnectingRemote::pace_with_clock`]) so the waits are virtual and
//! the schedule is exactly reproducible.

use std::net::{SocketAddr, ToSocketAddrs};

use perseas_sci::SegmentId;
use perseas_simtime::{SimClock, SimDuration};

use crate::{BackoffPolicy, RemoteMemory, RemoteSegment, RnError, TcpRemote};

/// A [`TcpRemote`] that re-dials the server on socket failures.
#[derive(Debug)]
pub struct ReconnectingRemote {
    addr: SocketAddr,
    inner: Option<TcpRemote>,
    max_attempts: usize,
    policy: BackoffPolicy,
    pace: Option<SimClock>,
}

impl ReconnectingRemote {
    /// Connects to `addr`, retrying each future operation up to
    /// `max_attempts` times across reconnects, paced by the default
    /// [`BackoffPolicy`] (1 ms doubling to a 500 ms cap).
    ///
    /// # Errors
    ///
    /// Fails if the initial connection cannot be established.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn connect(addr: impl ToSocketAddrs, max_attempts: usize) -> Result<Self, RnError> {
        ReconnectingRemote::with_backoff(addr, max_attempts, BackoffPolicy::default())
    }

    /// Like [`ReconnectingRemote::connect`] but with an explicit pacing
    /// policy.
    ///
    /// # Errors
    ///
    /// Fails if the initial connection cannot be established.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn with_backoff(
        addr: impl ToSocketAddrs,
        max_attempts: usize,
        policy: BackoffPolicy,
    ) -> Result<Self, RnError> {
        assert!(max_attempts > 0, "at least one attempt is required");
        let inner = TcpRemote::connect(&addr)?;
        let addr = inner.peer_addr();
        Ok(ReconnectingRemote {
            addr,
            inner: Some(inner),
            max_attempts,
            policy,
            pace: None,
        })
    }

    /// The server address.
    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The pacing policy between reconnect attempts.
    pub fn backoff(&self) -> BackoffPolicy {
        self.policy
    }

    /// Charges backoff delays to `clock` (virtual time) instead of
    /// sleeping the thread — the retry schedule becomes deterministic
    /// and instantaneous, for tests and simulated deployments.
    pub fn pace_with_clock(&mut self, clock: SimClock) {
        self.pace = Some(clock);
    }

    fn pause(&self, nanos: u64) {
        if nanos == 0 {
            return;
        }
        match &self.pace {
            Some(clock) => {
                clock.advance(SimDuration::from_nanos(nanos));
            }
            None => std::thread::sleep(std::time::Duration::from_nanos(nanos)),
        }
    }

    fn with_conn<T>(
        &mut self,
        mut op: impl FnMut(&mut TcpRemote) -> Result<T, RnError>,
    ) -> Result<T, RnError> {
        let mut last_err: Option<RnError> = None;
        for attempt in 0..self.max_attempts {
            if attempt > 0 {
                // Pause between attempts, never after the last one.
                self.pause(self.policy.delay_nanos(attempt as u32 - 1));
            }
            if self.inner.is_none() {
                match TcpRemote::connect(self.addr) {
                    Ok(c) => self.inner = Some(c),
                    Err(e) => {
                        last_err = Some(e);
                        continue;
                    }
                }
            }
            let conn = self.inner.as_mut().expect("present");
            match op(conn) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_unavailable() => {
                    // The socket is suspect: drop it and re-dial.
                    self.inner = None;
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| RnError::Protocol("no attempts made".into())))
    }
}

impl RemoteMemory for ReconnectingRemote {
    fn remote_malloc(&mut self, len: usize, tag: u64) -> Result<RemoteSegment, RnError> {
        self.with_conn(|c| c.remote_malloc(len, tag))
    }

    fn remote_free(&mut self, seg: SegmentId) -> Result<(), RnError> {
        self.with_conn(|c| c.remote_free(seg))
    }

    fn remote_write(&mut self, seg: SegmentId, offset: usize, data: &[u8]) -> Result<(), RnError> {
        self.with_conn(|c| c.remote_write(seg, offset, data))
    }

    fn remote_write_v(&mut self, writes: &[(SegmentId, usize, &[u8])]) -> Result<(), RnError> {
        // Safe to retry for the same reason single writes are: every range
        // lands at an absolute offset, so re-sending a possibly-delivered
        // batch is idempotent.
        self.with_conn(|c| c.remote_write_v(writes))
    }

    fn remote_read(
        &mut self,
        seg: SegmentId,
        offset: usize,
        buf: &mut [u8],
    ) -> Result<(), RnError> {
        self.with_conn(|c| c.remote_read(seg, offset, buf))
    }

    fn connect_segment(&mut self, tag: u64) -> Result<RemoteSegment, RnError> {
        self.with_conn(|c| c.connect_segment(tag))
    }

    fn segment_info(&mut self, seg: SegmentId) -> Result<RemoteSegment, RnError> {
        self.with_conn(|c| c.segment_info(seg))
    }

    fn node_name(&self) -> String {
        self.inner
            .as_ref()
            .map(|c| c.node_name())
            .unwrap_or_else(|| format!("tcp://{}", self.addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;

    #[test]
    fn survives_a_server_restart_on_the_same_port() {
        let server = Server::bind("blinky", "127.0.0.1:0").unwrap().start();
        let node = server.node().clone();
        let addr = server.addr();

        let mut r = ReconnectingRemote::connect(addr, 5).unwrap();
        let seg = r.remote_malloc(16, 1).unwrap();
        r.remote_write(seg.id, 0, &[1; 8]).unwrap();

        // The server process restarts on the same port with the same
        // exported memory.
        server.shutdown();
        let server2 = Server::with_node(node, addr).unwrap().start();

        // The wrapped client re-dials transparently.
        r.remote_write(seg.id, 8, &[2; 8]).unwrap();
        let mut buf = [0u8; 16];
        r.remote_read(seg.id, 0, &mut buf).unwrap();
        assert_eq!(&buf[..8], &[1; 8]);
        assert_eq!(&buf[8..], &[2; 8]);
        server2.shutdown();
    }

    #[test]
    fn remote_refusals_are_not_retried() {
        let server = Server::bind("r", "127.0.0.1:0").unwrap().start();
        let mut r = ReconnectingRemote::connect(server.addr(), 3).unwrap();
        let seg = r.remote_malloc(8, 0).unwrap();
        // Out-of-bounds is a real answer, not a transport failure.
        let err = r.remote_write(seg.id, 6, &[0; 8]).unwrap_err();
        assert!(matches!(err, RnError::Remote(_)));
        // Connection is still the original one and healthy.
        r.remote_write(seg.id, 0, &[1; 4]).unwrap();
        server.shutdown();
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let server = Server::bind("gone", "127.0.0.1:0").unwrap().start();
        let addr = server.addr();
        let mut r = ReconnectingRemote::connect(addr, 2).unwrap();
        server.shutdown(); // nobody listening any more
        let err = r.remote_malloc(8, 0).unwrap_err();
        assert!(err.is_unavailable(), "{err}");
        assert_eq!(r.peer_addr(), addr);
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_rejected() {
        let server = Server::bind("z", "127.0.0.1:0").unwrap().start();
        let _ = ReconnectingRemote::connect(server.addr(), 0);
    }

    #[test]
    fn retry_pacing_is_bounded_and_deterministic() {
        let server = Server::bind("paced", "127.0.0.1:0").unwrap().start();
        let policy = BackoffPolicy::from_millis(5, 20).with_seed(7);
        let mut r = ReconnectingRemote::with_backoff(server.addr(), 4, policy).unwrap();
        let clock = SimClock::new();
        r.pace_with_clock(clock.clone());
        server.shutdown(); // every attempt will fail

        let t0 = clock.now();
        let err = r.remote_malloc(8, 0).unwrap_err();
        assert!(err.is_unavailable(), "{err}");

        // 4 attempts means exactly 3 pauses — delays 0, 1 and 2 of the
        // policy — charged entirely to the virtual clock.
        let waited = clock.now().duration_since(t0).as_nanos();
        assert_eq!(waited, policy.total_nanos(3));
        // Bounded: no single delay exceeds the cap, so the total is under
        // (attempts - 1) * cap.
        assert!(waited <= 3 * 20_000_000, "unbounded pacing: {waited} ns");
        assert!(waited > 0, "backoff must actually pace the loop");

        // The schedule is a pure function of the policy: a second run
        // waits the identical virtual time.
        let server2 = Server::bind("paced2", "127.0.0.1:0").unwrap().start();
        let mut r2 = ReconnectingRemote::with_backoff(server2.addr(), 4, policy).unwrap();
        let clock2 = SimClock::new();
        r2.pace_with_clock(clock2.clone());
        server2.shutdown();
        let t0 = clock2.now();
        let _ = r2.remote_malloc(8, 0).unwrap_err();
        assert_eq!(clock2.now().duration_since(t0).as_nanos(), waited);
    }

    #[test]
    fn successful_ops_do_not_pause() {
        let server = Server::bind("fast", "127.0.0.1:0").unwrap().start();
        let policy = BackoffPolicy::from_millis(1_000, 1_000); // would be visible
        let mut r = ReconnectingRemote::with_backoff(server.addr(), 3, policy).unwrap();
        let clock = SimClock::new();
        r.pace_with_clock(clock.clone());
        let t0 = clock.now();
        let seg = r.remote_malloc(16, 1).unwrap();
        r.remote_write(seg.id, 0, &[9; 16]).unwrap();
        assert_eq!(
            clock.now().duration_since(t0),
            SimDuration::ZERO,
            "first-attempt successes never back off"
        );
        server.shutdown();
    }
}
