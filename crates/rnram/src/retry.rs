//! Automatic reconnection for TCP-backed deployments.
//!
//! A transient network blip between the primary and its mirror should not
//! force a full database recovery. [`ReconnectingRemote`] wraps
//! [`TcpRemote`] and transparently re-dials the server when a socket-level
//! failure occurs, retrying the operation a bounded number of times.
//!
//! Only *connection* failures are retried. Remote refusals (bad segment,
//! out of bounds, unknown tag) are real answers and pass straight
//! through; and because every PERSEAS remote write is idempotent (it
//! writes bytes at an absolute offset), retrying a possibly-delivered
//! write is safe.
//!
//! Pipelined connections add one hard rule: a connection that dies with
//! posted-but-unconfirmed writes (`in_flight() > 0`) is **never**
//! silently re-dialed, and [`RemoteMemory::flush`] is **never** retried.
//! The lost window cannot be replayed — this wrapper does not buffer the
//! posted frames — and flushing a freshly dialed connection would
//! vacuously succeed while the writes it was supposed to confirm died
//! with the old socket. Both paths surface `Unavailable` instead and
//! leave re-dialing to the next operation, so the caller (the mirror
//! fault-fencing layer) decides what the lost window means.
//!
//! Attempts are paced by a [`BackoffPolicy`]: exponential delays with
//! deterministic jitter, so a briefly-rebooting server is not hammered by
//! a tight re-dial loop. Tests pace against a [`SimClock`]
//! ([`ReconnectingRemote::pace_with_clock`]) so the waits are virtual and
//! the schedule is exactly reproducible.

use std::net::{SocketAddr, ToSocketAddrs};

use perseas_sci::SegmentId;
use perseas_simtime::{SimClock, SimDuration};

use crate::{
    AnyRemote, BackoffPolicy, FlushStats, PipelineConfig, RemoteMemory, RemoteSegment, RnError,
    SessionMux, TcpRemote,
};

/// A TCP-backed [`RemoteMemory`] that re-dials the server on socket
/// failures. The connection is either a dedicated [`TcpRemote`] or a
/// logical session on the process-wide shared mux ([`SessionMux`]); a
/// re-dial always reproduces the original mode.
#[derive(Debug)]
pub struct ReconnectingRemote {
    addr: SocketAddr,
    inner: Option<AnyRemote>,
    max_attempts: usize,
    policy: BackoffPolicy,
    pace: Option<SimClock>,
    pipeline: Option<PipelineConfig>,
    mux: bool,
}

impl ReconnectingRemote {
    /// Connects to `addr`, retrying each future operation up to
    /// `max_attempts` times across reconnects, paced by the default
    /// [`BackoffPolicy`] (1 ms doubling to a 500 ms cap).
    ///
    /// # Errors
    ///
    /// Fails if the initial connection cannot be established.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn connect(addr: impl ToSocketAddrs, max_attempts: usize) -> Result<Self, RnError> {
        ReconnectingRemote::with_backoff(addr, max_attempts, BackoffPolicy::default())
    }

    /// Like [`ReconnectingRemote::connect`] but with an explicit pacing
    /// policy.
    ///
    /// # Errors
    ///
    /// Fails if the initial connection cannot be established.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn with_backoff(
        addr: impl ToSocketAddrs,
        max_attempts: usize,
        policy: BackoffPolicy,
    ) -> Result<Self, RnError> {
        assert!(max_attempts > 0, "at least one attempt is required");
        let inner = TcpRemote::connect(&addr)?;
        let addr = inner.peer_addr();
        Ok(ReconnectingRemote {
            addr,
            inner: Some(AnyRemote::Tcp(inner)),
            max_attempts,
            policy,
            pace: None,
            pipeline: None,
            mux: false,
        })
    }

    /// Opens a logical session on the process-wide shared mux for `addr`
    /// (see [`SessionMux::shared`]) instead of a dedicated socket, with
    /// the same retry semantics: a dead shared socket is re-dialed for
    /// new work, but a session that dies with posted writes in flight
    /// surfaces the loss instead of silently retrying.
    ///
    /// # Errors
    ///
    /// Fails if the initial connection cannot be established.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn connect_mux(addr: impl ToSocketAddrs, max_attempts: usize) -> Result<Self, RnError> {
        assert!(max_attempts > 0, "at least one attempt is required");
        let mux = SessionMux::shared(addr)?;
        let addr = mux.peer_addr();
        Ok(ReconnectingRemote {
            addr,
            inner: Some(AnyRemote::Mux(mux.session())),
            max_attempts,
            policy: BackoffPolicy::default(),
            pace: None,
            pipeline: None,
            mux: true,
        })
    }

    /// Connects in the mode selected by the environment: a shared-mux
    /// session when [`MUX_ENV`](crate::MUX_ENV) is set, otherwise a
    /// dedicated connection whose pipelining follows
    /// [`PIPELINE_ENV`](crate::PIPELINE_ENV) — the hook the test suites
    /// use to run the same scenarios over every transport (see
    /// [`AnyRemote::connect_auto`]).
    ///
    /// # Errors
    ///
    /// Fails if the initial connection cannot be established.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn connect_auto(addr: impl ToSocketAddrs, max_attempts: usize) -> Result<Self, RnError> {
        if crate::mux::env_enables_mux() {
            return ReconnectingRemote::connect_mux(addr, max_attempts);
        }
        let conn = ReconnectingRemote::connect(addr, max_attempts)?;
        if crate::tcp::env_enables_pipeline(std::env::var(crate::PIPELINE_ENV).ok().as_deref()) {
            Ok(conn.with_pipeline(PipelineConfig::default()))
        } else {
            Ok(conn)
        }
    }

    /// Makes the current connection — and every re-dialed one — use the
    /// posted-write window `cfg` (see [`TcpRemote::connect_with`] and
    /// [`SessionMux::session_with`]).
    pub fn with_pipeline(mut self, cfg: PipelineConfig) -> Self {
        self.pipeline = Some(cfg);
        match self.inner.as_mut() {
            Some(AnyRemote::Tcp(conn)) => conn.enable_pipeline(cfg),
            // A mux session's window is fixed at creation; swap in a
            // fresh session with the requested one (nothing is in flight
            // on a handle that is still being configured).
            Some(AnyRemote::Mux(_)) => self.inner = self.dial().ok(),
            None => {}
        }
        self
    }

    fn dial(&self) -> Result<AnyRemote, RnError> {
        if self.mux {
            let mux = SessionMux::shared(self.addr)?;
            return Ok(AnyRemote::Mux(match self.pipeline {
                Some(cfg) => mux.session_with(cfg),
                None => mux.session(),
            }));
        }
        Ok(AnyRemote::Tcp(match self.pipeline {
            Some(cfg) => TcpRemote::connect_with(self.addr, cfg)?,
            None => TcpRemote::connect(self.addr)?,
        }))
    }

    /// The server address.
    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The pacing policy between reconnect attempts.
    pub fn backoff(&self) -> BackoffPolicy {
        self.policy
    }

    /// Charges backoff delays to `clock` (virtual time) instead of
    /// sleeping the thread — the retry schedule becomes deterministic
    /// and instantaneous, for tests and simulated deployments.
    pub fn pace_with_clock(&mut self, clock: SimClock) {
        self.pace = Some(clock);
    }

    fn pause(&self, nanos: u64) {
        if nanos == 0 {
            return;
        }
        match &self.pace {
            Some(clock) => {
                clock.advance(SimDuration::from_nanos(nanos));
            }
            None => std::thread::sleep(std::time::Duration::from_nanos(nanos)),
        }
    }

    fn with_conn<T>(
        &mut self,
        mut op: impl FnMut(&mut AnyRemote) -> Result<T, RnError>,
    ) -> Result<T, RnError> {
        let mut last_err: Option<RnError> = None;
        for attempt in 0..self.max_attempts {
            if attempt > 0 {
                // Pause between attempts, never after the last one.
                self.pause(self.policy.delay_nanos(attempt as u32 - 1));
            }
            if self.inner.is_none() {
                match self.dial() {
                    Ok(c) => self.inner = Some(c),
                    Err(e) => {
                        last_err = Some(e);
                        continue;
                    }
                }
            }
            let conn = self.inner.as_mut().expect("present");
            match op(conn) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_unavailable() => {
                    // The socket is suspect: drop it. But a connection
                    // that died with posted writes unconfirmed took a
                    // window we cannot replay — retrying the *current*
                    // operation on a fresh socket would silently skip
                    // the lost ones, so that loss must surface.
                    let lost = conn.in_flight();
                    self.inner = None;
                    if lost > 0 {
                        return Err(e);
                    }
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| RnError::Protocol("no attempts made".into())))
    }
}

impl RemoteMemory for ReconnectingRemote {
    fn remote_malloc(&mut self, len: usize, tag: u64) -> Result<RemoteSegment, RnError> {
        self.with_conn(|c| c.remote_malloc(len, tag))
    }

    fn remote_free(&mut self, seg: SegmentId) -> Result<(), RnError> {
        self.with_conn(|c| c.remote_free(seg))
    }

    fn remote_write(&mut self, seg: SegmentId, offset: usize, data: &[u8]) -> Result<(), RnError> {
        self.with_conn(|c| c.remote_write(seg, offset, data))
    }

    fn remote_write_v(&mut self, writes: &[(SegmentId, usize, &[u8])]) -> Result<(), RnError> {
        // Safe to retry for the same reason single writes are: every range
        // lands at an absolute offset, so re-sending a possibly-delivered
        // batch is idempotent.
        self.with_conn(|c| c.remote_write_v(writes))
    }

    fn flush(&mut self) -> Result<FlushStats, RnError> {
        // Never retried: the barrier confirms writes posted on *this*
        // connection, and a re-dial-then-flush would vacuously succeed
        // while the real window died with the old socket. With no live
        // connection nothing is posted (a lost window was already
        // surfaced by the operation that dropped it), so the barrier is
        // trivially clean.
        let Some(conn) = self.inner.as_mut() else {
            return Ok(FlushStats::default());
        };
        match conn.flush() {
            Ok(stats) => Ok(stats),
            Err(e) => {
                if e.is_unavailable() {
                    self.inner = None;
                }
                Err(e)
            }
        }
    }

    fn in_flight(&self) -> usize {
        self.inner.as_ref().map_or(0, |c| c.in_flight())
    }

    fn remote_read(
        &mut self,
        seg: SegmentId,
        offset: usize,
        buf: &mut [u8],
    ) -> Result<(), RnError> {
        self.with_conn(|c| c.remote_read(seg, offset, buf))
    }

    fn remote_read_v(
        &mut self,
        reads: &[(SegmentId, usize, usize)],
    ) -> Result<Vec<Vec<u8>>, RnError> {
        self.with_conn(|c| c.remote_read_v(reads))
    }

    fn connect_segment(&mut self, tag: u64) -> Result<RemoteSegment, RnError> {
        self.with_conn(|c| c.connect_segment(tag))
    }

    fn segment_info(&mut self, seg: SegmentId) -> Result<RemoteSegment, RnError> {
        self.with_conn(|c| c.segment_info(seg))
    }

    fn node_name(&self) -> String {
        self.inner.as_ref().map_or_else(
            || {
                let scheme = if self.mux { "mux" } else { "tcp" };
                format!("{scheme}://{}", self.addr)
            },
            RemoteMemory::node_name,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;

    #[test]
    fn survives_a_server_restart_on_the_same_port() {
        let server = Server::bind("blinky", "127.0.0.1:0").unwrap().start();
        let node = server.node().clone();
        let addr = server.addr();

        let mut r = ReconnectingRemote::connect(addr, 5).unwrap();
        let seg = r.remote_malloc(16, 1).unwrap();
        r.remote_write(seg.id, 0, &[1; 8]).unwrap();

        // The server process restarts on the same port with the same
        // exported memory.
        server.shutdown();
        let server2 = Server::with_node(node, addr).unwrap().start();

        // The wrapped client re-dials transparently.
        r.remote_write(seg.id, 8, &[2; 8]).unwrap();
        let mut buf = [0u8; 16];
        r.remote_read(seg.id, 0, &mut buf).unwrap();
        assert_eq!(&buf[..8], &[1; 8]);
        assert_eq!(&buf[8..], &[2; 8]);
        server2.shutdown();
    }

    #[test]
    fn remote_refusals_are_not_retried() {
        let server = Server::bind("r", "127.0.0.1:0").unwrap().start();
        let mut r = ReconnectingRemote::connect(server.addr(), 3).unwrap();
        let seg = r.remote_malloc(8, 0).unwrap();
        // Out-of-bounds is a real answer, not a transport failure.
        let err = r.remote_write(seg.id, 6, &[0; 8]).unwrap_err();
        assert!(matches!(err, RnError::Remote(_)));
        // Connection is still the original one and healthy.
        r.remote_write(seg.id, 0, &[1; 4]).unwrap();
        server.shutdown();
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let server = Server::bind("gone", "127.0.0.1:0").unwrap().start();
        let addr = server.addr();
        let mut r = ReconnectingRemote::connect(addr, 2).unwrap();
        server.shutdown(); // nobody listening any more
        let err = r.remote_malloc(8, 0).unwrap_err();
        assert!(err.is_unavailable(), "{err}");
        assert_eq!(r.peer_addr(), addr);
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_rejected() {
        let server = Server::bind("z", "127.0.0.1:0").unwrap().start();
        let _ = ReconnectingRemote::connect(server.addr(), 0);
    }

    #[test]
    fn retry_pacing_is_bounded_and_deterministic() {
        let server = Server::bind("paced", "127.0.0.1:0").unwrap().start();
        let policy = BackoffPolicy::from_millis(5, 20).with_seed(7);
        let mut r = ReconnectingRemote::with_backoff(server.addr(), 4, policy).unwrap();
        let clock = SimClock::new();
        r.pace_with_clock(clock.clone());
        server.shutdown(); // every attempt will fail

        let t0 = clock.now();
        let err = r.remote_malloc(8, 0).unwrap_err();
        assert!(err.is_unavailable(), "{err}");

        // 4 attempts means exactly 3 pauses — delays 0, 1 and 2 of the
        // policy — charged entirely to the virtual clock.
        let waited = clock.now().duration_since(t0).as_nanos();
        assert_eq!(waited, policy.total_nanos(3));
        // Bounded: no single delay exceeds the cap, so the total is under
        // (attempts - 1) * cap.
        assert!(waited <= 3 * 20_000_000, "unbounded pacing: {waited} ns");
        assert!(waited > 0, "backoff must actually pace the loop");

        // The schedule is a pure function of the policy: a second run
        // waits the identical virtual time.
        let server2 = Server::bind("paced2", "127.0.0.1:0").unwrap().start();
        let mut r2 = ReconnectingRemote::with_backoff(server2.addr(), 4, policy).unwrap();
        let clock2 = SimClock::new();
        r2.pace_with_clock(clock2.clone());
        server2.shutdown();
        let t0 = clock2.now();
        let _ = r2.remote_malloc(8, 0).unwrap_err();
        assert_eq!(clock2.now().duration_since(t0).as_nanos(), waited);
    }

    #[test]
    fn pipelined_wrapper_redials_pipelined() {
        let server = Server::bind("redial", "127.0.0.1:0").unwrap().start();
        let node = server.node().clone();
        let addr = server.addr();
        let mut r = ReconnectingRemote::connect(addr, 5)
            .unwrap()
            .with_pipeline(PipelineConfig::default());
        let seg = r.remote_malloc(16, 1).unwrap();
        r.remote_write(seg.id, 0, &[1; 8]).unwrap();
        r.flush().unwrap();

        server.shutdown();
        let server2 = Server::with_node(node, addr).unwrap().start();

        // The window was clean at the drop, so re-dialing is safe — and
        // the replacement connection must be pipelined again.
        let mut buf = [0u8; 8];
        r.remote_read(seg.id, 0, &mut buf).unwrap();
        assert_eq!(buf, [1; 8]);
        r.remote_write(seg.id, 8, &[2; 8]).unwrap();
        assert!(r.in_flight() > 0, "re-dialed connection posts writes");
        r.flush().unwrap();
        server2.shutdown();
    }

    /// A scripted server for the lost-window tests: answers everything on
    /// the first connection until a posted (seq-wrapped) write arrives,
    /// then hangs up with that write unacknowledged. Every *later*
    /// connection is served fully — so if the wrapper ever silently
    /// re-dialed and retried, the retried operation would succeed and the
    /// tests below would catch it.
    fn spawn_window_dropper() -> SocketAddr {
        use crate::protocol::{read_frame, write_frame, Request, Response};

        fn reply(req: &Request) -> Response {
            match req {
                Request::Seq { seq, inner } => Response::Tagged {
                    seq: *seq,
                    inner: Box::new(reply(inner)),
                },
                Request::Mux {
                    session,
                    seq,
                    inner,
                } => Response::Mux {
                    session: *session,
                    seq: *seq,
                    inner: Box::new(reply(inner)),
                },
                Request::Malloc { len, tag } => Response::Segment {
                    seg: 1,
                    len: *len,
                    tag: *tag,
                    base_addr: 0,
                },
                Request::Info { seg } => Response::Segment {
                    seg: *seg,
                    len: 16,
                    tag: 1,
                    base_addr: 0,
                },
                _ => Response::Ok,
            }
        }

        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            if let Ok((mut s, _)) = listener.accept() {
                while let Ok(body) = read_frame(&mut s) {
                    let req = Request::decode(&body).unwrap();
                    let posted_write = matches!(
                        &req,
                        Request::Seq { inner, .. } | Request::Mux { inner, .. }
                            if matches!(**inner, Request::Write { .. } | Request::WriteV { .. })
                    );
                    if posted_write {
                        // Hang up the first connection (leaving the write
                        // unacknowledged) before serving replacements.
                        let _ = s.shutdown(std::net::Shutdown::Both);
                        return_window(listener);
                        return;
                    }
                    if write_frame(&mut s, &reply(&req).encode()).is_err() {
                        break;
                    }
                }
            }

            fn return_window(listener: std::net::TcpListener) {
                while let Ok((mut s, _)) = listener.accept() {
                    while let Ok(body) = read_frame(&mut s) {
                        let req = Request::decode(&body).unwrap();
                        if write_frame(&mut s, &reply(&req).encode()).is_err() {
                            break;
                        }
                    }
                }
            }
        });
        addr
    }

    #[test]
    fn lost_window_fails_the_op_instead_of_silently_retrying() {
        let addr = spawn_window_dropper();
        let mut r = ReconnectingRemote::connect(addr, 5)
            .unwrap()
            .with_pipeline(PipelineConfig::default());
        let seg = r.remote_malloc(16, 1).unwrap();
        // The scripted server reads this posted write and hangs up
        // without acknowledging it.
        r.remote_write(seg.id, 0, &[9; 8]).unwrap();
        assert_eq!(r.in_flight(), 1);

        // The next operation trips over the corpse while the window is
        // unconfirmed. A fully working replacement server is accepting on
        // the same address, so a silent retry would *succeed* — the
        // Unavailable below is proof no retry happened.
        let err = r.segment_info(seg.id).unwrap_err();
        assert!(err.is_unavailable(), "lost window surfaces: {err}");
        assert_eq!(r.in_flight(), 0, "the loss was reported and cleared");

        // With the loss on record, re-dialing for new work is fair game.
        assert_eq!(r.segment_info(seg.id).unwrap().id, seg.id);
    }

    #[test]
    fn flush_is_never_retried() {
        let addr = spawn_window_dropper();
        let mut r = ReconnectingRemote::connect(addr, 5)
            .unwrap()
            .with_pipeline(PipelineConfig::default());
        let seg = r.remote_malloc(16, 1).unwrap();
        r.remote_write(seg.id, 0, &[9; 8]).unwrap();

        // The barrier discovers the dead socket. Flushing a re-dialed
        // connection would vacuously pass (the replacement server answers
        // everything), so Unavailable is proof the barrier never retried.
        let err = r.flush().unwrap_err();
        assert!(err.is_unavailable(), "lost window surfaces: {err}");
        // The loss has been surfaced; a second barrier has nothing
        // outstanding to confirm.
        assert_eq!(r.flush().unwrap(), FlushStats::default());
    }

    #[test]
    fn mux_wrapper_survives_a_server_restart_on_the_same_port() {
        let server = Server::bind("muxblinky", "127.0.0.1:0").unwrap().start();
        let node = server.node().clone();
        let addr = server.addr();

        let mut r = ReconnectingRemote::connect_mux(addr, 5).unwrap();
        let seg = r.remote_malloc(16, 1).unwrap();
        r.remote_write(seg.id, 0, &[1; 8]).unwrap();
        r.flush().unwrap();

        server.shutdown();
        let server2 = Server::with_node(node, addr).unwrap().start();

        // The window was clean at the drop: the wrapper re-dials the
        // shared mux transparently and the replacement is a mux session
        // again.
        r.remote_write(seg.id, 8, &[2; 8]).unwrap();
        r.flush().unwrap();
        let mut buf = [0u8; 16];
        r.remote_read(seg.id, 0, &mut buf).unwrap();
        assert_eq!(&buf[..8], &[1; 8]);
        assert_eq!(&buf[8..], &[2; 8]);
        assert!(r.node_name().starts_with("mux://"), "{}", r.node_name());
        server2.shutdown();
    }

    #[test]
    fn mux_lost_window_fails_the_op_instead_of_silently_retrying() {
        let addr = spawn_window_dropper();
        let mut r = ReconnectingRemote::connect_mux(addr, 5).unwrap();
        let seg = r.remote_malloc(16, 1).unwrap();
        // The scripted server reads this posted (mux-wrapped) write and
        // hangs up without acknowledging it.
        r.remote_write(seg.id, 0, &[9; 8]).unwrap();
        assert_eq!(r.in_flight(), 1);

        // A fully working replacement is accepting on the same address,
        // so a silent retry would succeed — Unavailable is proof the
        // lost session window surfaced instead.
        let err = r.segment_info(seg.id).unwrap_err();
        assert!(err.is_unavailable(), "lost window surfaces: {err}");
        assert_eq!(r.in_flight(), 0, "the loss was reported and cleared");

        // With the loss on record, re-dialing for new work is fair game.
        assert_eq!(r.segment_info(seg.id).unwrap().id, seg.id);
    }

    #[test]
    fn mux_flush_is_never_retried() {
        let addr = spawn_window_dropper();
        let mut r = ReconnectingRemote::connect_mux(addr, 5).unwrap();
        let seg = r.remote_malloc(16, 1).unwrap();
        r.remote_write(seg.id, 0, &[9; 8]).unwrap();

        // The barrier discovers the dead shared socket; a re-dialed
        // flush would vacuously pass, so Unavailable proves it did not.
        let err = r.flush().unwrap_err();
        assert!(err.is_unavailable(), "lost window surfaces: {err}");
        assert_eq!(r.flush().unwrap(), FlushStats::default());
    }

    #[test]
    fn successful_ops_do_not_pause() {
        let server = Server::bind("fast", "127.0.0.1:0").unwrap().start();
        let policy = BackoffPolicy::from_millis(1_000, 1_000); // would be visible
        let mut r = ReconnectingRemote::with_backoff(server.addr(), 3, policy).unwrap();
        let clock = SimClock::new();
        r.pace_with_clock(clock.clone());
        let t0 = clock.now();
        let seg = r.remote_malloc(16, 1).unwrap();
        r.remote_write(seg.id, 0, &[9; 16]).unwrap();
        assert_eq!(
            clock.now().duration_since(t0),
            SimDuration::ZERO,
            "first-attempt successes never back off"
        );
        server.shutdown();
    }
}
