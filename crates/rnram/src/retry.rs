//! Automatic reconnection for TCP-backed deployments.
//!
//! A transient network blip between the primary and its mirror should not
//! force a full database recovery. [`ReconnectingRemote`] wraps
//! [`TcpRemote`] and transparently re-dials the server when a socket-level
//! failure occurs, retrying the operation a bounded number of times.
//!
//! Only *connection* failures are retried. Remote refusals (bad segment,
//! out of bounds, unknown tag) are real answers and pass straight
//! through; and because every PERSEAS remote write is idempotent (it
//! writes bytes at an absolute offset), retrying a possibly-delivered
//! write is safe.

use std::net::{SocketAddr, ToSocketAddrs};

use perseas_sci::SegmentId;

use crate::{RemoteMemory, RemoteSegment, RnError, TcpRemote};

/// A [`TcpRemote`] that re-dials the server on socket failures.
#[derive(Debug)]
pub struct ReconnectingRemote {
    addr: SocketAddr,
    inner: Option<TcpRemote>,
    max_attempts: usize,
}

impl ReconnectingRemote {
    /// Connects to `addr`, retrying each future operation up to
    /// `max_attempts` times across reconnects.
    ///
    /// # Errors
    ///
    /// Fails if the initial connection cannot be established.
    ///
    /// # Panics
    ///
    /// Panics if `max_attempts` is zero.
    pub fn connect(addr: impl ToSocketAddrs, max_attempts: usize) -> Result<Self, RnError> {
        assert!(max_attempts > 0, "at least one attempt is required");
        let inner = TcpRemote::connect(&addr)?;
        let addr = inner.peer_addr();
        Ok(ReconnectingRemote {
            addr,
            inner: Some(inner),
            max_attempts,
        })
    }

    /// The server address.
    pub fn peer_addr(&self) -> SocketAddr {
        self.addr
    }

    fn with_conn<T>(
        &mut self,
        mut op: impl FnMut(&mut TcpRemote) -> Result<T, RnError>,
    ) -> Result<T, RnError> {
        let mut last_err: Option<RnError> = None;
        for _ in 0..self.max_attempts {
            if self.inner.is_none() {
                match TcpRemote::connect(self.addr) {
                    Ok(c) => self.inner = Some(c),
                    Err(e) => {
                        last_err = Some(e);
                        continue;
                    }
                }
            }
            let conn = self.inner.as_mut().expect("present");
            match op(conn) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_unavailable() => {
                    // The socket is suspect: drop it and re-dial.
                    self.inner = None;
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| RnError::Protocol("no attempts made".into())))
    }
}

impl RemoteMemory for ReconnectingRemote {
    fn remote_malloc(&mut self, len: usize, tag: u64) -> Result<RemoteSegment, RnError> {
        self.with_conn(|c| c.remote_malloc(len, tag))
    }

    fn remote_free(&mut self, seg: SegmentId) -> Result<(), RnError> {
        self.with_conn(|c| c.remote_free(seg))
    }

    fn remote_write(&mut self, seg: SegmentId, offset: usize, data: &[u8]) -> Result<(), RnError> {
        self.with_conn(|c| c.remote_write(seg, offset, data))
    }

    fn remote_write_v(&mut self, writes: &[(SegmentId, usize, &[u8])]) -> Result<(), RnError> {
        // Safe to retry for the same reason single writes are: every range
        // lands at an absolute offset, so re-sending a possibly-delivered
        // batch is idempotent.
        self.with_conn(|c| c.remote_write_v(writes))
    }

    fn remote_read(
        &mut self,
        seg: SegmentId,
        offset: usize,
        buf: &mut [u8],
    ) -> Result<(), RnError> {
        self.with_conn(|c| c.remote_read(seg, offset, buf))
    }

    fn connect_segment(&mut self, tag: u64) -> Result<RemoteSegment, RnError> {
        self.with_conn(|c| c.connect_segment(tag))
    }

    fn segment_info(&mut self, seg: SegmentId) -> Result<RemoteSegment, RnError> {
        self.with_conn(|c| c.segment_info(seg))
    }

    fn node_name(&self) -> String {
        self.inner
            .as_ref()
            .map(|c| c.node_name())
            .unwrap_or_else(|| format!("tcp://{}", self.addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;

    #[test]
    fn survives_a_server_restart_on_the_same_port() {
        let server = Server::bind("blinky", "127.0.0.1:0").unwrap().start();
        let node = server.node().clone();
        let addr = server.addr();

        let mut r = ReconnectingRemote::connect(addr, 5).unwrap();
        let seg = r.remote_malloc(16, 1).unwrap();
        r.remote_write(seg.id, 0, &[1; 8]).unwrap();

        // The server process restarts on the same port with the same
        // exported memory.
        server.shutdown();
        let server2 = Server::with_node(node, addr).unwrap().start();

        // The wrapped client re-dials transparently.
        r.remote_write(seg.id, 8, &[2; 8]).unwrap();
        let mut buf = [0u8; 16];
        r.remote_read(seg.id, 0, &mut buf).unwrap();
        assert_eq!(&buf[..8], &[1; 8]);
        assert_eq!(&buf[8..], &[2; 8]);
        server2.shutdown();
    }

    #[test]
    fn remote_refusals_are_not_retried() {
        let server = Server::bind("r", "127.0.0.1:0").unwrap().start();
        let mut r = ReconnectingRemote::connect(server.addr(), 3).unwrap();
        let seg = r.remote_malloc(8, 0).unwrap();
        // Out-of-bounds is a real answer, not a transport failure.
        let err = r.remote_write(seg.id, 6, &[0; 8]).unwrap_err();
        assert!(matches!(err, RnError::Remote(_)));
        // Connection is still the original one and healthy.
        r.remote_write(seg.id, 0, &[1; 4]).unwrap();
        server.shutdown();
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let server = Server::bind("gone", "127.0.0.1:0").unwrap().start();
        let addr = server.addr();
        let mut r = ReconnectingRemote::connect(addr, 2).unwrap();
        server.shutdown(); // nobody listening any more
        let err = r.remote_malloc(8, 0).unwrap_err();
        assert!(err.is_unavailable(), "{err}");
        assert_eq!(r.peer_addr(), addr);
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_rejected() {
        let server = Server::bind("z", "127.0.0.1:0").unwrap().start();
        let _ = ReconnectingRemote::connect(server.addr(), 0);
    }
}
