//! Client-side session multiplexing: many logical [`RemoteMemory`]
//! sessions over one shared pipelined TCP connection.
//!
//! The paper's deployment model has *many* workstation clients per memory
//! server; giving each its own socket multiplies file descriptors and
//! server threads. [`SessionMux`] owns one socket and hands out
//! [`MuxSession`] handles — each a full [`RemoteMemory`] with its own
//! sequence space, posted-write window, and refusal queue — whose frames
//! are wrapped in `Mux { session, seq, .. }` (see `docs/PROTOCOL.md`).
//!
//! Concurrency model: one mutex guards the shared socket. The thread
//! holding it while awaiting its own response *routes* every frame it
//! reads — acks of other sessions' posted writes resolve against their
//! windows. Since an RPC holds the lock until its answer arrives, at most
//! one RPC response can ever be in flight, so no parked-response storage
//! is needed; per-session FIFO is the server's ordering guarantee.
//!
//! A dead socket poisons the whole mux: every session's operation returns
//! an unavailable error, and each session's outstanding window stays
//! visible through `in_flight()` so [`crate::ReconnectingRemote`] reports
//! the lost window instead of silently re-dialing. Dropping a
//! [`MuxSession`] sends a best-effort `SessClose` so the server retires
//! the session from its gauge; its straggler acks are ignored by seqless
//! routing of unknown sessions.

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError, Weak};

use perseas_sci::SegmentId;

use crate::protocol::{
    encode_mux, encode_write_mux, encode_write_v_mux, read_frame, write_frame, Request, Response,
};
use crate::tcp::{env_enables_pipeline, PipelineConfig};
use crate::{FlushStats, RemoteMemory, RemoteSegment, RnError, TcpRemote};

/// Environment variable read by [`AnyRemote::connect_auto`]: set it to
/// `1`, `true`, `on`, or `yes` to multiplex logical sessions over shared
/// sockets (one per server address, process-wide); anything else — or
/// unset — selects a dedicated [`TcpRemote`] per connection (whose mode
/// is in turn governed by [`crate::PIPELINE_ENV`]).
pub const MUX_ENV: &str = "PERSEAS_TCP_MUX";

fn lock(io: &Mutex<MuxIo>) -> MutexGuard<'_, MuxIo> {
    io.lock().unwrap_or_else(PoisonError::into_inner)
}

fn dead_err() -> RnError {
    RnError::Io(io::Error::new(
        io::ErrorKind::BrokenPipe,
        "multiplexed connection is dead",
    ))
}

fn unexpected(resp: Response) -> RnError {
    RnError::Protocol(format!("unexpected response: {resp:?}"))
}

/// A typed refusal owed to a posted write, surfaced at the flush barrier.
#[derive(Debug)]
enum Refusal {
    Remote(String),
    Overloaded,
}

impl Refusal {
    fn into_error(self) -> RnError {
        match self {
            Refusal::Remote(m) => RnError::Remote(m),
            Refusal::Overloaded => RnError::Overloaded,
        }
    }
}

/// Per-session pipelining state, the mux twin of the dedicated
/// connection's window bookkeeping.
#[derive(Debug)]
struct SessState {
    cfg: PipelineConfig,
    next_seq: u64,
    /// `(seq, payload_bytes)` of posted writes, oldest first.
    outstanding: VecDeque<(u64, usize)>,
    outstanding_bytes: usize,
    /// Typed refusals earned by posted writes, one surfaced per flush.
    refusals: VecDeque<Refusal>,
}

/// The shared socket and the routing table over it.
#[derive(Debug)]
struct MuxIo {
    stream: TcpStream,
    peer: SocketAddr,
    dead: bool,
    sessions: HashMap<u64, SessState>,
    next_session: u64,
}

impl MuxIo {
    fn take_seq(&mut self, session: u64) -> u64 {
        let st = self.sessions.get_mut(&session).expect("open session");
        let seq = st.next_seq;
        st.next_seq += 1;
        seq
    }

    fn send(&mut self, body: &[u8]) -> Result<(), RnError> {
        if self.dead {
            return Err(dead_err());
        }
        write_frame(&mut self.stream, body).inspect_err(|_| self.dead = true)
    }

    fn read_mux(&mut self) -> Result<(u64, u64, Response), RnError> {
        let body = read_frame(&mut self.stream).inspect_err(|_| self.dead = true)?;
        match Response::decode(&body) {
            Ok(Response::Mux {
                session,
                seq,
                inner,
            }) => Ok((session, seq, *inner)),
            Ok(other) => {
                self.dead = true;
                Err(RnError::Protocol(format!(
                    "expected a mux response, got {other:?}"
                )))
            }
            Err(e) => {
                self.dead = true;
                Err(e)
            }
        }
    }

    /// Reads one frame and routes it: acks of posted writes resolve
    /// against their session's window (refusals queued for that session's
    /// flush); everything else — necessarily the caller's awaited RPC
    /// answer, or a straggler of a closed session (`None`) — is returned.
    fn route_one(&mut self) -> Result<Option<(u64, u64, Response)>, RnError> {
        let (session, seq, inner) = self.read_mux()?;
        let Some(st) = self.sessions.get_mut(&session) else {
            // A closed session's stragglers, including its SessClose ack.
            return Ok(None);
        };
        if let Some(&(front, bytes)) = st.outstanding.front() {
            if seq == front {
                st.outstanding.pop_front();
                st.outstanding_bytes -= bytes;
                match inner {
                    Response::Ok => {}
                    Response::Err(m) => st.refusals.push_back(Refusal::Remote(m)),
                    Response::Overloaded => st.refusals.push_back(Refusal::Overloaded),
                    other => {
                        self.dead = true;
                        return Err(RnError::Protocol(format!(
                            "unexpected posted-write ack payload: {other:?}"
                        )));
                    }
                }
                return Ok(None);
            }
        }
        Ok(Some((session, seq, inner)))
    }

    /// One synchronous request/response exchange for `session`, routing
    /// other sessions' acks along the way.
    fn rpc(&mut self, session: u64, req: &Request) -> Result<Response, RnError> {
        if self.dead {
            return Err(dead_err());
        }
        let seq = self.take_seq(session);
        self.send(&encode_mux(session, seq, req))?;
        loop {
            match self.route_one()? {
                None => {}
                Some((s, q, resp)) if s == session && q == seq => return Ok(resp),
                Some((s, q, _)) => {
                    self.dead = true;
                    return Err(RnError::Protocol(format!(
                        "response for session {s} seq {q} while awaiting \
                         session {session} seq {seq}"
                    )));
                }
            }
        }
    }

    /// Posts an already-encoded, mux-wrapped write without waiting for
    /// its acknowledgement, draining acks (of any session) until this
    /// session's window has room.
    fn post(&mut self, session: u64, body: &[u8], seq: u64, bytes: usize) -> Result<(), RnError> {
        if self.dead {
            return Err(dead_err());
        }
        loop {
            let st = self.sessions.get(&session).expect("open session");
            let fits = st.outstanding.len() < st.cfg.max_ops
                && (st.outstanding.is_empty() || st.outstanding_bytes + bytes <= st.cfg.max_bytes);
            if fits {
                break;
            }
            if let Some((s, q, _)) = self.route_one()? {
                self.dead = true;
                return Err(RnError::Protocol(format!(
                    "unsolicited response for session {s} seq {q}"
                )));
            }
        }
        self.send(body)?;
        let st = self.sessions.get_mut(&session).expect("open session");
        st.outstanding.push_back((seq, bytes));
        st.outstanding_bytes += bytes;
        Ok(())
    }

    /// The ack barrier for one session: drains until its window is empty,
    /// then surfaces one queued refusal. On a socket error the window
    /// stays recorded so `in_flight()` keeps reporting the lost writes.
    fn flush_session(&mut self, session: u64) -> Result<FlushStats, RnError> {
        let st = self.sessions.get(&session).expect("open session");
        let stats = FlushStats {
            posted: st.outstanding.len(),
            bytes: st.outstanding_bytes,
        };
        while !self.sessions[&session].outstanding.is_empty() {
            if self.dead {
                return Err(dead_err());
            }
            if let Some((s, q, _)) = self.route_one()? {
                self.dead = true;
                return Err(RnError::Protocol(format!(
                    "unsolicited response for session {s} seq {q} during flush"
                )));
            }
        }
        let st = self.sessions.get_mut(&session).expect("open session");
        if let Some(r) = st.refusals.pop_front() {
            return Err(r.into_error());
        }
        Ok(stats)
    }

    /// Retires a session: its straggler acks will be ignored, and the
    /// server is told (best-effort) so its sessions gauge drops.
    fn close_session(&mut self, session: u64) {
        if let Some(st) = self.sessions.remove(&session) {
            if !self.dead {
                let _ = self.send(&encode_mux(session, st.next_seq, &Request::SessClose));
            }
        }
    }
}

/// One shared multiplexed connection; hand out per-session
/// [`RemoteMemory`] handles with [`SessionMux::session`].
#[derive(Debug, Clone)]
pub struct SessionMux {
    io: Arc<Mutex<MuxIo>>,
}

impl SessionMux {
    /// Dials a dedicated multiplexed connection to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<SessionMux, RnError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        Ok(SessionMux {
            io: Arc::new(Mutex::new(MuxIo {
                stream,
                peer,
                dead: false,
                sessions: HashMap::new(),
                next_session: 0,
            })),
        })
    }

    /// Returns the process-wide shared mux for `addr`, dialing one if none
    /// exists (or if the cached one is dead). This is how
    /// `ConcurrentPerseas` threads and `ShardedPerseas` shard connections
    /// end up sharing sockets instead of multiplying them.
    ///
    /// # Errors
    ///
    /// Propagates socket and address-resolution errors.
    pub fn shared(addr: impl ToSocketAddrs) -> Result<SessionMux, RnError> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            RnError::Io(io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                "address resolved to nothing",
            ))
        })?;
        let reg = mux_registry();
        let mut reg = reg.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(existing) = reg.get(&addr).and_then(Weak::upgrade) {
            if !lock(&existing).dead {
                return Ok(SessionMux { io: existing });
            }
        }
        let mux = SessionMux::connect(addr)?;
        reg.insert(addr, Arc::downgrade(&mux.io));
        Ok(mux)
    }

    /// Opens a logical session with the default posted-write window.
    pub fn session(&self) -> MuxSession {
        self.session_with(PipelineConfig::default())
    }

    /// Opens a logical session with an explicit window configuration.
    pub fn session_with(&self, cfg: PipelineConfig) -> MuxSession {
        let mut g = lock(&self.io);
        let session = g.next_session;
        g.next_session += 1;
        g.sessions.insert(
            session,
            SessState {
                cfg: PipelineConfig {
                    max_ops: cfg.max_ops.max(1),
                    max_bytes: cfg.max_bytes.max(1),
                },
                next_seq: 0,
                outstanding: VecDeque::new(),
                outstanding_bytes: 0,
                refusals: VecDeque::new(),
            },
        );
        MuxSession {
            io: self.io.clone(),
            session,
            cached_name: None,
        }
    }

    /// The server address the shared socket is connected to.
    pub fn peer_addr(&self) -> SocketAddr {
        lock(&self.io).peer
    }

    /// Whether the shared socket has failed (every session sees errors).
    pub fn is_dead(&self) -> bool {
        lock(&self.io).dead
    }

    /// Currently open logical sessions on this connection.
    pub fn open_sessions(&self) -> usize {
        lock(&self.io).sessions.len()
    }
}

/// The process-wide `addr -> shared mux` table behind
/// [`SessionMux::shared`]. Weak entries let an unused mux close its
/// socket; a dead one is replaced on the next lookup.
fn mux_registry() -> &'static Mutex<HashMap<SocketAddr, Weak<Mutex<MuxIo>>>> {
    static REG: OnceLock<Mutex<HashMap<SocketAddr, Weak<Mutex<MuxIo>>>>> = OnceLock::new();
    REG.get_or_init(Mutex::default)
}

/// One logical client session multiplexed over a shared socket: a full
/// [`RemoteMemory`] with its own sequence space, posted-write window, and
/// refusal queue. Created by [`SessionMux::session`]; dropping it retires
/// the session on the server.
#[derive(Debug)]
pub struct MuxSession {
    io: Arc<Mutex<MuxIo>>,
    session: u64,
    cached_name: Option<String>,
}

impl MuxSession {
    fn guard(&self) -> MutexGuard<'_, MuxIo> {
        lock(&self.io)
    }

    /// This session's id on the wire.
    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// The server address of the shared socket.
    pub fn peer_addr(&self) -> SocketAddr {
        self.guard().peer
    }

    /// Sends a liveness probe through this session.
    ///
    /// # Errors
    ///
    /// Fails if the server is unreachable.
    pub fn ping(&mut self) -> Result<(), RnError> {
        match self.guard().rpc(self.session, &Request::Ping)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches and caches the server's node name.
    ///
    /// # Errors
    ///
    /// Fails if the server is unreachable.
    pub fn fetch_name(&mut self) -> Result<String, RnError> {
        let resp = self.guard().rpc(self.session, &Request::Name)?;
        match resp {
            Response::Name(n) => {
                self.cached_name = Some(n.clone());
                Ok(n)
            }
            Response::Err(m) => Err(RnError::Remote(m)),
            other => Err(unexpected(other)),
        }
    }

    fn expect_segment(&mut self, req: &Request) -> Result<RemoteSegment, RnError> {
        match self.guard().rpc(self.session, req)? {
            Response::Segment {
                seg,
                len,
                tag,
                base_addr,
            } => Ok(RemoteSegment {
                id: SegmentId::from_raw(seg),
                len: len as usize,
                tag,
                base_addr,
            }),
            Response::Err(m) => Err(RnError::Remote(m)),
            Response::Overloaded => Err(RnError::Overloaded),
            other => Err(unexpected(other)),
        }
    }
}

impl Drop for MuxSession {
    fn drop(&mut self) {
        self.guard().close_session(self.session);
    }
}

impl RemoteMemory for MuxSession {
    fn remote_malloc(&mut self, len: usize, tag: u64) -> Result<RemoteSegment, RnError> {
        self.expect_segment(&Request::Malloc {
            len: len as u64,
            tag,
        })
    }

    fn remote_free(&mut self, seg: SegmentId) -> Result<(), RnError> {
        match self
            .guard()
            .rpc(self.session, &Request::Free { seg: seg.as_raw() })?
        {
            Response::Ok => Ok(()),
            Response::Err(m) => Err(RnError::Remote(m)),
            Response::Overloaded => Err(RnError::Overloaded),
            other => Err(unexpected(other)),
        }
    }

    fn remote_write(&mut self, seg: SegmentId, offset: usize, data: &[u8]) -> Result<(), RnError> {
        // Posted, like the dedicated pipelined transport: the frame is
        // encoded straight from the borrowed payload and confirmed at the
        // flush barrier.
        let mut g = self.guard();
        if g.dead {
            return Err(dead_err());
        }
        let seq = g.take_seq(self.session);
        let body = encode_write_mux(self.session, seq, seg.as_raw(), offset as u64, data);
        g.post(self.session, &body, seq, data.len())
    }

    fn remote_write_v(&mut self, writes: &[(SegmentId, usize, &[u8])]) -> Result<(), RnError> {
        let ranges: Vec<(u64, u64, &[u8])> = writes
            .iter()
            .map(|&(seg, offset, data)| (seg.as_raw(), offset as u64, data))
            .collect();
        let mut g = self.guard();
        if g.dead {
            return Err(dead_err());
        }
        let seq = g.take_seq(self.session);
        let body = encode_write_v_mux(self.session, seq, &ranges);
        let bytes = ranges.iter().map(|(_, _, d)| d.len()).sum();
        g.post(self.session, &body, seq, bytes)
    }

    fn flush(&mut self) -> Result<FlushStats, RnError> {
        self.guard().flush_session(self.session)
    }

    fn in_flight(&self) -> usize {
        self.guard()
            .sessions
            .get(&self.session)
            .map_or(0, |st| st.outstanding.len())
    }

    fn remote_read(
        &mut self,
        seg: SegmentId,
        offset: usize,
        buf: &mut [u8],
    ) -> Result<(), RnError> {
        match self.guard().rpc(
            self.session,
            &Request::Read {
                seg: seg.as_raw(),
                offset: offset as u64,
                len: buf.len() as u64,
            },
        )? {
            Response::Data(d) if d.len() == buf.len() => {
                buf.copy_from_slice(&d);
                Ok(())
            }
            Response::Data(d) => Err(RnError::Protocol(format!(
                "short read: wanted {} bytes, got {}",
                buf.len(),
                d.len()
            ))),
            Response::Err(m) => Err(RnError::Remote(m)),
            Response::Overloaded => Err(RnError::Overloaded),
            other => Err(unexpected(other)),
        }
    }

    fn remote_read_v(
        &mut self,
        reads: &[(SegmentId, usize, usize)],
    ) -> Result<Vec<Vec<u8>>, RnError> {
        match self.guard().rpc(
            self.session,
            &Request::ReadV {
                reads: reads
                    .iter()
                    .map(|&(seg, offset, len)| (seg.as_raw(), offset as u64, len as u64))
                    .collect(),
            },
        )? {
            Response::DataV(bufs) => crate::tcp::check_data_v(reads, bufs),
            Response::Err(m) => Err(RnError::Remote(m)),
            Response::Overloaded => Err(RnError::Overloaded),
            other => Err(unexpected(other)),
        }
    }

    fn connect_segment(&mut self, tag: u64) -> Result<RemoteSegment, RnError> {
        self.expect_segment(&Request::Connect { tag })
            .map_err(|e| match e {
                RnError::Remote(_) => RnError::TagNotFound(tag),
                other => other,
            })
    }

    fn segment_info(&mut self, seg: SegmentId) -> Result<RemoteSegment, RnError> {
        self.expect_segment(&Request::Info { seg: seg.as_raw() })
    }

    fn node_name(&self) -> String {
        self.cached_name
            .clone()
            .unwrap_or_else(|| format!("mux://{}#{}", self.guard().peer, self.session))
    }
}

/// Whether [`MUX_ENV`] selects the multiplexed transport.
pub(crate) fn env_enables_mux() -> bool {
    env_enables_pipeline(std::env::var(MUX_ENV).ok().as_deref())
}

/// Either transport behind one [`RemoteMemory`] value: a dedicated
/// [`TcpRemote`] (synchronous or pipelined, per [`crate::PIPELINE_ENV`])
/// or a [`MuxSession`] on the process-wide shared mux (per [`MUX_ENV`]).
/// The hook the test suites use to run the same scenarios over every
/// transport.
#[derive(Debug)]
pub enum AnyRemote {
    /// A dedicated socket.
    Tcp(TcpRemote),
    /// A logical session on a shared multiplexed socket.
    Mux(MuxSession),
}

impl AnyRemote {
    /// Connects in the mode selected by [`MUX_ENV`] and
    /// [`crate::PIPELINE_ENV`].
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect_auto(addr: impl ToSocketAddrs) -> Result<AnyRemote, RnError> {
        if env_enables_mux() {
            Ok(AnyRemote::Mux(SessionMux::shared(addr)?.session()))
        } else {
            Ok(AnyRemote::Tcp(TcpRemote::connect_auto(addr)?))
        }
    }

    /// Whether this handle rides a shared multiplexed socket.
    pub fn is_mux(&self) -> bool {
        matches!(self, AnyRemote::Mux(_))
    }

    /// Fetches the server's node name over the wire (and caches it as
    /// the connection's [`RemoteMemory::node_name`]).
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    pub fn fetch_name(&mut self) -> Result<String, RnError> {
        match self {
            AnyRemote::Tcp(c) => c.fetch_name(),
            AnyRemote::Mux(c) => c.fetch_name(),
        }
    }
}

impl RemoteMemory for AnyRemote {
    fn remote_malloc(&mut self, len: usize, tag: u64) -> Result<RemoteSegment, RnError> {
        match self {
            AnyRemote::Tcp(c) => c.remote_malloc(len, tag),
            AnyRemote::Mux(c) => c.remote_malloc(len, tag),
        }
    }

    fn remote_free(&mut self, seg: SegmentId) -> Result<(), RnError> {
        match self {
            AnyRemote::Tcp(c) => c.remote_free(seg),
            AnyRemote::Mux(c) => c.remote_free(seg),
        }
    }

    fn remote_write(&mut self, seg: SegmentId, offset: usize, data: &[u8]) -> Result<(), RnError> {
        match self {
            AnyRemote::Tcp(c) => c.remote_write(seg, offset, data),
            AnyRemote::Mux(c) => c.remote_write(seg, offset, data),
        }
    }

    fn remote_write_v(&mut self, writes: &[(SegmentId, usize, &[u8])]) -> Result<(), RnError> {
        match self {
            AnyRemote::Tcp(c) => c.remote_write_v(writes),
            AnyRemote::Mux(c) => c.remote_write_v(writes),
        }
    }

    fn flush(&mut self) -> Result<FlushStats, RnError> {
        match self {
            AnyRemote::Tcp(c) => c.flush(),
            AnyRemote::Mux(c) => c.flush(),
        }
    }

    fn in_flight(&self) -> usize {
        match self {
            AnyRemote::Tcp(c) => c.in_flight(),
            AnyRemote::Mux(c) => c.in_flight(),
        }
    }

    fn remote_read(
        &mut self,
        seg: SegmentId,
        offset: usize,
        buf: &mut [u8],
    ) -> Result<(), RnError> {
        match self {
            AnyRemote::Tcp(c) => c.remote_read(seg, offset, buf),
            AnyRemote::Mux(c) => c.remote_read(seg, offset, buf),
        }
    }

    fn remote_read_v(
        &mut self,
        reads: &[(SegmentId, usize, usize)],
    ) -> Result<Vec<Vec<u8>>, RnError> {
        match self {
            AnyRemote::Tcp(c) => c.remote_read_v(reads),
            AnyRemote::Mux(c) => c.remote_read_v(reads),
        }
    }

    fn connect_segment(&mut self, tag: u64) -> Result<RemoteSegment, RnError> {
        match self {
            AnyRemote::Tcp(c) => c.connect_segment(tag),
            AnyRemote::Mux(c) => c.connect_segment(tag),
        }
    }

    fn segment_info(&mut self, seg: SegmentId) -> Result<RemoteSegment, RnError> {
        match self {
            AnyRemote::Tcp(c) => c.segment_info(seg),
            AnyRemote::Mux(c) => c.segment_info(seg),
        }
    }

    fn node_name(&self) -> String {
        match self {
            AnyRemote::Tcp(c) => c.node_name(),
            AnyRemote::Mux(c) => c.node_name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::Server;

    #[test]
    fn two_sessions_share_one_socket() {
        let registry = perseas_obs::Registry::new();
        let server = Server::bind("muxed", "127.0.0.1:0")
            .unwrap()
            .with_metrics(&registry)
            .start();
        let mux = SessionMux::connect(server.addr()).unwrap();
        let mut a = mux.session();
        let mut b = mux.session();
        assert_ne!(a.session_id(), b.session_id());
        assert_eq!(mux.open_sessions(), 2);

        let seg = a.remote_malloc(64, 7).unwrap();
        a.remote_write(seg.id, 0, b"from a").unwrap();
        a.flush().unwrap();
        // Session b observes a's writes through the shared memory.
        let found = b.connect_segment(7).unwrap();
        let mut buf = [0u8; 6];
        b.remote_read(found.id, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"from a");
        assert_eq!(b.fetch_name().unwrap(), "muxed");

        // Both sessions rode exactly one TCP connection.
        let text = registry.render();
        assert!(
            text.contains("perseas_server_connections_total 1"),
            "expected one accepted connection: {text}"
        );
        drop(a);
        drop(b);
        server.shutdown();
    }

    #[test]
    fn posted_refusals_stay_with_their_session() {
        let server = Server::bind("routes", "127.0.0.1:0").unwrap().start();
        let mux = SessionMux::connect(server.addr()).unwrap();
        let mut a = mux.session();
        let mut b = mux.session();
        let seg = a.remote_malloc(8, 0).unwrap();
        // a posts an out-of-bounds write; b posts a valid one.
        a.remote_write(seg.id, 100, &[1]).unwrap();
        b.remote_write(seg.id, 0, &[2]).unwrap();
        // b's barrier is clean even though a's refusal is in the pipe.
        b.flush().unwrap();
        assert!(matches!(a.flush(), Err(RnError::Remote(_))));
        a.flush().unwrap();
        let mut buf = [0u8; 1];
        b.remote_read(seg.id, 0, &mut buf).unwrap();
        assert_eq!(buf, [2]);
        server.shutdown();
    }

    #[test]
    fn rpc_routes_other_sessions_posted_acks() {
        let server = Server::bind("routing", "127.0.0.1:0").unwrap().start();
        let mux = SessionMux::connect(server.addr()).unwrap();
        let mut a = mux.session();
        let mut b = mux.session();
        let seg = a.remote_malloc(128, 0).unwrap();
        for i in 0..16u8 {
            a.remote_write(seg.id, usize::from(i), &[i]).unwrap();
        }
        assert!(a.in_flight() > 0);
        // b's synchronous read arrives behind a's posted writes on the
        // wire; their acks are routed to a's window while b waits.
        let mut buf = [0u8; 16];
        b.remote_read(seg.id, 0, &mut buf).unwrap();
        assert_eq!(buf[15], 15);
        assert_eq!(a.in_flight(), 0, "b's wait drained a's acks");
        a.flush().unwrap();
        server.shutdown();
    }

    #[test]
    fn session_window_is_bounded_independently() {
        let server = Server::bind("window", "127.0.0.1:0").unwrap().start();
        let mux = SessionMux::connect(server.addr()).unwrap();
        let mut small = mux.session_with(PipelineConfig {
            max_ops: 2,
            max_bytes: 1 << 20,
        });
        let seg = small.remote_malloc(64, 0).unwrap();
        for i in 0..10u8 {
            small.remote_write(seg.id, usize::from(i), &[i]).unwrap();
            assert!(small.in_flight() <= 2, "window stays bounded");
        }
        small.flush().unwrap();
        let mut buf = [0u8; 10];
        small.remote_read(seg.id, 0, &mut buf).unwrap();
        assert_eq!(buf, [0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        server.shutdown();
    }

    #[test]
    fn dropping_a_session_mid_window_leaves_others_unaffected() {
        let server = Server::bind("dropper", "127.0.0.1:0").unwrap().start();
        let mux = SessionMux::connect(server.addr()).unwrap();
        let mut doomed = mux.session();
        let mut survivor = mux.session();
        let seg = survivor.remote_malloc(64, 0).unwrap();
        doomed.remote_write(seg.id, 0, &[9; 8]).unwrap();
        assert_eq!(doomed.in_flight(), 1);
        drop(doomed); // dies with its window in flight
        survivor.remote_write(seg.id, 8, &[3; 8]).unwrap();
        survivor.flush().unwrap();
        let mut buf = [0u8; 8];
        survivor.remote_read(seg.id, 8, &mut buf).unwrap();
        assert_eq!(buf, [3; 8]);
        assert_eq!(mux.open_sessions(), 1);
        server.shutdown();
    }

    #[test]
    fn dead_socket_keeps_the_window_visible() {
        let server = Server::bind("dies", "127.0.0.1:0").unwrap().start();
        let mux = SessionMux::connect(server.addr()).unwrap();
        let mut s = mux.session();
        let seg = s.remote_malloc(64, 0).unwrap();
        server.shutdown();
        let mut posted = 0;
        for i in 0..4u8 {
            if s.remote_write(seg.id, usize::from(i), &[i]).is_ok() {
                posted += 1;
            }
        }
        if posted > 0 {
            let err = s.flush().unwrap_err();
            assert!(err.is_unavailable(), "barrier reports the dead link: {err}");
            assert!(s.in_flight() > 0, "lost window stays visible");
            assert!(mux.is_dead());
        }
        // Every later operation on the dead mux fails fast.
        assert!(s.ping().unwrap_err().is_unavailable());
    }

    #[test]
    fn shared_registry_reuses_live_connections() {
        let registry = perseas_obs::Registry::new();
        let server = Server::bind("pool", "127.0.0.1:0")
            .unwrap()
            .with_metrics(&registry)
            .start();
        let m1 = SessionMux::shared(server.addr()).unwrap();
        let m2 = SessionMux::shared(server.addr()).unwrap();
        let mut a = m1.session();
        let mut b = m2.session();
        a.ping().unwrap();
        b.ping().unwrap();
        assert!(registry
            .render()
            .contains("perseas_server_connections_total 1"));
        drop((a, b, m1, m2));
        server.shutdown();
    }

    #[test]
    fn shared_registry_redials_after_death() {
        let server = Server::bind("phoenix", "127.0.0.1:0").unwrap().start();
        let addr = server.addr();
        let node = server.node().clone();
        let m1 = SessionMux::shared(addr).unwrap();
        let mut s1 = m1.session();
        s1.ping().unwrap();
        server.shutdown();
        assert!(s1.ping().is_err());
        assert!(m1.is_dead());
        // A new server on the same port: the registry replaces the corpse.
        let server2 = Server::with_node(node, addr).unwrap().start();
        let m2 = SessionMux::shared(addr).unwrap();
        let mut s2 = m2.session();
        s2.ping().unwrap();
        server2.shutdown();
    }

    #[test]
    fn overload_surfaces_as_typed_refusal_through_sessions() {
        let server = Server::bind("tight", "127.0.0.1:0")
            .unwrap()
            .with_admission(crate::server::AdmissionConfig {
                max_inflight: 1,
                max_queue: 1,
            })
            .with_request_latency(std::time::Duration::from_millis(150))
            .start();
        let mux = SessionMux::connect(server.addr()).unwrap();
        let mut s = mux.session();
        let seg = s.remote_malloc(64, 0).unwrap();
        // Burst past inflight+queue: the overflow is refused typed, and
        // the refusal surfaces at the barrier as RnError::Overloaded.
        for i in 0..6u8 {
            s.remote_write(seg.id, usize::from(i), &[i]).unwrap();
        }
        let mut overloaded = 0;
        loop {
            match s.flush() {
                Ok(_) => break,
                Err(RnError::Overloaded) => overloaded += 1,
                Err(e) => panic!("unexpected flush error: {e}"),
            }
        }
        assert!(overloaded > 0, "burst should overflow the admission queue");
        // Relief: after the queue drains, new work is admitted again.
        s.remote_write(seg.id, 6, &[6]).unwrap();
        s.flush().unwrap();
        server.shutdown();
    }
}
