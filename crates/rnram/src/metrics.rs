//! Metrics bundles for the TCP server and the pipelined client.
//!
//! Installed with [`Server::with_metrics`](crate::server::Server::with_metrics)
//! and [`TcpRemote::set_metrics`](crate::TcpRemote::set_metrics); without
//! them the hot paths pay one `Option` branch per operation. The metric
//! names are part of the stable contract in `docs/OBSERVABILITY.md`.

use perseas_obs::{Counter, Gauge, Histo, Registry};

/// Per-opcode request counter and service-latency histogram.
#[derive(Debug)]
pub(crate) struct OpMetrics {
    pub(crate) requests: Counter,
    pub(crate) latency: Histo,
}

/// The opcode label values the server registers up front. `seq`-wrapped
/// requests are attributed to their inner opcode; undecodable frames get
/// their own bucket so a fuzzing client is visible in the metrics.
pub(crate) const SERVER_OPS: [&str; 12] = [
    "malloc",
    "free",
    "write",
    "read",
    "write_v",
    "connect",
    "info",
    "name",
    "ping",
    "shutdown",
    "sess_close",
    "decode_error",
];

/// Server-side metrics: per-opcode request latency, bytes in/out, and
/// connection churn.
#[derive(Debug)]
pub(crate) struct ServerMetrics {
    ops: Vec<(&'static str, OpMetrics)>,
    pub(crate) bytes_in: Counter,
    pub(crate) bytes_out: Counter,
    pub(crate) connections: Gauge,
    pub(crate) connections_total: Counter,
    pub(crate) connections_dropped: Counter,
    /// Logical multiplexed sessions currently open across all connections.
    pub(crate) sessions: Gauge,
    /// Requests refused with [`Response::Overloaded`] because the shared
    /// admission queue was full.
    pub(crate) admission_refusals: Counter,
    /// Requests parked in the admission queue right now (received but not
    /// yet applied to memory).
    pub(crate) mux_queue_depth: Gauge,
    /// Requests admitted (applied) whose responses have not finished
    /// going out — occupancy of the shared window pool.
    pub(crate) mux_inflight: Gauge,
}

impl ServerMetrics {
    pub(crate) fn new(registry: &Registry) -> ServerMetrics {
        let ops = SERVER_OPS
            .iter()
            .map(|&op| {
                (
                    op,
                    OpMetrics {
                        requests: registry.counter_with(
                            "perseas_server_requests_total",
                            "Requests served, by opcode.",
                            &[("op", op)],
                        ),
                        latency: registry.histogram_with(
                            "perseas_server_request_seconds",
                            "Request service latency (decode + apply + encode, excluding injected response latency), by opcode.",
                            &[("op", op)],
                        ),
                    },
                )
            })
            .collect();
        ServerMetrics {
            ops,
            bytes_in: registry.counter(
                "perseas_server_bytes_in_total",
                "Request frame-body bytes received.",
            ),
            bytes_out: registry.counter(
                "perseas_server_bytes_out_total",
                "Response frame-body bytes sent (or queued for delayed send).",
            ),
            connections: registry.gauge(
                "perseas_server_connections",
                "Client connections currently being served.",
            ),
            connections_total: registry.counter(
                "perseas_server_connections_total",
                "Client connections accepted.",
            ),
            connections_dropped: registry.counter(
                "perseas_server_connections_dropped_total",
                "Connections that ended in a transport or protocol error instead of a clean EOF.",
            ),
            sessions: registry.gauge(
                "perseas_server_sessions",
                "Logical multiplexed client sessions currently open.",
            ),
            admission_refusals: registry.counter(
                "perseas_server_admission_refusals_total",
                "Requests refused as Overloaded because the admission queue was full.",
            ),
            mux_queue_depth: registry.gauge(
                "perseas_server_mux_queue_depth",
                "Requests waiting in the admission queue (received, not yet applied).",
            ),
            mux_inflight: registry.gauge(
                "perseas_server_mux_inflight",
                "Admitted requests whose responses are still in flight.",
            ),
        }
    }

    /// Handles for opcode `name` (must be one of [`SERVER_OPS`]).
    pub(crate) fn op(&self, name: &str) -> &OpMetrics {
        self.ops
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, m)| m)
            .expect("opcode registered in SERVER_OPS")
    }
}

/// Client-side metrics for the (optionally pipelined) TCP transport.
#[derive(Debug)]
pub(crate) struct ClientMetrics {
    /// Synchronous round trips (request + awaited response).
    pub(crate) ops: Counter,
    /// Writes posted without waiting for their acknowledgement.
    pub(crate) posted: Counter,
    /// Frame-body bytes put on the wire (both modes).
    pub(crate) bytes: Counter,
    /// Posts that found the window full and had to drain an ack first.
    pub(crate) window_stalls: Counter,
    pub(crate) flush_barriers: Counter,
    pub(crate) flush_posted: Counter,
    pub(crate) flush_bytes: Counter,
    /// Current posted-but-unacknowledged operations (window occupancy).
    pub(crate) in_flight: Gauge,
}

impl ClientMetrics {
    pub(crate) fn new(registry: &Registry) -> ClientMetrics {
        ClientMetrics {
            ops: registry.counter(
                "perseas_client_ops_total",
                "Synchronous request/response round trips.",
            ),
            posted: registry.counter(
                "perseas_client_posted_total",
                "Writes posted to the in-flight window without waiting.",
            ),
            bytes: registry.counter(
                "perseas_client_bytes_total",
                "Request frame-body bytes sent.",
            ),
            window_stalls: registry.counter(
                "perseas_client_window_stalls_total",
                "Posts that blocked on a full window until an ack drained.",
            ),
            flush_barriers: registry.counter(
                "perseas_client_flush_barriers_total",
                "Ack barriers (flush calls) on a pipelined connection.",
            ),
            flush_posted: registry.counter(
                "perseas_client_flush_posted_total",
                "Posted operations confirmed by flush barriers.",
            ),
            flush_bytes: registry.counter(
                "perseas_client_flush_bytes_total",
                "Posted payload bytes confirmed by flush barriers.",
            ),
            in_flight: registry.gauge(
                "perseas_client_in_flight",
                "Posted-but-unacknowledged operations in the window right now.",
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_ops_are_preregistered_and_resolvable() {
        let registry = Registry::new();
        let m = ServerMetrics::new(&registry);
        for op in SERVER_OPS {
            m.op(op).requests.inc();
        }
        let text = registry.render();
        for op in SERVER_OPS {
            assert!(
                text.contains(&format!("perseas_server_requests_total{{op=\"{op}\"}} 1")),
                "{op} missing from exposition"
            );
        }
    }

    #[test]
    fn mux_metrics_render_under_their_documented_names() {
        let registry = Registry::new();
        let m = ServerMetrics::new(&registry);
        m.sessions.add(3);
        m.admission_refusals.inc();
        m.mux_queue_depth.add(2);
        m.mux_inflight.add(1);
        let text = registry.render();
        for line in [
            "perseas_server_sessions 3",
            "perseas_server_admission_refusals_total 1",
            "perseas_server_mux_queue_depth 2",
            "perseas_server_mux_inflight 1",
        ] {
            assert!(text.contains(line), "{line} missing from exposition");
        }
    }

    #[test]
    #[should_panic(expected = "opcode registered")]
    fn unknown_opcode_panics() {
        let registry = Registry::new();
        let m = ServerMetrics::new(&registry);
        let _ = m.op("frobnicate");
    }
}
