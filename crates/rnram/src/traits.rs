//! The client-side interface to a remote node's memory.

use serde::{Deserialize, Serialize};

use perseas_sci::{SegmentId, SegmentInfo};
use perseas_simtime::SimClock;

use crate::RnError;

/// A remote memory segment as seen by the client after `remote_malloc` or
/// `connect_segment` (the paper's mapping of remote physical memory into
/// the local virtual address space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemoteSegment {
    /// Identifier used in subsequent operations.
    pub id: SegmentId,
    /// Length in bytes.
    pub len: usize,
    /// The client-chosen tag (recovery handle).
    pub tag: u64,
    /// Base "physical" address on the remote node; determines SCI buffer
    /// alignment and therefore write latency.
    pub base_addr: u64,
}

impl From<SegmentInfo> for RemoteSegment {
    fn from(i: SegmentInfo) -> Self {
        RemoteSegment {
            id: i.id,
            len: i.len,
            tag: i.tag,
            base_addr: i.base_addr,
        }
    }
}

/// What a [`RemoteMemory::flush`] barrier confirmed: how many previously
/// posted (unacknowledged) operations it awaited and how many payload
/// bytes they carried. Backends that acknowledge every operation inline
/// — the simulated SCI mapping, the synchronous TCP client — never have
/// anything posted, so their barriers report zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushStats {
    /// Operations that were in flight when the barrier started.
    pub posted: usize,
    /// Payload bytes those operations carried.
    pub bytes: usize,
}

/// The reliable-network-RAM operations of the paper, Section 3:
/// remote malloc, remote free, remote memory copy (split into its write and
/// read directions), plus the recovery-time `sci_connect_segment`.
///
/// Implementations: [`crate::SimRemote`] (simulated SCI, virtual time) and
/// [`crate::TcpRemote`] (real sockets).
pub trait RemoteMemory: Send {
    /// Allocates a zero-filled remote segment of `len` bytes, tagging it
    /// with `tag` so it can be found again after a local crash.
    ///
    /// # Errors
    ///
    /// Fails if the remote node is out of memory or unreachable.
    fn remote_malloc(&mut self, len: usize, tag: u64) -> Result<RemoteSegment, RnError>;

    /// Releases remote segment `seg`.
    ///
    /// # Errors
    ///
    /// Fails if the segment is unknown or the node is unreachable.
    fn remote_free(&mut self, seg: SegmentId) -> Result<(), RnError>;

    /// Copies `data` into the remote segment at `offset` (local → remote
    /// direction of the paper's *remote memory copy*).
    ///
    /// # Errors
    ///
    /// Fails on bounds violations or if the node is unreachable; on a cut
    /// link a prefix of the data may have been delivered.
    fn remote_write(&mut self, seg: SegmentId, offset: usize, data: &[u8]) -> Result<(), RnError>;

    /// Scatter-gather write: copies several `(segment, offset, data)`
    /// ranges to the remote node as one operation.
    ///
    /// Backends that can coalesce (the simulated SCI link, the TCP wire
    /// protocol) send the whole batch as a single message with a single
    /// acknowledgement; the default implementation degrades to one
    /// [`RemoteMemory::remote_write`] per range. Ranges are applied in
    /// order, so a failure mid-batch leaves every earlier range fully
    /// applied and later ranges untouched — the same torn-prefix contract
    /// as a cut link.
    ///
    /// # Errors
    ///
    /// Fails on bounds violations or if the node is unreachable; a prefix
    /// of the batch may have been delivered.
    fn remote_write_v(&mut self, writes: &[(SegmentId, usize, &[u8])]) -> Result<(), RnError> {
        for &(seg, offset, data) in writes {
            self.remote_write(seg, offset, data)?;
        }
        Ok(())
    }

    /// Ack barrier: blocks until every operation this backend has
    /// *posted* without waiting for its acknowledgement is confirmed by
    /// the remote node (the paper's "write now, confirm at the commit
    /// point" shape over a real network).
    ///
    /// Backends that confirm every operation inline — the simulated SCI
    /// mapping, the synchronous TCP client — have nothing outstanding, so
    /// the default implementation is a free no-op reporting zero posted
    /// operations. The pipelined TCP client
    /// ([`crate::TcpRemote::connect_pipelined`]) overrides it to drain
    /// its in-flight window.
    ///
    /// # Errors
    ///
    /// Fails `Unavailable` when the connection died with operations still
    /// unconfirmed (the caller must treat the whole window as lost), or
    /// with the first typed refusal a posted operation earned; each call
    /// surfaces one queued refusal, so callers loop until `Ok` to drain
    /// them all.
    fn flush(&mut self) -> Result<FlushStats, RnError> {
        Ok(FlushStats::default())
    }

    /// Number of posted operations not yet confirmed (zero for backends
    /// that acknowledge inline). A reconnect wrapper must never silently
    /// re-dial a connection that dies with `in_flight() > 0`: the lost
    /// window cannot be replayed.
    fn in_flight(&self) -> usize {
        0
    }

    /// The virtual clock this backend charges latency to, if it is a
    /// simulated backend. Real-network backends return `None`.
    ///
    /// Callers fanning one logical operation out to several mirrors use
    /// this to model the mirrors as parallel: charge the shared clock the
    /// *maximum* of the per-mirror latencies rather than their sum.
    fn virtual_clock(&self) -> Option<SimClock> {
        None
    }

    /// Copies remote bytes at `offset` into `buf` (remote → local).
    ///
    /// # Errors
    ///
    /// Fails on bounds violations or if the node is unreachable.
    fn remote_read(&mut self, seg: SegmentId, offset: usize, buf: &mut [u8])
        -> Result<(), RnError>;

    /// Gather read: copies several `(segment, offset, len)` ranges from
    /// the remote node as one operation, returning one buffer per range.
    ///
    /// Backends with a wire protocol (TCP, mux sessions) send the whole
    /// batch as a single request, which the event-driven server answers
    /// atomically with respect to other sessions' writes — the read
    /// counterpart of [`RemoteMemory::remote_write_v`], used by read
    /// replicas to take untearable snapshot cuts. The default
    /// implementation degrades to one [`RemoteMemory::remote_read`] per
    /// range (already atomic on the single-threaded simulated backend).
    ///
    /// # Errors
    ///
    /// Fails on bounds violations or if the node is unreachable; nothing
    /// is returned on failure.
    fn remote_read_v(
        &mut self,
        reads: &[(SegmentId, usize, usize)],
    ) -> Result<Vec<Vec<u8>>, RnError> {
        let mut bufs = Vec::with_capacity(reads.len());
        for &(seg, offset, len) in reads {
            let mut buf = vec![0u8; len];
            self.remote_read(seg, offset, &mut buf)?;
            bufs.push(buf);
        }
        Ok(bufs)
    }

    /// Re-maps an existing remote segment by tag after a local crash
    /// (the paper's `sci_connect_segment`).
    ///
    /// # Errors
    ///
    /// Returns [`RnError::TagNotFound`] if no segment carries `tag`.
    fn connect_segment(&mut self, tag: u64) -> Result<RemoteSegment, RnError>;

    /// Metadata for a known segment.
    ///
    /// # Errors
    ///
    /// Fails if the segment does not exist.
    fn segment_info(&mut self, seg: SegmentId) -> Result<RemoteSegment, RnError>;

    /// Human-readable name of the remote node (for diagnostics).
    fn node_name(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_segment_from_info() {
        let info = SegmentInfo {
            id: SegmentId::from_raw(4),
            len: 128,
            tag: 9,
            base_addr: 640,
        };
        let seg = RemoteSegment::from(info);
        assert_eq!(seg.id, SegmentId::from_raw(4));
        assert_eq!(seg.len, 128);
        assert_eq!(seg.tag, 9);
        assert_eq!(seg.base_addr, 640);
    }

    #[test]
    fn trait_is_object_safe() {
        fn _takes_dyn(_: &mut dyn RemoteMemory) {}
    }

    /// Minimal backend that only implements the required methods, to pin
    /// down the default `remote_write_v` loop and `virtual_clock`.
    struct Scalar {
        mem: Vec<u8>,
        writes: usize,
        reads: usize,
    }

    impl RemoteMemory for Scalar {
        fn remote_malloc(&mut self, _len: usize, _tag: u64) -> Result<RemoteSegment, RnError> {
            unimplemented!()
        }
        fn remote_free(&mut self, _seg: SegmentId) -> Result<(), RnError> {
            unimplemented!()
        }
        fn remote_write(
            &mut self,
            _seg: SegmentId,
            offset: usize,
            data: &[u8],
        ) -> Result<(), RnError> {
            self.mem[offset..offset + data.len()].copy_from_slice(data);
            self.writes += 1;
            Ok(())
        }
        fn remote_read(
            &mut self,
            _seg: SegmentId,
            offset: usize,
            buf: &mut [u8],
        ) -> Result<(), RnError> {
            let len = buf.len();
            buf.copy_from_slice(&self.mem[offset..offset + len]);
            self.reads += 1;
            Ok(())
        }
        fn connect_segment(&mut self, _tag: u64) -> Result<RemoteSegment, RnError> {
            unimplemented!()
        }
        fn segment_info(&mut self, _seg: SegmentId) -> Result<RemoteSegment, RnError> {
            unimplemented!()
        }
        fn node_name(&self) -> String {
            "scalar".into()
        }
    }

    #[test]
    fn default_vectored_write_degrades_to_per_range_writes() {
        let mut s = Scalar {
            mem: vec![0; 16],
            writes: 0,
            reads: 0,
        };
        let seg = SegmentId::from_raw(0);
        s.remote_write_v(&[(seg, 0, &[1, 2]), (seg, 8, &[3, 4])])
            .unwrap();
        assert_eq!(s.writes, 2, "default impl loops over ranges");
        assert_eq!(&s.mem[..2], &[1, 2]);
        assert_eq!(&s.mem[8..10], &[3, 4]);
        assert!(
            s.virtual_clock().is_none(),
            "real backends have no sim clock"
        );
    }

    #[test]
    fn default_flush_is_a_free_noop() {
        let mut s = Scalar {
            mem: vec![0; 4],
            writes: 0,
            reads: 0,
        };
        assert_eq!(s.in_flight(), 0, "inline-ack backends post nothing");
        assert_eq!(s.flush().unwrap(), FlushStats::default());
    }

    #[test]
    fn default_vectored_read_degrades_to_per_range_reads() {
        let mut s = Scalar {
            mem: (0u8..16).collect(),
            writes: 0,
            reads: 0,
        };
        let seg = SegmentId::from_raw(0);
        let bufs = s
            .remote_read_v(&[(seg, 0, 2), (seg, 8, 3), (seg, 4, 0)])
            .unwrap();
        assert_eq!(s.reads, 3, "default impl loops over ranges");
        assert_eq!(bufs, vec![vec![0, 1], vec![8, 9, 10], vec![]]);
    }
}
