//! The client-side interface to a remote node's memory.

use serde::{Deserialize, Serialize};

use perseas_sci::{SegmentId, SegmentInfo};

use crate::RnError;

/// A remote memory segment as seen by the client after `remote_malloc` or
/// `connect_segment` (the paper's mapping of remote physical memory into
/// the local virtual address space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemoteSegment {
    /// Identifier used in subsequent operations.
    pub id: SegmentId,
    /// Length in bytes.
    pub len: usize,
    /// The client-chosen tag (recovery handle).
    pub tag: u64,
    /// Base "physical" address on the remote node; determines SCI buffer
    /// alignment and therefore write latency.
    pub base_addr: u64,
}

impl From<SegmentInfo> for RemoteSegment {
    fn from(i: SegmentInfo) -> Self {
        RemoteSegment {
            id: i.id,
            len: i.len,
            tag: i.tag,
            base_addr: i.base_addr,
        }
    }
}

/// The reliable-network-RAM operations of the paper, Section 3:
/// remote malloc, remote free, remote memory copy (split into its write and
/// read directions), plus the recovery-time `sci_connect_segment`.
///
/// Implementations: [`crate::SimRemote`] (simulated SCI, virtual time) and
/// [`crate::TcpRemote`] (real sockets).
pub trait RemoteMemory: Send {
    /// Allocates a zero-filled remote segment of `len` bytes, tagging it
    /// with `tag` so it can be found again after a local crash.
    ///
    /// # Errors
    ///
    /// Fails if the remote node is out of memory or unreachable.
    fn remote_malloc(&mut self, len: usize, tag: u64) -> Result<RemoteSegment, RnError>;

    /// Releases remote segment `seg`.
    ///
    /// # Errors
    ///
    /// Fails if the segment is unknown or the node is unreachable.
    fn remote_free(&mut self, seg: SegmentId) -> Result<(), RnError>;

    /// Copies `data` into the remote segment at `offset` (local → remote
    /// direction of the paper's *remote memory copy*).
    ///
    /// # Errors
    ///
    /// Fails on bounds violations or if the node is unreachable; on a cut
    /// link a prefix of the data may have been delivered.
    fn remote_write(&mut self, seg: SegmentId, offset: usize, data: &[u8]) -> Result<(), RnError>;

    /// Copies remote bytes at `offset` into `buf` (remote → local).
    ///
    /// # Errors
    ///
    /// Fails on bounds violations or if the node is unreachable.
    fn remote_read(&mut self, seg: SegmentId, offset: usize, buf: &mut [u8])
        -> Result<(), RnError>;

    /// Re-maps an existing remote segment by tag after a local crash
    /// (the paper's `sci_connect_segment`).
    ///
    /// # Errors
    ///
    /// Returns [`RnError::TagNotFound`] if no segment carries `tag`.
    fn connect_segment(&mut self, tag: u64) -> Result<RemoteSegment, RnError>;

    /// Metadata for a known segment.
    ///
    /// # Errors
    ///
    /// Fails if the segment does not exist.
    fn segment_info(&mut self, seg: SegmentId) -> Result<RemoteSegment, RnError>;

    /// Human-readable name of the remote node (for diagnostics).
    fn node_name(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_segment_from_info() {
        let info = SegmentInfo {
            id: SegmentId::from_raw(4),
            len: 128,
            tag: 9,
            base_addr: 640,
        };
        let seg = RemoteSegment::from(info);
        assert_eq!(seg.id, SegmentId::from_raw(4));
        assert_eq!(seg.len, 128);
        assert_eq!(seg.tag, 9);
        assert_eq!(seg.base_addr, 640);
    }

    #[test]
    fn trait_is_object_safe() {
        fn _takes_dyn(_: &mut dyn RemoteMemory) {}
    }
}
