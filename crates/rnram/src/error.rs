//! Error type for the reliable network RAM layer.

use std::error::Error;
use std::fmt;
use std::io;

use perseas_sci::SciError;

/// Errors reported by the network RAM layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum RnError {
    /// An error from the underlying (simulated) SCI interconnect.
    Sci(SciError),
    /// A socket-level failure of the TCP backend.
    Io(io::Error),
    /// The TCP peer answered with a malformed or corrupt frame.
    Protocol(String),
    /// The server rejected a request; carries its message.
    Remote(String),
    /// `connect_segment` found no segment with the requested tag.
    TagNotFound(u64),
    /// The server's admission queue is full and the request was refused
    /// without being applied. The connection stays healthy; retrying after
    /// backoff is safe. Deliberately not `is_unavailable()`: reconnecting
    /// would not help a server that is merely saturated.
    Overloaded,
}

impl fmt::Display for RnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RnError::Sci(e) => write!(f, "SCI error: {e}"),
            RnError::Io(e) => write!(f, "network I/O error: {e}"),
            RnError::Protocol(m) => write!(f, "protocol violation: {m}"),
            RnError::Remote(m) => write!(f, "remote node refused request: {m}"),
            RnError::TagNotFound(t) => write!(f, "no remote segment with tag {t}"),
            RnError::Overloaded => {
                write!(
                    f,
                    "server overloaded: admission queue full, request refused"
                )
            }
        }
    }
}

impl Error for RnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RnError::Sci(e) => Some(e),
            RnError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SciError> for RnError {
    fn from(e: SciError) -> Self {
        RnError::Sci(e)
    }
}

impl From<io::Error> for RnError {
    fn from(e: io::Error) -> Self {
        RnError::Io(e)
    }
}

impl RnError {
    /// `true` if the error indicates the mirror is unreachable (link cut,
    /// node crashed, socket dead) as opposed to a caller mistake.
    pub fn is_unavailable(&self) -> bool {
        matches!(
            self,
            RnError::Sci(SciError::LinkDown { .. })
                | RnError::Sci(SciError::NodeCrashed)
                | RnError::Io(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        for e in [
            RnError::Sci(SciError::NodeCrashed),
            RnError::Io(io::Error::other("x")),
            RnError::Protocol("bad magic".into()),
            RnError::Remote("denied".into()),
            RnError::TagNotFound(9),
            RnError::Overloaded,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn availability_classification() {
        assert!(RnError::Sci(SciError::NodeCrashed).is_unavailable());
        assert!(RnError::Sci(SciError::LinkDown { delivered: 3 }).is_unavailable());
        assert!(RnError::Io(io::Error::new(io::ErrorKind::BrokenPipe, "x")).is_unavailable());
        assert!(!RnError::TagNotFound(1).is_unavailable());
        assert!(!RnError::Protocol("p".into()).is_unavailable());
        // A refusal is not an outage: reconnecting would not help.
        assert!(!RnError::Overloaded.is_unavailable());
    }

    #[test]
    fn source_chains() {
        let e = RnError::Sci(SciError::NodeCrashed);
        assert!(e.source().is_some());
        assert!(RnError::TagNotFound(2).source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RnError>();
    }
}
