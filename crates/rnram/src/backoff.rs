//! Exponential backoff with deterministic jitter.
//!
//! Reconnect loops ([`crate::ReconnectingRemote`]) and mirror probes pace
//! their attempts with a [`BackoffPolicy`]: delays double from `base_nanos`
//! up to `cap_nanos`, and a per-attempt slice of up to `jitter_permille`/1000
//! of the delay is shaved off so a fleet of clients re-dialing the same
//! rebooted server does not stampede in lockstep. The jitter is a pure
//! function of `(seed, attempt)` — under a simulated clock every run waits
//! the exact same virtual nanoseconds, which keeps fault schedules
//! reproducible.

use perseas_simtime::det_rng;

/// Pacing for a retry loop: exponential delays, bounded by a cap, with
/// deterministic jitter.
///
/// # Examples
///
/// ```
/// use perseas_rnram::BackoffPolicy;
///
/// let p = BackoffPolicy::from_millis(10, 80);
/// let delays: Vec<u64> = (0..6).map(|a| p.delay_nanos(a)).collect();
/// // Never exceeds the cap, never drops below half the uncapped delay.
/// for (attempt, &d) in delays.iter().enumerate() {
///     assert!(d <= 80_000_000, "attempt {attempt} overshot: {d}");
/// }
/// // Deterministic: the same policy always produces the same schedule.
/// assert_eq!(delays, (0..6).map(|a| p.delay_nanos(a)).collect::<Vec<_>>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay before the first retry, in nanoseconds. Zero disables
    /// pacing entirely (every delay is zero).
    pub base_nanos: u64,
    /// Upper bound on any single delay, in nanoseconds.
    pub cap_nanos: u64,
    /// Fraction of each delay (in thousandths, `0..=1000`) that jitter
    /// may shave off.
    pub jitter_permille: u32,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl BackoffPolicy {
    /// A policy with millisecond-granularity base and cap, 200‰ jitter,
    /// and a fixed default seed.
    pub const fn from_millis(base_ms: u64, cap_ms: u64) -> Self {
        BackoffPolicy {
            base_nanos: base_ms * 1_000_000,
            cap_nanos: cap_ms * 1_000_000,
            jitter_permille: 200,
            seed: 0x5041_4345_5253_4554, // "PACERSET"
        }
    }

    /// A policy that never waits (all delays zero) — the pre-backoff
    /// tight-loop behaviour, for tests that want failures fast.
    pub const fn none() -> Self {
        BackoffPolicy {
            base_nanos: 0,
            cap_nanos: 0,
            jitter_permille: 0,
            seed: 0,
        }
    }

    /// Replaces the jitter seed (distinct clients should use distinct
    /// seeds so their schedules de-correlate).
    #[must_use]
    pub const fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the jitter fraction (thousandths of each delay).
    ///
    /// # Panics
    ///
    /// Panics if `permille` exceeds 1000.
    #[must_use]
    pub fn with_jitter_permille(mut self, permille: u32) -> Self {
        assert!(permille <= 1000, "jitter fraction over 100%: {permille}");
        self.jitter_permille = permille;
        self
    }

    /// The delay before retry number `attempt` (0-based), in nanoseconds.
    ///
    /// Pure and deterministic: `base * 2^attempt`, saturating, capped at
    /// `cap_nanos`, minus a jittered slice derived from
    /// `(seed, attempt)`. Always `<= cap_nanos`.
    pub fn delay_nanos(&self, attempt: u32) -> u64 {
        if self.base_nanos == 0 {
            return 0;
        }
        let cap = self.cap_nanos.max(self.base_nanos);
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        let raw = self.base_nanos.saturating_mul(factor).min(cap);
        if self.jitter_permille == 0 {
            return raw;
        }
        let span = (u128::from(raw) * u128::from(self.jitter_permille) / 1000) as u64;
        if span == 0 {
            return raw;
        }
        let shave = det_rng(self.seed ^ u64::from(attempt)).gen_range(span + 1);
        raw - shave
    }

    /// Sum of the delays for `attempts` retries — what a full retry loop
    /// that exhausts its budget will wait in total.
    pub fn total_nanos(&self, attempts: u32) -> u64 {
        (0..attempts).map(|a| self.delay_nanos(a)).sum()
    }
}

impl Default for BackoffPolicy {
    /// 1 ms first delay, 500 ms cap: aggressive enough for a LAN blip,
    /// bounded enough that a dead mirror is reported within seconds.
    fn default() -> Self {
        BackoffPolicy::from_millis(1, 500)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_then_plateau_at_cap() {
        let p = BackoffPolicy::from_millis(1, 64).with_jitter_permille(0);
        let d: Vec<u64> = (0..10).map(|a| p.delay_nanos(a)).collect();
        assert_eq!(d[0], 1_000_000);
        assert_eq!(d[1], 2_000_000);
        assert_eq!(d[6], 64_000_000);
        assert_eq!(d[9], 64_000_000, "capped");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = BackoffPolicy::from_millis(8, 512);
        for attempt in 0..40 {
            let d = p.delay_nanos(attempt);
            assert_eq!(d, p.delay_nanos(attempt), "same (seed, attempt)");
            let nominal = 8_000_000u64
                .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
                .min(512_000_000);
            assert!(d <= nominal);
            assert!(d >= nominal - nominal / 5, "at most 200 permille shaved");
        }
    }

    #[test]
    fn distinct_seeds_decorrelate() {
        let a = BackoffPolicy::from_millis(10, 1000).with_seed(1);
        let b = BackoffPolicy::from_millis(10, 1000).with_seed(2);
        let sa: Vec<u64> = (0..8).map(|i| a.delay_nanos(i)).collect();
        let sb: Vec<u64> = (0..8).map(|i| b.delay_nanos(i)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn none_never_waits() {
        let p = BackoffPolicy::none();
        assert_eq!(p.total_nanos(100), 0);
    }

    #[test]
    fn huge_attempt_saturates_instead_of_overflowing() {
        let p = BackoffPolicy::from_millis(1, u64::MAX / 2_000_000);
        let _ = p.delay_nanos(u32::MAX);
        let q = BackoffPolicy {
            base_nanos: u64::MAX,
            cap_nanos: u64::MAX,
            jitter_permille: 0,
            seed: 0,
        };
        assert_eq!(q.delay_nanos(63), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "jitter fraction")]
    fn over_unit_jitter_rejected() {
        let _ = BackoffPolicy::default().with_jitter_permille(1001);
    }
}
