//! Property tests for the disk simulator: contents and crash semantics
//! against a reference model, and timing sanity.

use proptest::prelude::*;

use perseas_disk::{DiskParams, SimDisk, WriteMode};
use perseas_simtime::SimClock;

#[derive(Debug, Clone)]
enum Op {
    Write {
        offset: usize,
        len: usize,
        byte: u8,
        sync: bool,
    },
    Flush,
    Crash,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0usize..512, 1usize..64, any::<u8>(), any::<bool>()).prop_map(
            |(offset, len, byte, sync)| Op::Write { offset, len, byte, sync }
        ),
        1 => Just(Op::Flush),
        1 => Just(Op::Crash),
    ]
}

proptest! {
    /// The file's current contents always match an in-memory model, and a
    /// crash rolls current back to exactly the synced/flushed state.
    #[test]
    fn file_matches_model(ops in prop::collection::vec(op_strategy(), 1..40)) {
        let clock = SimClock::new();
        let disk = SimDisk::new(clock, DiskParams::disk_1998());
        let f = disk.create_file("prop", 0);

        let mut current: Vec<u8> = Vec::new();
        let mut stable: Vec<u8> = Vec::new();
        for op in ops {
            match op {
                Op::Write { offset, len, byte, sync } => {
                    let data = vec![byte; len];
                    f.write_at(offset, &data, if sync { WriteMode::Sync } else { WriteMode::Async });
                    if current.len() < offset + len {
                        current.resize(offset + len, 0);
                    }
                    current[offset..offset + len].fill(byte);
                    if sync {
                        stable = current.clone();
                    }
                }
                Op::Flush => {
                    f.flush();
                    stable = current.clone();
                }
                Op::Crash => {
                    disk.crash_volatile();
                    current = stable.clone();
                }
            }
            prop_assert_eq!(&f.current_snapshot(), &current);
        }
        disk.crash_volatile();
        prop_assert_eq!(f.current_snapshot(), stable);
    }

    /// Synchronous writes always cost at least the rotational latency;
    /// asynchronous sequential appends are cheap until the buffer fills.
    #[test]
    fn sync_writes_cost_time(len in 1usize..4_096) {
        let clock = SimClock::new();
        let disk = SimDisk::new(clock.clone(), DiskParams::disk_1998());
        let f = disk.create_file("t", 0);
        let sw = clock.stopwatch();
        f.append(&vec![0u8; len], WriteMode::Sync);
        prop_assert!(sw.elapsed().as_micros() >= 5_000, "{}", sw.elapsed());
    }

    /// Reads return exactly what was written, wherever it currently lives
    /// (buffer or media).
    #[test]
    fn reads_see_writes(
        writes in prop::collection::vec((0usize..256, any::<u8>(), any::<bool>()), 1..20)
    ) {
        let disk = SimDisk::new(SimClock::new(), DiskParams::disk_1998());
        let f = disk.create_file("r", 512);
        let mut model = vec![0u8; 512];
        for (offset, byte, sync) in writes {
            f.write_at(offset, &[byte; 8], if sync { WriteMode::Sync } else { WriteMode::Async });
            model[offset..offset + 8].fill(byte);
        }
        let mut buf = vec![0u8; 512];
        f.read_at(0, &mut buf).unwrap();
        prop_assert_eq!(buf, model);
    }
}
