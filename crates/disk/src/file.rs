//! File handles over the simulated disk.

use std::error::Error;
use std::fmt;

use crate::sim::SimDisk;

/// Identifier of a file within one [`SimDisk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub(crate) u64);

/// Whether a write waits for the media or is absorbed by the volatile
/// write buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Wait until the bytes are on stable storage.
    Sync,
    /// Return immediately; bytes are lost if power fails before the device
    /// drains its buffer.
    Async,
}

/// Error returned by [`DiskFile::read_at`] for out-of-range reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadPastEndError {
    /// Requested offset.
    pub offset: usize,
    /// Requested length.
    pub len: usize,
    /// Current file length.
    pub file_len: usize,
}

impl fmt::Display for ReadPastEndError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "read [{}, {}) past end of file of length {}",
            self.offset,
            self.offset + self.len,
            self.file_len
        )
    }
}

impl Error for ReadPastEndError {}

/// A file stored on a [`SimDisk`].
///
/// The file distinguishes *current* contents (what reads observe, including
/// buffered writes) from *stable* contents (what survives a power loss).
///
/// # Examples
///
/// ```
/// use perseas_simtime::SimClock;
/// use perseas_disk::{DiskParams, SimDisk, WriteMode};
///
/// let disk = SimDisk::new(SimClock::new(), DiskParams::disk_1998());
/// let f = disk.create_file("db", 16);
/// f.write_at(0, &[1; 4], WriteMode::Async);
/// assert_eq!(&f.current_snapshot()[..4], &[1; 4]);
/// assert_eq!(&f.stable_snapshot()[..4], &[0; 4]); // not flushed yet
/// ```
#[derive(Debug, Clone)]
pub struct DiskFile {
    disk: SimDisk,
    id: FileId,
}

impl DiskFile {
    pub(crate) fn new(disk: SimDisk, id: FileId) -> Self {
        DiskFile { disk, id }
    }

    /// The file's name.
    pub fn name(&self) -> String {
        self.disk.file_name(self.id)
    }

    /// Current length in bytes (including buffered appends).
    pub fn len(&self) -> usize {
        self.disk.file_len(self.id)
    }

    /// `true` if the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Length of the stable (crash-surviving) prefix image.
    pub fn stable_len(&self) -> usize {
        self.disk.stable_len(self.id)
    }

    /// Writes `data` at `offset`, growing the file if needed.
    pub fn write_at(&self, offset: usize, data: &[u8], mode: WriteMode) {
        self.disk.write_at(self.id, offset, data, mode);
    }

    /// Appends `data` at the end of the file and returns the offset it was
    /// written at.
    pub fn append(&self, data: &[u8], mode: WriteMode) -> usize {
        let offset = self.len();
        self.disk.write_at(self.id, offset, data, mode);
        offset
    }

    /// Reads `buf.len()` bytes at `offset` from the current contents.
    ///
    /// # Errors
    ///
    /// Returns [`ReadPastEndError`] if the range exceeds the file.
    pub fn read_at(&self, offset: usize, buf: &mut [u8]) -> Result<(), ReadPastEndError> {
        let file_len = self.len();
        if offset.checked_add(buf.len()).is_none_or(|e| e > file_len) {
            return Err(ReadPastEndError {
                offset,
                len: buf.len(),
                file_len,
            });
        }
        self.disk.read_at(self.id, offset, buf);
        Ok(())
    }

    /// Forces every buffered write of this disk to stable storage.
    pub fn flush(&self) {
        self.disk.flush(self.id);
    }

    /// Truncates the file to `len` bytes, dropping buffered writes beyond.
    pub fn truncate(&self, len: usize) {
        self.disk.truncate(self.id, len);
    }

    /// A copy of the current contents (reads-eye view).
    pub fn current_snapshot(&self) -> Vec<u8> {
        self.disk.current_snapshot(self.id)
    }

    /// A copy of the stable contents (what a crash would leave behind).
    pub fn stable_snapshot(&self) -> Vec<u8> {
        self.disk.stable_snapshot(self.id)
    }

    /// The disk this file lives on.
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DiskParams;
    use perseas_simtime::SimClock;

    fn file() -> DiskFile {
        SimDisk::new(SimClock::new(), DiskParams::disk_1998()).create_file("f", 0)
    }

    #[test]
    fn append_returns_offsets() {
        let f = file();
        assert_eq!(f.append(&[1, 2], WriteMode::Async), 0);
        assert_eq!(f.append(&[3], WriteMode::Async), 2);
        assert_eq!(f.len(), 3);
        assert!(!f.is_empty());
    }

    #[test]
    fn read_past_end_is_an_error() {
        let f = file();
        f.append(&[1; 4], WriteMode::Sync);
        let mut buf = [0u8; 8];
        let err = f.read_at(0, &mut buf).unwrap_err();
        assert_eq!(err.file_len, 4);
        assert!(err.to_string().contains("past end"));
        // Overflowing offsets are handled too.
        assert!(f.read_at(usize::MAX, &mut buf).is_err());
    }

    #[test]
    fn name_is_kept() {
        let f = file();
        assert_eq!(f.name(), "f");
    }

    #[test]
    fn stable_len_lags_until_flush() {
        let f = file();
        f.append(&[5; 10], WriteMode::Async);
        assert_eq!(f.len(), 10);
        assert_eq!(f.stable_len(), 0);
        f.flush();
        assert_eq!(f.stable_len(), 10);
    }
}
