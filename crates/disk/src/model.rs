//! Disk timing parameters.

use serde::{Deserialize, Serialize};

use perseas_simtime::SimDuration;

/// Positional relationship of an access to the previous one, which decides
/// the seek cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Head is already there (strictly sequential continuation).
    Sequential,
    /// Same cylinder neighbourhood: track-to-track seek.
    Near,
    /// Anywhere else: average seek.
    Far,
}

/// Timing parameters of the simulated disk.
///
/// [`DiskParams::disk_1998`] models a high-end desktop drive of the paper's
/// era (5400 rpm, ~9 ms average seek, ~10 MB/s media rate). The paper's
/// architecture-trend argument (disks improve 10–20 %/year, networks
/// 20–45 %/year) is exercised by [`DiskParams::scaled`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskParams {
    /// Spindle speed in revolutions per minute.
    pub rpm: u64,
    /// Average seek time in nanoseconds.
    pub avg_seek_ns: u64,
    /// Track-to-track seek time in nanoseconds.
    pub track_seek_ns: u64,
    /// Sustained media transfer rate in bytes per microsecond (= MB/s).
    pub transfer_bytes_per_us: u64,
    /// Fixed controller/command overhead per operation in nanoseconds.
    pub controller_ns: u64,
    /// Capacity of the volatile write buffer in bytes. Asynchronous writes
    /// beyond this block until the device drains.
    pub write_buffer_bytes: usize,
    /// Distance (in bytes of the linear address space) still considered
    /// "near" for seek purposes — roughly one track.
    pub track_bytes: u64,
}

impl DiskParams {
    /// A 1998-class desktop disk: 5400 rpm, 9 ms average seek, 1.5 ms
    /// track-to-track, 10 MB/s media rate, 0.3 ms controller overhead,
    /// 256 KB write buffer.
    pub fn disk_1998() -> Self {
        DiskParams {
            rpm: 5_400,
            avg_seek_ns: 9_000_000,
            track_seek_ns: 1_500_000,
            transfer_bytes_per_us: 10,
            controller_ns: 300_000,
            write_buffer_bytes: 256 << 10,
            track_bytes: 64 << 10,
        }
    }

    /// A hypothetical disk `speedup`× faster across the board (seek,
    /// rotation, transfer, controller). Used by the technology-trend
    /// ablation.
    ///
    /// # Panics
    ///
    /// Panics if `speedup` is not positive.
    pub fn scaled(speedup: f64) -> Self {
        assert!(speedup > 0.0, "speedup must be positive");
        let d = DiskParams::disk_1998();
        let s = |ns: u64| ((ns as f64 / speedup).round() as u64).max(1);
        DiskParams {
            rpm: ((d.rpm as f64 * speedup).round() as u64).max(1),
            avg_seek_ns: s(d.avg_seek_ns),
            track_seek_ns: s(d.track_seek_ns),
            transfer_bytes_per_us: ((d.transfer_bytes_per_us as f64 * speedup).round() as u64)
                .max(1),
            controller_ns: s(d.controller_ns),
            write_buffer_bytes: d.write_buffer_bytes,
            track_bytes: d.track_bytes,
        }
    }

    /// Time for one full revolution.
    pub fn revolution(&self) -> SimDuration {
        SimDuration::from_nanos(60_000_000_000 / self.rpm)
    }

    /// Average rotational latency (half a revolution).
    pub fn avg_rotational_latency(&self) -> SimDuration {
        self.revolution() / 2
    }

    /// Seek time for an access of the given positional kind.
    pub fn seek(&self, kind: AccessKind) -> SimDuration {
        match kind {
            AccessKind::Sequential => SimDuration::ZERO,
            AccessKind::Near => SimDuration::from_nanos(self.track_seek_ns),
            AccessKind::Far => SimDuration::from_nanos(self.avg_seek_ns),
        }
    }

    /// Media transfer time for `len` bytes.
    pub fn transfer(&self, len: usize) -> SimDuration {
        SimDuration::from_nanos(len as u64 * 1_000 / self.transfer_bytes_per_us)
    }

    /// Full service time of one access: controller + seek + rotation +
    /// transfer. Even a strictly sequential continuation pays the average
    /// rotational latency: by the time the next synchronous request
    /// arrives, the target sector has passed under the head.
    pub fn service_time(&self, kind: AccessKind, len: usize) -> SimDuration {
        SimDuration::from_nanos(self.controller_ns)
            + self.seek(kind)
            + self.avg_rotational_latency()
            + self.transfer(len)
    }
}

impl Default for DiskParams {
    fn default() -> Self {
        DiskParams::disk_1998()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_for_5400_rpm_is_11ms() {
        let p = DiskParams::disk_1998();
        assert_eq!(p.revolution().as_millis(), 11);
        assert_eq!(p.avg_rotational_latency().as_micros(), 5_555);
    }

    #[test]
    fn sequential_is_cheapest() {
        let p = DiskParams::disk_1998();
        let seq = p.service_time(AccessKind::Sequential, 512);
        let near = p.service_time(AccessKind::Near, 512);
        let far = p.service_time(AccessKind::Far, 512);
        assert!(seq < near);
        assert!(near < far);
    }

    #[test]
    fn random_small_write_costs_about_15ms() {
        // controller 0.3 + seek 9 + rot 5.55 + transfer ~0.05 = ~14.9 ms.
        let p = DiskParams::disk_1998();
        let t = p.service_time(AccessKind::Far, 512);
        assert!(t.as_millis() >= 14 && t.as_millis() <= 16, "{t}");
    }

    #[test]
    fn transfer_scales_with_length() {
        let p = DiskParams::disk_1998();
        assert_eq!(p.transfer(10).as_micros(), 1);
        assert_eq!(p.transfer(1 << 20).as_millis(), 104); // ~105 ms at 10 MB/s
    }

    #[test]
    fn scaled_disk_is_faster() {
        let fast = DiskParams::scaled(4.0);
        let base = DiskParams::disk_1998();
        assert!(fast.service_time(AccessKind::Far, 512) < base.service_time(AccessKind::Far, 512));
        assert!(fast.transfer(1 << 20) < base.transfer(1 << 20));
    }

    #[test]
    #[should_panic(expected = "speedup")]
    fn non_positive_speedup_panics() {
        let _ = DiskParams::scaled(-1.0);
    }
}
