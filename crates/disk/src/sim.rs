//! The disk device model: one head, one queue, one timeline.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use perseas_simtime::{SimClock, SimDuration, SimInstant};

use crate::file::{DiskFile, FileId, WriteMode};
use crate::model::{AccessKind, DiskParams};

/// Operation counters for one simulated disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Synchronous writes (the caller waited for the media).
    pub sync_writes: u64,
    /// Asynchronous writes absorbed by the volatile buffer.
    pub async_writes: u64,
    /// Times an asynchronous write found the buffer full and blocked.
    pub buffer_stalls: u64,
    /// Explicit flushes.
    pub flushes: u64,
    /// Read operations.
    pub reads: u64,
    /// Total payload bytes written (sync + async).
    pub bytes_written: u64,
    /// Total payload bytes read.
    pub bytes_read: u64,
}

#[derive(Debug)]
struct FileData {
    /// What reads observe (includes buffered writes).
    current: Vec<u8>,
    /// What survives a crash.
    stable: Vec<u8>,
    /// Base of this file's extent in the disk's linear address space.
    base: u64,
    name: String,
}

#[derive(Debug)]
struct QueuedWrite {
    file: FileId,
    offset: usize,
    len: usize,
}

#[derive(Debug)]
struct Inner {
    params: DiskParams,
    files: BTreeMap<FileId, FileData>,
    next_file: u64,
    next_base: u64,
    head_pos: u64,
    busy_until: SimInstant,
    queue: Vec<QueuedWrite>,
    queued_bytes: usize,
    stats: DiskStats,
}

/// A simulated magnetic disk on a shared virtual clock.
///
/// Cloning yields another handle to the same device. All file contents live
/// inside the device, so crash semantics (volatile buffer loss) are modelled
/// in one place.
#[derive(Debug, Clone)]
pub struct SimDisk {
    clock: SimClock,
    inner: Arc<Mutex<Inner>>,
}

impl SimDisk {
    /// Creates a disk with the given timing parameters.
    pub fn new(clock: SimClock, params: DiskParams) -> Self {
        SimDisk {
            clock,
            inner: Arc::new(Mutex::new(Inner {
                params,
                files: BTreeMap::new(),
                next_file: 1,
                next_base: 0,
                head_pos: 1 << 40, // parked far from every extent
                busy_until: SimInstant::ORIGIN,
                queue: Vec::new(),
                queued_bytes: 0,
                stats: DiskStats::default(),
            })),
        }
    }

    /// The clock this disk charges.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Creates a file of `initial_len` zero bytes and returns its handle.
    /// Files are placed in widely separated extents, so switching between
    /// files costs a full seek — the "log and database share a spindle"
    /// effect the WAL baselines suffer from.
    pub fn create_file(&self, name: impl Into<String>, initial_len: usize) -> DiskFile {
        let mut g = self.inner.lock();
        let id = FileId(g.next_file);
        g.next_file += 1;
        let base = g.next_base;
        g.next_base += 1 << 30;
        g.files.insert(
            id,
            FileData {
                current: vec![0; initial_len],
                stable: vec![0; initial_len],
                base,
                name: name.into(),
            },
        );
        DiskFile::new(self.clone(), id)
    }

    /// Snapshot of the operation counters.
    pub fn stats(&self) -> DiskStats {
        self.inner.lock().stats
    }

    /// Resets the operation counters.
    pub fn reset_stats(&self) {
        self.inner.lock().stats = DiskStats::default();
    }

    /// Simulates a power loss: every write still in the volatile buffer is
    /// lost; stable contents are preserved and become the visible contents.
    pub fn crash_volatile(&self) {
        let mut g = self.inner.lock();
        g.queue.clear();
        g.queued_bytes = 0;
        let ids: Vec<FileId> = g.files.keys().copied().collect();
        for id in ids {
            let f = g.files.get_mut(&id).expect("file exists");
            f.current = f.stable.clone();
        }
    }

    fn access_kind(params: &DiskParams, head: u64, addr: u64) -> AccessKind {
        if head == addr {
            AccessKind::Sequential
        } else if head.abs_diff(addr) <= params.track_bytes {
            AccessKind::Near
        } else {
            AccessKind::Far
        }
    }

    /// Applies every queued write to stable storage (the drain that happens
    /// when the device catches up).
    fn drain_queue(g: &mut Inner) {
        let queue = std::mem::take(&mut g.queue);
        for w in queue {
            let f = g.files.get_mut(&w.file).expect("queued file exists");
            let end = w.offset + w.len;
            if f.stable.len() < end {
                f.stable.resize(end, 0);
            }
            let bytes = f.current[w.offset..end].to_vec();
            f.stable[w.offset..end].copy_from_slice(&bytes);
        }
        g.queued_bytes = 0;
    }

    pub(crate) fn file_name(&self, id: FileId) -> String {
        self.inner.lock().files[&id].name.clone()
    }

    pub(crate) fn file_len(&self, id: FileId) -> usize {
        self.inner.lock().files[&id].current.len()
    }

    pub(crate) fn stable_len(&self, id: FileId) -> usize {
        self.inner.lock().files[&id].stable.len()
    }

    pub(crate) fn current_snapshot(&self, id: FileId) -> Vec<u8> {
        self.inner.lock().files[&id].current.clone()
    }

    pub(crate) fn stable_snapshot(&self, id: FileId) -> Vec<u8> {
        self.inner.lock().files[&id].stable.clone()
    }

    pub(crate) fn truncate(&self, id: FileId, len: usize) {
        let mut g = self.inner.lock();
        // Truncation is a metadata operation; drop queued writes beyond the
        // new end so they cannot resurrect truncated bytes.
        g.queue.retain(|w| w.file != id || w.offset + w.len <= len);
        let f = g.files.get_mut(&id).expect("file exists");
        f.current.truncate(len);
        f.stable.truncate(len);
    }

    pub(crate) fn write_at(&self, id: FileId, offset: usize, data: &[u8], mode: WriteMode) {
        let now = self.clock.now();
        let mut g = self.inner.lock();

        // Update the visible contents immediately (the write buffer serves
        // reads).
        {
            let f = g.files.get_mut(&id).expect("file exists");
            let end = offset + data.len();
            if f.current.len() < end {
                f.current.resize(end, 0);
            }
            f.current[offset..end].copy_from_slice(data);
        }

        let addr = g.files[&id].base + offset as u64;
        let kind = Self::access_kind(&g.params, g.head_pos, addr);
        // Streamed sequential asynchronous writes are coalesced by the
        // device and pay only media transfer; everything else pays the
        // full positioning cost.
        let service = match (mode, kind) {
            (WriteMode::Async, AccessKind::Sequential) => g.params.transfer(data.len()),
            _ => g.params.service_time(kind, data.len()),
        };
        g.head_pos = addr + data.len() as u64;
        let start = g.busy_until.max(now);
        g.busy_until = start + service;
        g.stats.bytes_written += data.len() as u64;

        match mode {
            WriteMode::Sync => {
                g.stats.sync_writes += 1;
                g.queue.push(QueuedWrite {
                    file: id,
                    offset,
                    len: data.len(),
                });
                Self::drain_queue(&mut g);
                let until = g.busy_until;
                drop(g);
                self.clock.advance_to(until);
            }
            WriteMode::Async => {
                g.stats.async_writes += 1;
                g.queue.push(QueuedWrite {
                    file: id,
                    offset,
                    len: data.len(),
                });
                g.queued_bytes += data.len();
                if g.queued_bytes > g.params.write_buffer_bytes {
                    // Buffer full: the "asynchronous writes become
                    // synchronous" effect — block until the device drains.
                    g.stats.buffer_stalls += 1;
                    Self::drain_queue(&mut g);
                    let until = g.busy_until;
                    drop(g);
                    self.clock.advance_to(until);
                }
            }
        }
    }

    pub(crate) fn read_at(&self, id: FileId, offset: usize, buf: &mut [u8]) {
        let now = self.clock.now();
        let mut g = self.inner.lock();
        let addr = g.files[&id].base + offset as u64;
        let kind = Self::access_kind(&g.params, g.head_pos, addr);
        let service = g.params.service_time(kind, buf.len());
        g.head_pos = addr + buf.len() as u64;
        let start = g.busy_until.max(now);
        g.busy_until = start + service;
        g.stats.reads += 1;
        g.stats.bytes_read += buf.len() as u64;
        let f = &g.files[&id];
        let end = offset + buf.len();
        assert!(end <= f.current.len(), "read past end of {}", f.name);
        buf.copy_from_slice(&f.current[offset..end]);
        let until = g.busy_until;
        drop(g);
        self.clock.advance_to(until);
    }

    pub(crate) fn flush(&self, id: FileId) {
        let _ = id;
        let mut g = self.inner.lock();
        g.stats.flushes += 1;
        Self::drain_queue(&mut g);
        let until = g.busy_until;
        drop(g);
        self.clock.advance_to(until);
    }

    /// Virtual time until which the device is busy with queued work.
    pub fn busy_until(&self) -> SimInstant {
        self.inner.lock().busy_until
    }

    /// The service time a hypothetical write would incur right now, without
    /// performing it (used by ablation harnesses).
    pub fn probe_service(&self, sequential: bool, len: usize) -> SimDuration {
        let g = self.inner.lock();
        let kind = if sequential {
            AccessKind::Sequential
        } else {
            AccessKind::Far
        };
        g.params.service_time(kind, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> (SimClock, SimDisk) {
        let clock = SimClock::new();
        let d = SimDisk::new(clock.clone(), DiskParams::disk_1998());
        (clock, d)
    }

    #[test]
    fn sync_write_blocks_for_milliseconds() {
        let (clock, d) = disk();
        let f = d.create_file("log", 0);
        f.append(&[1; 128], WriteMode::Sync);
        assert!(clock.now().as_nanos() >= 5_000_000);
        assert_eq!(d.stats().sync_writes, 1);
    }

    #[test]
    fn async_write_returns_immediately() {
        let (clock, d) = disk();
        let f = d.create_file("log", 0);
        f.append(&[1; 128], WriteMode::Async);
        assert_eq!(clock.now().as_nanos(), 0);
        assert_eq!(d.stats().async_writes, 1);
    }

    #[test]
    fn full_buffer_stalls_async_writer() {
        let (clock, d) = disk();
        let f = d.create_file("log", 0);
        // 256 KB buffer; write 5 x 64 KB async.
        for _ in 0..5 {
            f.append(&[0; 64 << 10], WriteMode::Async);
        }
        assert!(d.stats().buffer_stalls >= 1);
        assert!(clock.now().as_nanos() > 0);
    }

    #[test]
    fn crash_loses_buffered_writes_only() {
        let (_, d) = disk();
        let f = d.create_file("data", 8);
        f.write_at(0, &[1; 8], WriteMode::Sync);
        f.write_at(0, &[2; 8], WriteMode::Async);
        assert_eq!(f.current_snapshot(), vec![2; 8]);
        d.crash_volatile();
        assert_eq!(f.current_snapshot(), vec![1; 8]);
        assert_eq!(f.stable_snapshot(), vec![1; 8]);
    }

    #[test]
    fn flush_makes_async_writes_stable() {
        let (_, d) = disk();
        let f = d.create_file("data", 4);
        f.write_at(0, &[9; 4], WriteMode::Async);
        assert_eq!(f.stable_snapshot(), vec![0; 4]);
        f.flush();
        d.crash_volatile();
        assert_eq!(f.current_snapshot(), vec![9; 4]);
    }

    #[test]
    fn sequential_appends_cheaper_than_random_writes() {
        let (clock, d) = disk();
        let f = d.create_file("log", 1 << 20);
        // Prime the head.
        f.write_at(0, &[0; 512], WriteMode::Sync);
        let sw = clock.stopwatch();
        f.write_at(512, &[0; 512], WriteMode::Sync);
        let seq_cost = sw.elapsed();

        let sw = clock.stopwatch();
        f.write_at(900_000, &[0; 512], WriteMode::Sync);
        let far_cost = sw.elapsed();
        assert!(seq_cost < far_cost, "{seq_cost} vs {far_cost}");
    }

    #[test]
    fn switching_files_costs_a_full_seek() {
        let (clock, d) = disk();
        let log = d.create_file("log", 1 << 20);
        let db = d.create_file("db", 1 << 20);
        log.write_at(0, &[0; 64], WriteMode::Sync);
        let sw = clock.stopwatch();
        db.write_at(0, &[0; 64], WriteMode::Sync);
        // Cross-extent distance exceeds a track: full average seek.
        assert!(sw.elapsed().as_millis() >= 14);
    }

    #[test]
    fn reads_charge_time_and_return_current_bytes() {
        let (clock, d) = disk();
        let f = d.create_file("data", 16);
        f.write_at(0, &[3; 16], WriteMode::Async);
        let mut buf = [0u8; 16];
        let sw = clock.stopwatch();
        f.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [3; 16]);
        assert!(!sw.elapsed().is_zero());
        assert_eq!(d.stats().reads, 1);
    }

    #[test]
    fn truncate_drops_queued_tail_writes() {
        let (_, d) = disk();
        let f = d.create_file("log", 0);
        f.append(&[1; 8], WriteMode::Async);
        f.append(&[2; 8], WriteMode::Async);
        f.truncate(8);
        f.flush();
        // The second (truncated-away) write must not resurrect.
        assert_eq!(f.len(), 8);
        assert_eq!(f.stable_snapshot(), vec![1; 8]);
    }

    #[test]
    fn write_at_grows_file() {
        let (_, d) = disk();
        let f = d.create_file("data", 0);
        f.write_at(10, &[7; 2], WriteMode::Sync);
        assert_eq!(f.len(), 12);
        let snap = f.current_snapshot();
        assert_eq!(&snap[10..], &[7, 7]);
        assert_eq!(&snap[..10], &[0; 10]);
    }
}
