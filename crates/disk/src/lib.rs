//! A magnetic disk simulator for the PERSEAS baselines.
//!
//! The paper's comparison systems (RVM and friends) are bound by the
//! latency of synchronous writes to a late-1990s magnetic disk. This crate
//! models such a disk on the shared virtual clock:
//!
//! * **seek** — zero for sequential access, a short track-to-track seek for
//!   nearby addresses, the full average seek otherwise;
//! * **rotation** — half a revolution of average rotational latency for
//!   any repositioned access;
//! * **transfer** — a sustained media rate;
//! * **volatile write buffer** — asynchronous writes are queued and the
//!   device drains them in the background; a crash **loses** queued writes
//!   (which is exactly why WAL systems must issue synchronous log writes,
//!   and what the paper's "under heavy load asynchronous writes become
//!   synchronous" remark is about: a full buffer blocks).
//!
//! [`DiskFile`] provides the log/data file abstraction the baselines use,
//! with a byte-exact distinction between *current* contents (what reads
//! return) and *stable* contents (what survives a crash).
//!
//! # Examples
//!
//! ```
//! use perseas_simtime::SimClock;
//! use perseas_disk::{DiskParams, SimDisk, WriteMode};
//!
//! let clock = SimClock::new();
//! let disk = SimDisk::new(clock.clone(), DiskParams::disk_1998());
//! let log = disk.create_file("wal", 0);
//!
//! let t0 = clock.now();
//! log.append(b"commit record", WriteMode::Sync);
//! // A synchronous log write costs milliseconds on a 1998 disk.
//! assert!(clock.now().duration_since(t0).as_millis() >= 1);
//! ```

mod file;
mod model;
mod sim;

pub use file::{DiskFile, ReadPastEndError, WriteMode};
pub use model::{AccessKind, DiskParams};
pub use sim::{DiskStats, SimDisk};
