//! # perseas-obs — observability for the PERSEAS reproduction
//!
//! The paper's whole argument is quantitative (copy counts, message
//! counts, latency percentiles), so the library's perf-critical
//! subsystems need a uniform way to be observed while running. This
//! crate provides the four pieces the rest of the workspace builds on:
//!
//! * [`Registry`] — a lock-cheap metrics registry handing out typed
//!   handles: monotonic [`Counter`]s, [`Gauge`]s, and [`Histo`]grams
//!   (power-of-two-bucket latency histograms reusing
//!   [`perseas_simtime::Histogram`], recording wall-clock *and*
//!   virtual-time durations). Handles are `Clone + Send + Sync` and
//!   update through atomics — the registry lock is taken only at
//!   registration and render time.
//! * Prometheus text exposition: [`Registry::render`] encodes every
//!   registered family in the text format (histograms as summaries with
//!   `quantile` labels), and [`parse_exposition`] parses it back for
//!   tests and the `perseas stats` pretty-printer.
//! * [`JsonlSink`] — a structured JSONL trace sink: one JSON object per
//!   line, each carrying a monotonic sequence number, for machine-
//!   readable protocol traces (`perseas-core`'s `JsonlTracer` adapts
//!   its `TraceEvent` stream onto this).
//! * [`MetricsServer`] — a minimal HTTP responder serving `/metrics`,
//!   plus the matching [`scrape`] client used by `perseas stats`, the
//!   integration tests, and the bench-gate tooling.
//!
//! The [`Json`] value type (with its writer and a small parser) is
//! shared by the JSONL sink, the benches' `BENCH_*.json` emitters, and
//! `tools/bench_gate.rs`.
//!
//! The metric *names* exported by the workspace form a stable contract
//! documented in `docs/OBSERVABILITY.md`.
//!
//! # Examples
//!
//! ```
//! use perseas_obs::Registry;
//! use perseas_simtime::SimDuration;
//!
//! let registry = Registry::new();
//! let commits = registry.counter("demo_commits_total", "Transactions committed.");
//! let latency = registry.histogram("demo_commit_seconds", "Commit latency.");
//! commits.inc();
//! latency.record_sim(SimDuration::from_micros(12));
//!
//! let text = registry.render();
//! assert!(text.contains("demo_commits_total 1"));
//! let samples = perseas_obs::parse_exposition(&text).unwrap();
//! assert!(samples.iter().any(|s| s.name == "demo_commits_total" && s.value == 1.0));
//! ```

mod http;
mod json;
mod jsonl;
mod registry;

pub use http::{http_get, scrape, MetricsServer, MetricsServerHandle};
pub use json::Json;
pub use jsonl::JsonlSink;
pub use registry::{parse_exposition, Counter, Gauge, Histo, Registry, Sample};
