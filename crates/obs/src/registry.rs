//! The metrics registry and its typed handles.
//!
//! Registration takes the registry lock once and hands back a handle;
//! every subsequent update is an atomic operation (counters, gauges) or
//! one short mutex acquisition (histograms). Handles stay valid for the
//! life of the registry and may be cloned freely across threads.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use perseas_simtime::{Histogram, SimDuration};

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A latency histogram in power-of-two nanosecond buckets (backed by
/// [`perseas_simtime::Histogram`], so virtual-time and wall-clock
/// samples share one representation).
///
/// By convention histogram family names end in `_seconds`; samples are
/// recorded in nanoseconds and rendered in seconds.
#[derive(Debug, Clone)]
pub struct Histo(Arc<Mutex<Histogram>>);

impl Histo {
    /// Records a virtual-time duration.
    pub fn record_sim(&self, d: SimDuration) {
        self.0.lock().record(d);
    }

    /// Records a wall-clock duration.
    pub fn record_wall(&self, d: std::time::Duration) {
        self.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Records a raw nanosecond sample.
    pub fn record_ns(&self, ns: u64) {
        self.0.lock().record(SimDuration::from_nanos(ns));
    }

    /// A snapshot of the underlying histogram (for percentile queries).
    pub fn snapshot(&self) -> Histogram {
        self.0.lock().clone()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

#[derive(Debug, Clone)]
enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histo(Arc<Mutex<Histogram>>),
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: Kind,
    /// Children keyed by their label set, in registration order.
    children: Vec<(Vec<(String, String)>, Slot)>,
}

/// A set of metric families with Prometheus text exposition.
///
/// Cloning shares the underlying storage (it is an `Arc`), so one
/// registry can be threaded through a `Perseas` instance, a network-RAM
/// server, and an HTTP responder at once.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    families: Arc<Mutex<Vec<Family>>>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.bytes().enumerate().all(|(i, b)| {
            b.is_ascii_alphabetic() || b == b'_' || b == b':' || (i > 0 && b.is_ascii_digit())
        })
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// `true` if both handles refer to the same underlying storage.
    pub fn same_registry(&self, other: &Registry) -> bool {
        Arc::ptr_eq(&self.families, &other.families)
    }

    fn register(&self, name: &str, help: &str, kind: Kind, labels: &[(&str, &str)]) -> Slot {
        assert!(valid_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_name(k), "invalid label name {k:?}");
        }
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.families.lock();
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(
                    f.kind == kind,
                    "metric {name:?} registered twice with different kinds"
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    children: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some((_, slot)) = family.children.iter().find(|(l, _)| *l == labels) {
            return slot.clone();
        }
        let slot = match kind {
            Kind::Counter => Slot::Counter(Arc::new(AtomicU64::new(0))),
            Kind::Gauge => Slot::Gauge(Arc::new(AtomicI64::new(0))),
            Kind::Histogram => Slot::Histo(Arc::new(Mutex::new(Histogram::new()))),
        };
        family.children.push((labels, slot.clone()));
        slot
    }

    /// Registers (or retrieves) an unlabelled counter.
    ///
    /// # Panics
    ///
    /// Panics on an invalid metric name or if `name` is already
    /// registered as a different kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or retrieves) a counter with the given label set.
    ///
    /// # Panics
    ///
    /// Panics on invalid names or a kind mismatch.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, Kind::Counter, labels) {
            Slot::Counter(c) => Counter(c),
            _ => unreachable!("register checked the kind"),
        }
    }

    /// Registers (or retrieves) an unlabelled gauge.
    ///
    /// # Panics
    ///
    /// Panics on invalid names or a kind mismatch.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or retrieves) a gauge with the given label set.
    ///
    /// # Panics
    ///
    /// Panics on invalid names or a kind mismatch.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, Kind::Gauge, labels) {
            Slot::Gauge(g) => Gauge(g),
            _ => unreachable!("register checked the kind"),
        }
    }

    /// Registers (or retrieves) an unlabelled histogram. Use a name
    /// ending in `_seconds`: samples are rendered in seconds.
    ///
    /// # Panics
    ///
    /// Panics on invalid names or a kind mismatch.
    pub fn histogram(&self, name: &str, help: &str) -> Histo {
        self.histogram_with(name, help, &[])
    }

    /// Registers (or retrieves) a histogram with the given label set.
    ///
    /// # Panics
    ///
    /// Panics on invalid names or a kind mismatch.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histo {
        match self.register(name, help, Kind::Histogram, labels) {
            Slot::Histo(h) => Histo(h),
            _ => unreachable!("register checked the kind"),
        }
    }

    /// Renders every family in the Prometheus text exposition format
    /// (version 0.0.4). Histograms are encoded as summaries with
    /// `quantile="0.5" / "0.95" / "0.99"` children plus `_sum` and
    /// `_count`, values in seconds.
    pub fn render(&self) -> String {
        let families = self.families.lock();
        let mut order: Vec<usize> = (0..families.len()).collect();
        order.sort_by(|&a, &b| families[a].name.cmp(&families[b].name));
        let mut out = String::new();
        for &i in &order {
            let f = &families[i];
            let type_name = match f.kind {
                Kind::Counter => "counter",
                Kind::Gauge => "gauge",
                Kind::Histogram => "summary",
            };
            if !f.help.is_empty() {
                let _ = writeln!(out, "# HELP {} {}", f.name, escape_help(&f.help));
            }
            let _ = writeln!(out, "# TYPE {} {type_name}", f.name);
            for (labels, slot) in &f.children {
                match slot {
                    Slot::Counter(c) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            f.name,
                            render_labels(labels, None),
                            c.load(Ordering::Relaxed)
                        );
                    }
                    Slot::Gauge(g) => {
                        let _ = writeln!(
                            out,
                            "{}{} {}",
                            f.name,
                            render_labels(labels, None),
                            g.load(Ordering::Relaxed)
                        );
                    }
                    Slot::Histo(h) => {
                        let h = h.lock();
                        for (q, p) in [("0.5", 50.0), ("0.95", 95.0), ("0.99", 99.0)] {
                            let secs = h.percentile(p).as_nanos() as f64 / 1e9;
                            let _ = writeln!(
                                out,
                                "{}{} {}",
                                f.name,
                                render_labels(labels, Some(q)),
                                secs
                            );
                        }
                        let sum_secs = h.total_ns() as f64 / 1e9;
                        let _ = writeln!(
                            out,
                            "{}_sum{} {}",
                            f.name,
                            render_labels(labels, None),
                            sum_secs
                        );
                        let _ = writeln!(
                            out,
                            "{}_count{} {}",
                            f.name,
                            render_labels(labels, None),
                            h.count()
                        );
                    }
                }
            }
        }
        out
    }
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn render_labels(labels: &[(String, String)], quantile: Option<&str>) -> String {
    if labels.is_empty() && quantile.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some(q) = quantile {
        parts.push(format!("quantile=\"{q}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// One sample parsed back out of a text exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (for summaries this includes `_sum` / `_count`).
    pub name: String,
    /// Label pairs in exposition order (including `quantile`).
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses a Prometheus text exposition into its samples, validating the
/// overall line syntax. Comment lines (`# HELP`, `# TYPE`, …) are
/// checked for shape and skipped.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let c = comment.trim_start();
            if !(c.starts_with("HELP ") || c.starts_with("TYPE ") || c == "EOF") {
                return Err(format!("line {}: malformed comment {line:?}", no + 1));
            }
            continue;
        }
        samples.push(parse_sample(line).map_err(|e| format!("line {}: {e}", no + 1))?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let name_end = line
        .find(|c: char| c == '{' || c.is_ascii_whitespace())
        .ok_or_else(|| format!("no value in {line:?}"))?;
    let name = &line[..name_end];
    if !valid_name(name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    let rest = &line[name_end..];
    let (labels, rest) = if let Some(body) = rest.strip_prefix('{') {
        let close = body
            .find('}')
            .ok_or_else(|| format!("unterminated label set in {line:?}"))?;
        (parse_labels(&body[..close])?, &body[close + 1..])
    } else {
        (Vec::new(), rest)
    };
    let mut fields = rest.split_ascii_whitespace();
    let value: f64 = fields
        .next()
        .ok_or_else(|| format!("no value in {line:?}"))?
        .parse()
        .map_err(|e| format!("bad value in {line:?}: {e}"))?;
    // An optional timestamp may follow; anything beyond that is noise.
    if fields.clone().count() > 1 {
        return Err(format!("trailing garbage in {line:?}"));
    }
    if let Some(ts) = fields.next() {
        ts.parse::<i64>()
            .map_err(|e| format!("bad timestamp in {line:?}: {e}"))?;
    }
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=' in {body:?}"))?;
        let key = rest[..eq].trim().to_string();
        if !valid_name(&key) {
            return Err(format!("invalid label name {key:?}"));
        }
        let after = rest[eq + 1..]
            .trim_start()
            .strip_prefix('"')
            .ok_or_else(|| format!("label value not quoted in {body:?}"))?;
        let mut value = String::new();
        let mut chars = after.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, e)) => value.push(e),
                    None => return Err(format!("dangling escape in {body:?}")),
                },
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value in {body:?}"))?;
        labels.push((key, value));
        rest = after[end + 1..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Registry::new();
        let c = r.counter("t_total", "things");
        let g = r.gauge("t_gauge", "level");
        c.inc();
        c.add(4);
        g.set(7);
        g.add(-2);
        assert_eq!(c.get(), 5);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn reregistration_returns_the_same_storage() {
        let r = Registry::new();
        let a = r.counter("dup_total", "");
        let b = r.counter("dup_total", "");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        // Distinct label sets are distinct children.
        let x = r.counter_with("lab_total", "", &[("op", "read")]);
        let y = r.counter_with("lab_total", "", &[("op", "write")]);
        x.inc();
        assert_eq!(y.get(), 0);
    }

    #[test]
    #[should_panic(expected = "different kinds")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("twice", "");
        let _ = r.gauge("twice", "");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_name_panics() {
        let _ = Registry::new().counter("1bad", "");
    }

    #[test]
    fn histogram_records_both_time_bases() {
        let r = Registry::new();
        let h = r.histogram("lat_seconds", "latency");
        h.record_sim(SimDuration::from_micros(10));
        h.record_wall(std::time::Duration::from_micros(10));
        h.record_ns(10_000);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 3);
        assert!(snap.max() >= SimDuration::from_micros(10));
    }

    #[test]
    fn render_roundtrips_through_the_parser() {
        let r = Registry::new();
        r.counter("a_total", "Counts a.\nSecond line").add(3);
        r.gauge_with("b_gauge", "gauge", &[("mirror", "0")]).set(-2);
        let h = r.histogram_with("c_seconds", "lat", &[("op", "wr\"ite")]);
        for us in [1u64, 2, 3, 100] {
            h.record_sim(SimDuration::from_micros(us));
        }
        let text = r.render();
        let samples = parse_exposition(&text).expect("parses");
        let get =
            |name: &str| -> Vec<&Sample> { samples.iter().filter(|s| s.name == name).collect() };
        assert_eq!(get("a_total")[0].value, 3.0);
        let b = get("b_gauge")[0];
        assert_eq!(b.value, -2.0);
        assert_eq!(b.label("mirror"), Some("0"));
        assert_eq!(get("c_seconds").len(), 3, "three quantiles");
        assert_eq!(get("c_seconds_count")[0].value, 4.0);
        let sum = get("c_seconds_sum")[0].value;
        assert!((sum - 106e-6).abs() < 1e-9, "{sum}");
        let q99 = get("c_seconds")
            .iter()
            .find(|s| s.label("quantile") == Some("0.99"))
            .expect("q99")
            .value;
        assert!(q99 >= 100e-6, "{q99}");
        // The escaped label value survived the round trip.
        assert_eq!(get("c_seconds_count")[0].label("op"), Some("wr\"ite"));
    }

    #[test]
    fn families_render_sorted_by_name() {
        let r = Registry::new();
        r.counter("z_total", "").inc();
        r.counter("a_total", "").inc();
        let text = r.render();
        let a = text.find("a_total").unwrap();
        let z = text.find("z_total").unwrap();
        assert!(a < z);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_exposition("no_value").is_err());
        assert!(parse_exposition("name{k=\"v\" 3").is_err());
        assert!(parse_exposition("name notanumber").is_err());
        assert!(parse_exposition("# FROB nonsense").is_err());
        assert!(parse_exposition("name 1 2 3").is_err());
        // Timestamps are tolerated.
        let s = parse_exposition("up 1 1700000000000").unwrap();
        assert_eq!(s[0].value, 1.0);
    }

    #[test]
    fn handles_are_send_and_shared_across_threads() {
        let r = Registry::new();
        let c = r.counter("threads_total", "");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }
}
