//! A minimal JSON value type with a writer and parser.
//!
//! The workspace cannot pull serde_json from a registry, and the vendored
//! serde stub has no JSON backend, so the JSONL trace sink, the benches'
//! `BENCH_*.json` emitters, and `tools/bench_gate` share this small
//! implementation instead. Objects preserve insertion order so emitted
//! files are stable and diffable.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; written with enough precision to round-trip.
    Num(f64),
    /// An unsigned integer, written without a decimal point. Use this for
    /// counters and ids so 64-bit values survive exactly.
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for `Json::Str`.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object builder from key/value pairs.
    pub fn object(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::UInt(n) => write!(f, "{n}"),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        write!(f, "{}", *n as i64)
                    } else {
                        write!(f, "{n}")
                    }
                } else {
                    // JSON has no Inf/NaN; null is the least-bad encoding.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_json_string(f, s),
            Json::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| format!("truncated \\u at byte {}", self.pos))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| format!("bad \\u at byte {}", self.pos))?,
                                16,
                            )
                            .map_err(|_| format!("bad \\u at byte {}", self.pos))?;
                            // Surrogate pairs are out of scope for this
                            // emitter's own output; map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
                    );
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !fractional {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = Json::object(vec![
            ("name", Json::str("pipeline")),
            ("count", Json::UInt(42)),
            ("ratio", Json::Num(4.9)),
            ("neg", Json::Num(-1.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "items",
                Json::Array(vec![Json::UInt(1), Json::str("a\"b\n")]),
            ),
        ]);
        let text = v.to_string();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, v);
        assert_eq!(back.get("count").unwrap().as_f64(), Some(42.0));
        assert_eq!(back.get("name").unwrap().as_str(), Some("pipeline"));
    }

    #[test]
    fn integers_have_no_decimal_point() {
        assert_eq!(Json::UInt(7).to_string(), "7");
        assert_eq!(Json::Num(7.0).to_string(), "7");
        assert_eq!(Json::Num(7.5).to_string(), "7.5");
    }

    #[test]
    fn large_u64_survives() {
        let n = u64::MAX - 3;
        let text = Json::UInt(n).to_string();
        assert_eq!(Json::parse(&text).unwrap(), Json::UInt(n));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn whitespace_and_nesting_parse() {
        let v = Json::parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0], Json::UInt(1));
        assert_eq!(arr[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn escapes_roundtrip() {
        let s = Json::Str("tab\ttext \u{1} \\ / done".to_string());
        assert_eq!(Json::parse(&s.to_string()).unwrap(), s);
    }
}
