//! A minimal HTTP responder for `/metrics`, and the matching client.
//!
//! This is deliberately not a web server: one accept loop, one thread
//! per connection, `GET /metrics` answered from the registry, everything
//! else a 404. It exists so `perseas serve --metrics-addr` can be
//! scraped by Prometheus (text exposition 0.0.4) and by `perseas stats`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::registry::Registry;

/// Serves a [`Registry`] over HTTP.
pub struct MetricsServer;

/// Handle to a running metrics responder; shuts down on drop.
pub struct MetricsServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` and serves `GET /metrics` from `registry` on a
    /// background thread. Bind to port 0 to pick a free port; the bound
    /// address is available from the handle.
    ///
    /// # Errors
    ///
    /// Any error from binding the listener.
    pub fn serve(addr: &str, registry: Registry) -> std::io::Result<MetricsServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let registry = registry.clone();
                // Serve inline: scrapes are short-lived and strictly
                // request/response, so one at a time is plenty and keeps
                // shutdown from leaking threads.
                let _ = serve_one(stream, &registry);
            }
        });
        Ok(MetricsServerHandle {
            addr,
            stop,
            thread: Some(thread),
        })
    }
}

impl MetricsServerHandle {
    /// The bound address (useful after binding port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the responder and joins its thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServerHandle {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop_and_join();
        }
    }
}

fn serve_one(stream: TcpStream, registry: &Registry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain the headers; we answer from the request line alone.
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim_end().is_empty() {
            break;
        }
    }
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let mut stream = reader.into_inner();
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else if path == "/metrics" || path.starts_with("/metrics?") {
        (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            registry.render(),
        )
    } else {
        (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "try /metrics\n".to_string(),
        )
    };
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Issues a bare `GET {path}` to `addr` and returns `(status, body)`.
///
/// # Errors
///
/// Connection or protocol failures, as a message.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> Result<(u16, String), String> {
    let addr = addr
        .to_socket_addrs()
        .map_err(|e| format!("bad address: {e}"))?
        .next()
        .ok_or_else(|| "bad address: no socket addrs".to_string())?;
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("send request: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read response: {e}"))?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| "malformed response: no header terminator".to_string())?;
    let status_line = head.lines().next().unwrap_or("");
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    Ok((status, body.to_string()))
}

/// Scrapes `/metrics` from `addr`, returning the exposition body.
///
/// # Errors
///
/// Connection failures or a non-200 status, as a message.
pub fn scrape(addr: impl ToSocketAddrs) -> Result<String, String> {
    let (status, body) = http_get(addr, "/metrics")?;
    if status != 200 {
        return Err(format!("/metrics returned status {status}"));
    }
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::parse_exposition;

    #[test]
    #[cfg_attr(miri, ignore = "miri cannot open sockets")]
    fn serves_and_scrapes_metrics() {
        let registry = Registry::new();
        registry.counter("scrape_total", "Scrapes.").add(9);
        let server = MetricsServer::serve("127.0.0.1:0", registry.clone()).unwrap();
        let body = scrape(server.addr()).unwrap();
        let samples = parse_exposition(&body).unwrap();
        assert!(samples
            .iter()
            .any(|s| s.name == "scrape_total" && s.value == 9.0));
        // A second scrape sees live updates.
        registry.counter("scrape_total", "").inc();
        let body = scrape(server.addr()).unwrap();
        assert!(body.contains("scrape_total 10"));
        server.shutdown();
    }

    #[test]
    #[cfg_attr(miri, ignore = "miri cannot open sockets")]
    fn unknown_paths_get_404_and_bad_methods_405() {
        let server = MetricsServer::serve("127.0.0.1:0", Registry::new()).unwrap();
        let (status, _) = http_get(server.addr(), "/nope").unwrap();
        assert_eq!(status, 404);
        let addr = server.addr();
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
        server.shutdown();
    }

    #[test]
    #[cfg_attr(miri, ignore = "miri cannot open sockets")]
    fn shutdown_is_idempotent_and_drop_cleans_up() {
        let server = MetricsServer::serve("127.0.0.1:0", Registry::new()).unwrap();
        let addr = server.addr();
        drop(server);
        // After drop the port no longer answers.
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err()
                || scrape(addr).is_err()
        );
    }
}
