//! A structured JSONL trace sink.
//!
//! One JSON object per line, every line carrying a monotonic `seq` field
//! stamped by the sink, so interleaved writers from several threads
//! still produce a totally ordered, machine-parseable trace.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::json::Json;

enum Target {
    Writer(Box<dyn Write + Send>),
    Memory(Vec<String>),
}

struct Inner {
    seq: AtomicU64,
    target: Mutex<Target>,
}

/// A shared sink writing one JSON object per line.
///
/// Cloning shares the sink; `seq` stays monotonic across all clones.
#[derive(Clone)]
pub struct JsonlSink {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("seq", &self.inner.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl JsonlSink {
    fn from_target(target: Target) -> JsonlSink {
        JsonlSink {
            inner: Arc::new(Inner {
                seq: AtomicU64::new(0),
                target: Mutex::new(target),
            }),
        }
    }

    /// A sink writing to any `Write` implementor (buffered by the caller
    /// if desired).
    pub fn to_writer(w: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink::from_target(Target::Writer(w))
    }

    /// A sink appending lines to an in-memory buffer, for tests; read it
    /// back with [`JsonlSink::lines`].
    pub fn in_memory() -> JsonlSink {
        JsonlSink::from_target(Target::Memory(Vec::new()))
    }

    /// A sink writing to a freshly created (truncated) file, buffered.
    ///
    /// # Errors
    ///
    /// Any error from creating the file.
    pub fn to_file(path: impl AsRef<Path>) -> std::io::Result<JsonlSink> {
        let file = File::create(path)?;
        Ok(JsonlSink::to_writer(Box::new(BufWriter::new(file))))
    }

    /// Emits one trace line: `{"seq":N,"kind":<kind>,...fields}`.
    /// Write errors are swallowed — tracing must never take down the
    /// traced system.
    pub fn emit(&self, kind: &str, fields: Vec<(&str, Json)>) {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let mut object = vec![
            ("seq".to_string(), Json::UInt(seq)),
            ("kind".to_string(), Json::str(kind)),
        ];
        object.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
        let line = Json::Object(object).to_string();
        match &mut *self.inner.target.lock() {
            Target::Writer(w) => {
                let _ = writeln!(w, "{line}");
            }
            Target::Memory(lines) => lines.push(line),
        }
    }

    /// Number of lines emitted so far.
    pub fn emitted(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }

    /// Flushes the underlying writer (no-op for in-memory sinks).
    pub fn flush(&self) {
        if let Target::Writer(w) = &mut *self.inner.target.lock() {
            let _ = w.flush();
        }
    }

    /// The lines captured by an [`JsonlSink::in_memory`] sink (empty for
    /// writer-backed sinks).
    pub fn lines(&self) -> Vec<String> {
        match &*self.inner.target.lock() {
            Target::Memory(lines) => lines.clone(),
            Target::Writer(_) => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_carry_monotonic_seq_and_parse() {
        let sink = JsonlSink::in_memory();
        sink.emit("txn_begin", vec![("txn", Json::UInt(1))]);
        sink.emit(
            "txn_committed",
            vec![("txn", Json::UInt(1)), ("bytes", Json::UInt(4096))],
        );
        let lines = sink.lines();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let v = Json::parse(line).expect("valid JSON");
            assert_eq!(v.get("seq").unwrap().as_f64(), Some(i as f64));
        }
        let last = Json::parse(&lines[1]).unwrap();
        assert_eq!(last.get("kind").unwrap().as_str(), Some("txn_committed"));
        assert_eq!(last.get("bytes").unwrap().as_f64(), Some(4096.0));
        assert_eq!(sink.emitted(), 2);
    }

    #[test]
    fn clones_share_the_sequence() {
        let sink = JsonlSink::in_memory();
        let clone = sink.clone();
        sink.emit("a", vec![]);
        clone.emit("b", vec![]);
        let lines = sink.lines();
        assert_eq!(lines.len(), 2);
        assert!(lines[1].contains("\"seq\":1"));
    }

    #[test]
    fn seq_is_total_across_threads() {
        let sink = JsonlSink::in_memory();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let sink = sink.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        sink.emit(
                            "tick",
                            vec![("thread", Json::UInt(t)), ("i", Json::UInt(i))],
                        );
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut seqs: Vec<u64> = sink
            .lines()
            .iter()
            .map(|l| {
                Json::parse(l)
                    .unwrap()
                    .get("seq")
                    .unwrap()
                    .as_f64()
                    .unwrap() as u64
            })
            .collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..400).collect::<Vec<u64>>());
    }

    #[test]
    fn file_sink_writes_lines() {
        let dir = std::env::temp_dir().join(format!(
            "perseas-obs-jsonl-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let sink = JsonlSink::to_file(&path).unwrap();
        sink.emit("hello", vec![("n", Json::UInt(7))]);
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(Json::parse(text.lines().next().unwrap()).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
