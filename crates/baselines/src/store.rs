//! The stable-storage abstraction behind the WAL baselines.
//!
//! RVM and RVM-on-Rio differ *only* in where their log and database files
//! live: on a magnetic disk, or inside the Rio reliable file cache. This
//! trait captures that seam.

use std::sync::Arc;

use parking_lot::Mutex;

use perseas_disk::{DiskFile, DiskParams, SimDisk, WriteMode};
use perseas_simtime::SimClock;

use crate::rio::{RioCache, RioParams, RioRegionId};

/// Stable storage for a WAL system: an append-only log plus one backing
/// file per database region.
///
/// Implementations are cloneable handles; the underlying storage survives
/// a crash of the transaction system (that is the point of stable
/// storage), so crash tests keep a clone and recover from it.
pub trait StableStore: Clone + Send {
    /// The clock operations are charged to.
    fn clock(&self) -> &SimClock;

    /// Creates the backing file for a database region of `len` bytes and
    /// returns its index.
    fn create_db_region(&mut self, len: usize) -> usize;

    /// Appends `data` to the log. With `sync`, blocks until durable.
    fn append_log(&mut self, data: &[u8], sync: bool);

    /// Forces all buffered log appends to stable storage.
    fn sync_log(&mut self);

    /// Current log length in bytes (including buffered appends).
    fn log_len(&self) -> usize;

    /// Discards the log (after a checkpoint).
    fn truncate_log(&mut self);

    /// Writes `data` at `offset` of region file `region` (checkpoint
    /// propagation; buffered).
    fn write_db(&mut self, region: usize, offset: usize, data: &[u8]);

    /// Forces buffered database writes to stable storage.
    fn flush_db(&mut self);

    /// The log image a crash would leave behind.
    fn stable_log(&self) -> Vec<u8>;

    /// The region-file image a crash would leave behind.
    fn stable_db(&self, region: usize) -> Vec<u8>;

    /// Number of database regions.
    fn region_count(&self) -> usize;

    /// Short name for diagnostics ("disk", "rio").
    fn medium(&self) -> &'static str;

    /// `true` if a log append is a remote-memory write (with the disk
    /// write happening asynchronously in its shadow) rather than a
    /// stable-store write in its own right — used by the copy/IO
    /// accounting.
    fn log_append_is_remote(&self) -> bool {
        false
    }
}

/// Log and database files on a simulated magnetic disk — the classic RVM
/// deployment.
#[derive(Debug, Clone)]
pub struct DiskStore {
    disk: SimDisk,
    log: DiskFile,
    db: Vec<DiskFile>,
}

impl DiskStore {
    /// Creates a store on a fresh 1998-class disk charging `clock`.
    pub fn new(clock: SimClock) -> Self {
        DiskStore::with_params(clock, DiskParams::disk_1998())
    }

    /// Creates a store on a disk with custom parameters (for the
    /// technology-trend ablation).
    pub fn with_params(clock: SimClock, params: DiskParams) -> Self {
        let disk = SimDisk::new(clock, params);
        let log = disk.create_file("wal-log", 0);
        DiskStore {
            disk,
            log,
            db: Vec::new(),
        }
    }

    /// The underlying disk (stats, crash injection).
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }
}

impl StableStore for DiskStore {
    fn clock(&self) -> &SimClock {
        self.disk.clock()
    }

    fn create_db_region(&mut self, len: usize) -> usize {
        let f = self.disk.create_file(format!("db-{}", self.db.len()), len);
        self.db.push(f);
        self.db.len() - 1
    }

    fn append_log(&mut self, data: &[u8], sync: bool) {
        let mode = if sync {
            WriteMode::Sync
        } else {
            WriteMode::Async
        };
        self.log.append(data, mode);
    }

    fn sync_log(&mut self) {
        // An explicit flush plus a zero-length sync barrier: the caller
        // waits until the device has drained.
        self.log.flush();
    }

    fn log_len(&self) -> usize {
        self.log.len()
    }

    fn truncate_log(&mut self) {
        self.log.truncate(0);
    }

    fn write_db(&mut self, region: usize, offset: usize, data: &[u8]) {
        self.db[region].write_at(offset, data, WriteMode::Async);
    }

    fn flush_db(&mut self) {
        if let Some(f) = self.db.first() {
            f.flush();
        }
    }

    fn stable_log(&self) -> Vec<u8> {
        self.log.stable_snapshot()
    }

    fn stable_db(&self, region: usize) -> Vec<u8> {
        self.db[region].stable_snapshot()
    }

    fn region_count(&self) -> usize {
        self.db.len()
    }

    fn medium(&self) -> &'static str {
        "disk"
    }
}

#[derive(Debug)]
struct RioLogState {
    len: usize,
}

/// Log and database files inside the Rio reliable file cache — the
/// RVM-on-Rio deployment. Every write is durable the moment it lands in
/// the cache, so "sync" costs nothing extra beyond the file operation
/// itself.
#[derive(Debug, Clone)]
pub struct RioStore {
    rio: RioCache,
    log_region: RioRegionId,
    log: Arc<Mutex<RioLogState>>,
    db: Vec<RioRegionId>,
}

impl RioStore {
    /// Initial log capacity; the region grows on demand.
    const INITIAL_LOG: usize = 256 << 10;

    /// Creates a store inside a fresh Rio cache charging `clock`.
    pub fn new(clock: SimClock) -> Self {
        RioStore::with_cache(RioCache::new(clock, RioParams::rio_1997()))
    }

    /// Creates a store inside an existing cache.
    pub fn with_cache(rio: RioCache) -> Self {
        let log_region = rio.create_region(Self::INITIAL_LOG);
        RioStore {
            rio,
            log_region,
            log: Arc::new(Mutex::new(RioLogState { len: 0 })),
            db: Vec::new(),
        }
    }

    /// The underlying cache.
    pub fn rio(&self) -> &RioCache {
        &self.rio
    }
}

impl StableStore for RioStore {
    fn clock(&self) -> &SimClock {
        self.rio.clock()
    }

    fn create_db_region(&mut self, len: usize) -> usize {
        self.db.push(self.rio.create_region(len));
        self.db.len() - 1
    }

    fn append_log(&mut self, data: &[u8], _sync: bool) {
        // In Rio a write is durable once it is in the cache; sync and
        // async cost the same file operation.
        let mut g = self.log.lock();
        let at = g.len;
        if at + data.len() > self.rio.region_len(self.log_region) {
            self.rio
                .grow_region(self.log_region, (at + data.len()).next_power_of_two());
        }
        self.rio.file_write(self.log_region, at, data);
        g.len += data.len();
    }

    fn sync_log(&mut self) {}

    fn log_len(&self) -> usize {
        self.log.lock().len
    }

    fn truncate_log(&mut self) {
        self.log.lock().len = 0;
    }

    fn write_db(&mut self, region: usize, offset: usize, data: &[u8]) {
        self.rio.file_write(self.db[region], offset, data);
    }

    fn flush_db(&mut self) {}

    fn stable_log(&self) -> Vec<u8> {
        let len = self.log.lock().len;
        let mut snap = self.rio.snapshot(self.log_region);
        snap.truncate(len);
        snap
    }

    fn stable_db(&self, region: usize) -> Vec<u8> {
        self.rio.snapshot(self.db[region])
    }

    fn region_count(&self) -> usize {
        self.db.len()
    }

    fn medium(&self) -> &'static str {
        "rio"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_store<S: StableStore>(mut s: S, expect_sync_cost_ms: bool) {
        let r = s.create_db_region(16);
        assert_eq!(s.region_count(), 1);
        let sw = s.clock().stopwatch();
        s.append_log(&[1; 32], true);
        if expect_sync_cost_ms {
            assert!(sw.elapsed().as_millis() >= 1, "sync log write too cheap");
        } else {
            assert!(sw.elapsed().as_millis() < 1, "rio log write too expensive");
        }
        assert_eq!(s.log_len(), 32);
        assert_eq!(s.stable_log(), vec![1; 32]);

        s.write_db(r, 0, &[7; 8]);
        s.flush_db();
        assert_eq!(&s.stable_db(r)[..8], &[7; 8]);

        s.truncate_log();
        assert_eq!(s.log_len(), 0);
        assert!(s.stable_log().is_empty());
    }

    #[test]
    fn disk_store_contract() {
        check_store(DiskStore::new(SimClock::new()), true);
    }

    #[test]
    fn rio_store_contract() {
        check_store(RioStore::new(SimClock::new()), false);
    }

    #[test]
    fn disk_store_async_appends_are_volatile_until_sync() {
        let mut s = DiskStore::new(SimClock::new());
        s.append_log(&[2; 16], false);
        assert!(s.stable_log().is_empty());
        s.sync_log();
        assert_eq!(s.stable_log(), vec![2; 16]);
    }

    #[test]
    fn rio_log_grows_on_demand() {
        let mut s = RioStore::new(SimClock::new());
        let big = vec![3u8; RioStore::INITIAL_LOG + 100];
        s.append_log(&big, true);
        assert_eq!(s.log_len(), big.len());
        assert_eq!(s.stable_log(), big);
    }

    #[test]
    fn media_names() {
        assert_eq!(DiskStore::new(SimClock::new()).medium(), "disk");
        assert_eq!(RioStore::new(SimClock::new()).medium(), "rio");
    }
}
