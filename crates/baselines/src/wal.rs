//! The RVM-like Write-Ahead Logging system (the paper's Figure 2).
//!
//! Three copies per update, plus stable-storage I/O:
//!
//! 1. `set_range` copies the before-image into an **in-memory undo log**
//!    (used only to make aborts fast);
//! 2. `commit` serialises the after-images into **redo records** and
//!    appends them, with a commit marker, to the write-ahead log on stable
//!    storage — *synchronously* in the classic configuration, or every
//!    N-th transaction under group commit;
//! 3. when enough transactions have committed, a **checkpoint** copies the
//!    updates from memory to the database file and reclaims the log.
//!
//! On a magnetic disk, step 2 is the multi-millisecond synchronous write
//! that PERSEAS eliminates; on Rio it is a cheap file operation, which is
//! exactly the RVM vs. Rio-RVM gap the paper reports.

use perseas_simtime::{MemCostModel, SimClock};
use perseas_txn::{RegionId, TransactionalMemory, TxnError, TxnStats};

use crate::store::{DiskStore, RioStore, StableStore};
use crate::walog::{self, WalRecord};

/// Tuning knobs of a [`WalSystem`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalConfig {
    /// Sync the log every `group_commit` commits (1 = classic synchronous
    /// commit; larger values trade durability latency for throughput).
    pub group_commit: usize,
    /// Checkpoint (propagate updates to the database file and truncate
    /// the log) when the log exceeds this many bytes.
    pub checkpoint_log_bytes: usize,
    /// Cost model for local copies.
    pub mem_cost: MemCostModel,
}

impl WalConfig {
    /// Classic RVM: synchronous commit, 1 MB log checkpoint threshold.
    pub fn new() -> Self {
        WalConfig {
            group_commit: 1,
            checkpoint_log_bytes: 1 << 20,
            mem_cost: MemCostModel::pentium_133(),
        }
    }

    /// Enables group commit with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_group_commit(mut self, n: usize) -> Self {
        assert!(n > 0, "group size must be positive");
        self.group_commit = n;
        self
    }

    /// Sets the checkpoint threshold.
    pub fn with_checkpoint_log_bytes(mut self, bytes: usize) -> Self {
        self.checkpoint_log_bytes = bytes;
        self
    }
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig::new()
    }
}

struct WalTxn {
    id: u64,
    declared: Vec<(usize, usize, usize)>,
    /// Before-images for abort: (region, offset, bytes).
    undo: Vec<(usize, usize, Vec<u8>)>,
}

/// A recoverable virtual memory in the RVM mould, generic over where its
/// stable storage lives.
///
/// # Examples
///
/// ```
/// use perseas_simtime::SimClock;
/// use perseas_baselines::{WalConfig, WalSystem};
/// use perseas_txn::TransactionalMemory;
///
/// # fn main() -> Result<(), perseas_txn::TxnError> {
/// let mut rvm = WalSystem::rvm(SimClock::new(), WalConfig::new());
/// let r = rvm.alloc_region(64)?;
/// rvm.publish()?;
/// rvm.begin_transaction()?;
/// rvm.set_range(r, 0, 8)?;
/// rvm.write(r, 0, &[1; 8])?;
/// rvm.commit_transaction()?; // synchronous multi-millisecond disk write
/// # Ok(())
/// # }
/// ```
pub struct WalSystem<S: StableStore> {
    store: S,
    cfg: WalConfig,
    regions: Vec<Vec<u8>>,
    published: bool,
    txn: Option<WalTxn>,
    next_txn_id: u64,
    /// Committed ranges not yet checkpointed to the database file.
    dirty: Vec<(usize, usize, usize)>,
    commits_since_sync: usize,
    stats: TxnStats,
}

impl WalSystem<DiskStore> {
    /// Classic RVM: log and database on a 1998 magnetic disk.
    pub fn rvm(clock: SimClock, cfg: WalConfig) -> Self {
        WalSystem::with_store(DiskStore::new(clock), cfg)
    }
}

impl WalSystem<RioStore> {
    /// RVM with its files inside the Rio reliable file cache.
    pub fn rio_rvm(clock: SimClock, cfg: WalConfig) -> Self {
        WalSystem::with_store(RioStore::new(clock), cfg)
    }
}

impl<S: StableStore> WalSystem<S> {
    /// Builds a WAL system over an existing store.
    pub fn with_store(store: S, cfg: WalConfig) -> Self {
        WalSystem {
            store,
            cfg,
            regions: Vec::new(),
            published: false,
            txn: None,
            next_txn_id: 1,
            dirty: Vec::new(),
            commits_since_sync: 0,
            stats: TxnStats::new(),
        }
    }

    /// The underlying stable store (stats, crash access).
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Recovers a WAL system from its surviving stable storage: the
    /// database files plus a redo scan of the log (only transactions whose
    /// commit marker made it to stable storage are replayed).
    pub fn recover(store: S, cfg: WalConfig) -> Self {
        let mut regions: Vec<Vec<u8>> = (0..store.region_count())
            .map(|r| store.stable_db(r))
            .collect();
        let log = store.stable_log();
        let records = walog::scan(&log);

        let committed: std::collections::HashSet<u64> = records
            .iter()
            .filter_map(|r| match r {
                WalRecord::Commit { txn_id } => Some(*txn_id),
                _ => None,
            })
            .collect();

        let mut max_id = 0u64;
        let mut dirty = Vec::new();
        for rec in &records {
            match rec {
                WalRecord::Update {
                    txn_id,
                    region,
                    offset,
                    payload,
                } if committed.contains(txn_id) => {
                    let ri = *region as usize;
                    let off = *offset as usize;
                    let bytes = &log[payload.clone()];
                    if ri < regions.len() && off + bytes.len() <= regions[ri].len() {
                        regions[ri][off..off + bytes.len()].copy_from_slice(bytes);
                        dirty.push((ri, off, bytes.len()));
                    }
                    max_id = max_id.max(*txn_id);
                }
                WalRecord::Commit { txn_id } => max_id = max_id.max(*txn_id),
                _ => {}
            }
        }

        let mut sys = WalSystem {
            store,
            cfg,
            regions,
            published: true,
            txn: None,
            next_txn_id: max_id + 1,
            dirty,
            commits_since_sync: 0,
            stats: TxnStats::new(),
        };
        // Fold the replayed updates into the database files and reclaim
        // the log, so a second crash cannot double-apply them against a
        // database new transactions have since modified.
        sys.checkpoint();
        sys
    }

    /// Forces a checkpoint: propagate every committed-but-unwritten range
    /// to the database file and truncate the log (the paper's Figure 2,
    /// step 3). Nearby dirty ranges are folded into one extent-sized write
    /// (sourcing the gap bytes from the in-memory image), as RVM's
    /// page-granular checkpointer does — thousands of scattered 8-byte
    /// disk writes would otherwise dominate.
    pub fn checkpoint(&mut self) {
        let ranges = coalesce_with_slack(&self.dirty, 8 << 10);
        for &(ri, start, len) in &ranges {
            self.store
                .write_db(ri, start, &self.regions[ri][start..start + len]);
            self.stats.add_disk_write(len, false);
            self.cfg.mem_cost.charge_memcpy(self.store.clock(), len);
            self.stats.add_local_copy(len);
        }
        self.store.flush_db();
        self.store.truncate_log();
        self.dirty.clear();
        self.commits_since_sync = 0;
    }

    fn check_region_range(
        &self,
        region: RegionId,
        offset: usize,
        len: usize,
    ) -> Result<usize, TxnError> {
        let ri = region.as_raw() as usize;
        let region_len = self
            .regions
            .get(ri)
            .map(Vec::len)
            .ok_or(TxnError::UnknownRegion(region))?;
        if offset.checked_add(len).is_none_or(|e| e > region_len) {
            return Err(TxnError::OutOfBounds {
                region,
                offset,
                len,
                region_len,
            });
        }
        Ok(ri)
    }
}

/// Coalesces `(region, start, len)` triples into maximal disjoint ranges.
fn coalesce(declared: &[(usize, usize, usize)]) -> Vec<(usize, usize, usize)> {
    coalesce_with_slack(declared, 0)
}

/// Like [`coalesce`], but additionally merges ranges of the same region
/// separated by at most `slack` bytes into one spanning range.
fn coalesce_with_slack(
    declared: &[(usize, usize, usize)],
    slack: usize,
) -> Vec<(usize, usize, usize)> {
    let mut ranges: Vec<(usize, usize, usize)> = declared
        .iter()
        .filter(|&&(_, _, l)| l > 0)
        .map(|&(r, s, l)| (r, s, s + l))
        .collect();
    ranges.sort_unstable();
    let mut out: Vec<(usize, usize, usize)> = Vec::with_capacity(ranges.len());
    for (r, s, e) in ranges {
        match out.last_mut() {
            Some((lr, _, le)) if *lr == r && s <= *le + slack => *le = (*le).max(e),
            _ => out.push((r, s, e)),
        }
    }
    out.into_iter().map(|(r, s, e)| (r, s, e - s)).collect()
}

impl<S: StableStore> TransactionalMemory for WalSystem<S> {
    fn system_name(&self) -> &'static str {
        match (self.store.medium(), self.cfg.group_commit) {
            ("disk", 1) => "rvm",
            ("disk", _) => "rvm-group",
            ("rio", _) => "rio-rvm",
            ("net+disk", _) => "remote-wal",
            _ => "wal",
        }
    }

    fn alloc_region(&mut self, len: usize) -> Result<RegionId, TxnError> {
        if self.txn.is_some() {
            return Err(TxnError::BusyInTransaction);
        }
        if self.published {
            return Err(TxnError::BadPublishState);
        }
        let idx = self.store.create_db_region(len);
        debug_assert_eq!(idx, self.regions.len());
        self.regions.push(vec![0; len]);
        Ok(RegionId::from_raw(idx as u32))
    }

    fn publish(&mut self) -> Result<(), TxnError> {
        if self.published {
            return Err(TxnError::BadPublishState);
        }
        for ri in 0..self.regions.len() {
            if self.regions[ri].is_empty() {
                continue;
            }
            let img = self.regions[ri].clone();
            self.store.write_db(ri, 0, &img);
            self.stats.add_disk_write(img.len(), false);
        }
        self.store.flush_db();
        self.published = true;
        Ok(())
    }

    fn begin_transaction(&mut self) -> Result<(), TxnError> {
        if self.txn.is_some() {
            return Err(TxnError::TransactionAlreadyActive);
        }
        if !self.published {
            return Err(TxnError::BadPublishState);
        }
        self.txn = Some(WalTxn {
            id: self.next_txn_id,
            declared: Vec::new(),
            undo: Vec::new(),
        });
        self.next_txn_id += 1;
        Ok(())
    }

    fn set_range(&mut self, region: RegionId, offset: usize, len: usize) -> Result<(), TxnError> {
        let ri = self.check_region_range(region, offset, len)?;
        let Some(txn) = self.txn.as_mut() else {
            return Err(TxnError::NoActiveTransaction);
        };
        if len == 0 {
            return Ok(());
        }
        // Copy 1 (Figure 2): before-image into the in-memory undo log.
        let before = self.regions[ri][offset..offset + len].to_vec();
        txn.declared.push((ri, offset, len));
        txn.undo.push((ri, offset, before));
        self.cfg.mem_cost.charge_memcpy(self.store.clock(), len);
        self.stats.add_local_copy(len);
        self.stats.set_ranges += 1;
        Ok(())
    }

    fn write(&mut self, region: RegionId, offset: usize, data: &[u8]) -> Result<(), TxnError> {
        let ri = self.check_region_range(region, offset, data.len())?;
        match (&self.txn, self.published) {
            (Some(txn), _) => {
                if let Some(bad) = first_uncovered(&txn.declared, ri, offset, data.len()) {
                    return Err(TxnError::RangeNotDeclared {
                        region,
                        offset: bad,
                    });
                }
            }
            (None, false) => {} // initialisation
            (None, true) => return Err(TxnError::NoActiveTransaction),
        }
        self.regions[ri][offset..offset + data.len()].copy_from_slice(data);
        self.cfg
            .mem_cost
            .charge_memcpy(self.store.clock(), data.len());
        Ok(())
    }

    fn read(&self, region: RegionId, offset: usize, buf: &mut [u8]) -> Result<(), TxnError> {
        let ri = self.check_region_range(region, offset, buf.len())?;
        buf.copy_from_slice(&self.regions[ri][offset..offset + buf.len()]);
        self.cfg
            .mem_cost
            .charge_memcpy(self.store.clock(), buf.len());
        Ok(())
    }

    fn commit_transaction(&mut self) -> Result<(), TxnError> {
        let Some(txn) = self.txn.take() else {
            return Err(TxnError::NoActiveTransaction);
        };
        let ranges = coalesce(&txn.declared);
        if !ranges.is_empty() {
            // Copy 2 (Figure 2): after-images into the redo log.
            let mut buf = Vec::new();
            for &(ri, start, len) in &ranges {
                walog::encode_update(
                    &mut buf,
                    txn.id,
                    ri as u32,
                    start as u64,
                    &self.regions[ri][start..start + len],
                );
                self.cfg.mem_cost.charge_memcpy(self.store.clock(), len);
                self.stats.add_local_copy(len);
            }
            walog::encode_commit(&mut buf, txn.id);

            self.commits_since_sync += 1;
            let sync = self.commits_since_sync >= self.cfg.group_commit;
            self.store.append_log(&buf, sync);
            if self.store.log_append_is_remote() {
                // The durable copy went to remote memory; the disk write
                // trails asynchronously.
                self.stats.add_remote_write(buf.len());
                self.stats.add_disk_write(buf.len(), false);
            } else {
                self.stats.add_disk_write(buf.len(), sync);
            }
            if sync {
                self.commits_since_sync = 0;
            }
            self.dirty.extend_from_slice(&ranges);

            if self.store.log_len() > self.cfg.checkpoint_log_bytes {
                self.checkpoint();
            }
        }
        self.stats.commits += 1;
        Ok(())
    }

    fn abort_transaction(&mut self) -> Result<(), TxnError> {
        let Some(txn) = self.txn.take() else {
            return Err(TxnError::NoActiveTransaction);
        };
        for (ri, offset, before) in txn.undo.iter().rev() {
            self.regions[*ri][*offset..*offset + before.len()].copy_from_slice(before);
            self.cfg
                .mem_cost
                .charge_memcpy(self.store.clock(), before.len());
            self.stats.add_local_copy(before.len());
        }
        self.stats.aborts += 1;
        Ok(())
    }

    fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    fn clock(&self) -> &SimClock {
        self.store.clock()
    }

    fn stats(&self) -> TxnStats {
        self.stats
    }

    fn region_len(&self, region: RegionId) -> Result<usize, TxnError> {
        self.regions
            .get(region.as_raw() as usize)
            .map(Vec::len)
            .ok_or(TxnError::UnknownRegion(region))
    }
}

/// Returns the first uncovered byte of `[start, start+len)`, or `None`.
fn first_uncovered(
    declared: &[(usize, usize, usize)],
    ri: usize,
    start: usize,
    len: usize,
) -> Option<usize> {
    let mut uncovered = vec![(start, start + len)];
    for &(r, s, l) in declared {
        if r != ri || l == 0 {
            continue;
        }
        let (ds, de) = (s, s + l);
        let mut next = Vec::with_capacity(uncovered.len() + 1);
        for (a, b) in uncovered {
            if de <= a || ds >= b {
                next.push((a, b));
            } else {
                if a < ds {
                    next.push((a, ds));
                }
                if de < b {
                    next.push((de, b));
                }
            }
        }
        uncovered = next;
        if uncovered.is_empty() {
            return None;
        }
    }
    uncovered.first().map(|&(a, _)| a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rvm() -> WalSystem<DiskStore> {
        WalSystem::rvm(SimClock::new(), WalConfig::new())
    }

    fn published(len: usize) -> (WalSystem<DiskStore>, RegionId) {
        let mut s = rvm();
        let r = s.alloc_region(len).unwrap();
        s.publish().unwrap();
        (s, r)
    }

    #[test]
    fn commit_roundtrip_and_disk_cost() {
        let (mut s, r) = published(64);
        let sw = s.clock().stopwatch();
        s.begin_transaction().unwrap();
        s.set_range(r, 0, 8).unwrap();
        s.write(r, 0, &[1; 8]).unwrap();
        s.commit_transaction().unwrap();
        // A synchronous 1998 disk write: milliseconds, not microseconds.
        assert!(sw.elapsed().as_millis() >= 1);
        let mut buf = [0u8; 8];
        s.read(r, 0, &mut buf).unwrap();
        assert_eq!(buf, [1; 8]);
        assert_eq!(s.stats().disk_sync_writes, 1);
    }

    #[test]
    fn abort_restores() {
        let (mut s, r) = published(32);
        s.begin_transaction().unwrap();
        s.set_range(r, 0, 16).unwrap();
        s.write(r, 0, &[9; 16]).unwrap();
        s.abort_transaction().unwrap();
        let mut buf = [0u8; 16];
        s.read(r, 0, &mut buf).unwrap();
        assert_eq!(buf, [0; 16]);
    }

    #[test]
    fn undeclared_write_rejected() {
        let (mut s, r) = published(32);
        s.begin_transaction().unwrap();
        assert!(matches!(
            s.write(r, 0, &[1]).unwrap_err(),
            TxnError::RangeNotDeclared { .. }
        ));
    }

    #[test]
    fn recovery_replays_committed_transactions_only() {
        let (mut s, r) = published(64);
        s.begin_transaction().unwrap();
        s.set_range(r, 0, 8).unwrap();
        s.write(r, 0, &[1; 8]).unwrap();
        s.commit_transaction().unwrap();
        // Second transaction aborts; third never commits before the crash.
        s.begin_transaction().unwrap();
        s.set_range(r, 8, 8).unwrap();
        s.write(r, 8, &[2; 8]).unwrap();
        s.abort_transaction().unwrap();

        let store = s.store().clone();
        drop(s); // crash: in-memory state gone
        store.disk().crash_volatile();

        let s2 = WalSystem::recover(store, WalConfig::new());
        let mut buf = [0u8; 16];
        s2.read(r, 0, &mut buf).unwrap();
        assert_eq!(&buf[..8], &[1; 8]);
        assert_eq!(&buf[8..], &[0; 8]);
        // Recovered system accepts new transactions.
        let mut s2 = s2;
        s2.begin_transaction().unwrap();
        s2.set_range(r, 16, 4).unwrap();
        s2.write(r, 16, &[3; 4]).unwrap();
        s2.commit_transaction().unwrap();
    }

    #[test]
    fn group_commit_loses_unsynced_tail_but_keeps_synced_prefix() {
        let cfg = WalConfig::new().with_group_commit(4);
        let mut s = WalSystem::rvm(SimClock::new(), cfg);
        let r = s.alloc_region(64).unwrap();
        s.publish().unwrap();
        // 5 commits: the 4th triggers a sync; the 5th stays buffered.
        for i in 0..5u8 {
            s.begin_transaction().unwrap();
            s.set_range(r, i as usize * 8, 8).unwrap();
            s.write(r, i as usize * 8, &[i + 1; 8]).unwrap();
            s.commit_transaction().unwrap();
        }
        let store = s.store().clone();
        drop(s);
        store.disk().crash_volatile();
        let s2 = WalSystem::recover(store, cfg);
        let mut buf = [0u8; 40];
        s2.read(r, 0, &mut buf).unwrap();
        for i in 0..4u8 {
            assert_eq!(
                &buf[i as usize * 8..(i as usize + 1) * 8],
                &[i + 1; 8],
                "synced txn {i} lost"
            );
        }
        assert_eq!(&buf[32..40], &[0; 8], "unsynced txn survived?");
    }

    #[test]
    fn group_commit_improves_throughput() {
        let run = |group: usize| {
            let cfg = WalConfig::new().with_group_commit(group);
            let clock = SimClock::new();
            let mut s = WalSystem::rvm(clock.clone(), cfg);
            let r = s.alloc_region(1024).unwrap();
            s.publish().unwrap();
            let sw = clock.stopwatch();
            for i in 0..64usize {
                s.begin_transaction().unwrap();
                s.set_range(r, (i * 16) % 1024, 16).unwrap();
                s.write(r, (i * 16) % 1024, &[1; 16]).unwrap();
                s.commit_transaction().unwrap();
            }
            sw.elapsed()
        };
        let classic = run(1);
        let grouped = run(16);
        assert!(
            grouped.as_nanos() * 4 < classic.as_nanos(),
            "group commit should be >4x faster: {classic} vs {grouped}"
        );
    }

    #[test]
    fn checkpoint_truncates_log() {
        let cfg = WalConfig::new().with_checkpoint_log_bytes(256);
        let mut s = WalSystem::rvm(SimClock::new(), cfg);
        let r = s.alloc_region(1024).unwrap();
        s.publish().unwrap();
        for i in 0..8usize {
            s.begin_transaction().unwrap();
            s.set_range(r, i * 64, 64).unwrap();
            s.write(r, i * 64, &[7; 64]).unwrap();
            s.commit_transaction().unwrap();
        }
        // With a 256-byte threshold the log must have been truncated at
        // least once; after a final explicit checkpoint it is empty and
        // the database file holds everything.
        s.checkpoint();
        let store = s.store().clone();
        drop(s);
        store.disk().crash_volatile();
        let s2 = WalSystem::recover(store, cfg);
        let mut buf = vec![0u8; 512];
        s2.read(r, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 7));
    }

    #[test]
    fn rio_rvm_is_orders_faster_than_disk_rvm() {
        let run_disk = {
            let clock = SimClock::new();
            let mut s = WalSystem::rvm(clock.clone(), WalConfig::new());
            let r = s.alloc_region(64).unwrap();
            s.publish().unwrap();
            let sw = clock.stopwatch();
            s.begin_transaction().unwrap();
            s.set_range(r, 0, 8).unwrap();
            s.write(r, 0, &[1; 8]).unwrap();
            s.commit_transaction().unwrap();
            sw.elapsed()
        };
        let run_rio = {
            let clock = SimClock::new();
            let mut s = WalSystem::rio_rvm(clock.clone(), WalConfig::new());
            let r = s.alloc_region(64).unwrap();
            s.publish().unwrap();
            let sw = clock.stopwatch();
            s.begin_transaction().unwrap();
            s.set_range(r, 0, 8).unwrap();
            s.write(r, 0, &[1; 8]).unwrap();
            s.commit_transaction().unwrap();
            sw.elapsed()
        };
        assert!(
            run_rio.as_nanos() * 20 < run_disk.as_nanos(),
            "rio {run_rio} vs disk {run_disk}"
        );
    }

    #[test]
    fn system_names() {
        assert_eq!(rvm().system_name(), "rvm");
        assert_eq!(
            WalSystem::rvm(SimClock::new(), WalConfig::new().with_group_commit(8)).system_name(),
            "rvm-group"
        );
        assert_eq!(
            WalSystem::rio_rvm(SimClock::new(), WalConfig::new()).system_name(),
            "rio-rvm"
        );
    }

    #[test]
    fn state_machine_errors() {
        let mut s = rvm();
        let r = s.alloc_region(8).unwrap();
        assert_eq!(
            s.begin_transaction().unwrap_err(),
            TxnError::BadPublishState
        );
        s.publish().unwrap();
        assert_eq!(s.publish().unwrap_err(), TxnError::BadPublishState);
        assert_eq!(s.alloc_region(8).unwrap_err(), TxnError::BadPublishState);
        assert_eq!(
            s.set_range(r, 0, 1).unwrap_err(),
            TxnError::NoActiveTransaction
        );
        s.begin_transaction().unwrap();
        assert_eq!(
            s.begin_transaction().unwrap_err(),
            TxnError::TransactionAlreadyActive
        );
    }
}
