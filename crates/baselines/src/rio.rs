//! A model of the Rio reliable file cache (Chen et al., ASPLOS 1996).
//!
//! Rio modifies the operating system so that file-cache pages survive
//! crashes: with a UPS against power loss and write-protection against
//! wild kernel stores, main memory becomes stable storage. Two access
//! paths exist:
//!
//! * the ordinary **file interface** (`write` syscalls) — used by RVM when
//!   its log and database files live in Rio; each operation pays a
//!   syscall + file-system overhead but runs at memory speed;
//! * **mapped stores** — Vista maps its database straight into the
//!   protected cache; a store costs a memory store plus a small
//!   protection-manipulation overhead.
//!
//! Everything written into the cache is durable immediately; a primary
//! crash loses nothing (that is Rio's whole point). What Rio does *not*
//! give you — and where PERSEAS differs — is surviving the machine staying
//! down: the data is safe inside the crashed box but unavailable until it
//! reboots, whereas PERSEAS can restart from the mirror at once.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use perseas_simtime::{MemCostModel, SimClock, SimDuration};

/// Cost parameters of the Rio cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RioParams {
    /// Overhead of one file-interface operation (syscall, file-system
    /// bookkeeping, cache lookup), in nanoseconds.
    pub file_op_ns: u64,
    /// Overhead of one mapped store burst (protection manipulation), in
    /// nanoseconds.
    pub mapped_op_ns: u64,
    /// Cost model of the underlying memory copies.
    pub mem_cost: MemCostModel,
}

impl RioParams {
    /// Parameters calibrated against Lowell & Chen's measurements on the
    /// paper's era of hardware: ~45 µs per file operation, ~1 µs of
    /// protection overhead per mapped store burst.
    pub fn rio_1997() -> Self {
        RioParams {
            file_op_ns: 45_000,
            mapped_op_ns: 1_000,
            mem_cost: MemCostModel::pentium_133(),
        }
    }
}

impl Default for RioParams {
    fn default() -> Self {
        RioParams::rio_1997()
    }
}

/// Identifier of a region inside one [`RioCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RioRegionId(u64);

impl fmt::Display for RioRegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rio#{}", self.0)
    }
}

#[derive(Debug)]
struct Inner {
    regions: Vec<Vec<u8>>,
}

/// The protected, crash-surviving file cache.
///
/// Cloning yields a handle to the same cache. The cache deliberately lives
/// outside any primary-process state: crash tests drop the transaction
/// system but keep the cache handle, modelling Rio's guarantee.
///
/// # Examples
///
/// ```
/// use perseas_simtime::SimClock;
/// use perseas_baselines::{RioCache, RioParams};
///
/// let rio = RioCache::new(SimClock::new(), RioParams::rio_1997());
/// let region = rio.create_region(16);
/// rio.file_write(region, 0, &[1, 2, 3]);
/// let mut buf = [0u8; 3];
/// rio.read(region, 0, &mut buf);
/// assert_eq!(buf, [1, 2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct RioCache {
    clock: SimClock,
    params: RioParams,
    inner: Arc<Mutex<Inner>>,
}

impl RioCache {
    /// Creates an empty cache charging costs to `clock`.
    pub fn new(clock: SimClock, params: RioParams) -> Self {
        RioCache {
            clock,
            params,
            inner: Arc::new(Mutex::new(Inner {
                regions: Vec::new(),
            })),
        }
    }

    /// The clock this cache charges.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The cost parameters.
    pub fn params(&self) -> &RioParams {
        &self.params
    }

    /// Creates a zero-filled protected region of `len` bytes.
    pub fn create_region(&self, len: usize) -> RioRegionId {
        let mut g = self.inner.lock();
        g.regions.push(vec![0; len]);
        RioRegionId(g.regions.len() as u64 - 1)
    }

    /// Grows region `r` to `len` bytes (no-op if already larger).
    pub fn grow_region(&self, r: RioRegionId, len: usize) {
        let mut g = self.inner.lock();
        let v = &mut g.regions[r.0 as usize];
        if v.len() < len {
            v.resize(len, 0);
        }
    }

    /// Length of region `r`.
    pub fn region_len(&self, r: RioRegionId) -> usize {
        self.inner.lock().regions[r.0 as usize].len()
    }

    /// Writes through the **file interface** (syscall cost + copy cost).
    /// Durable on return.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the region.
    pub fn file_write(&self, r: RioRegionId, offset: usize, data: &[u8]) {
        self.clock
            .advance(SimDuration::from_nanos(self.params.file_op_ns));
        self.params.mem_cost.charge_memcpy(&self.clock, data.len());
        let mut g = self.inner.lock();
        g.regions[r.0 as usize][offset..offset + data.len()].copy_from_slice(data);
    }

    /// Writes through the **mapped interface** (protection overhead + copy
    /// cost). Durable on return.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the region.
    pub fn mapped_write(&self, r: RioRegionId, offset: usize, data: &[u8]) {
        self.clock
            .advance(SimDuration::from_nanos(self.params.mapped_op_ns));
        self.params.mem_cost.charge_memcpy(&self.clock, data.len());
        let mut g = self.inner.lock();
        g.regions[r.0 as usize][offset..offset + data.len()].copy_from_slice(data);
    }

    /// Reads from the cache (memory-speed copy, no syscall modelled — the
    /// hot path in both RVM and Vista reads mapped memory).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the region.
    pub fn read(&self, r: RioRegionId, offset: usize, buf: &mut [u8]) {
        let g = self.inner.lock();
        buf.copy_from_slice(&g.regions[r.0 as usize][offset..offset + buf.len()]);
        drop(g);
        self.params.mem_cost.charge_memcpy(&self.clock, buf.len());
    }

    /// A copy of the whole region — by construction this is also what a
    /// crash would leave behind.
    pub fn snapshot(&self, r: RioRegionId) -> Vec<u8> {
        self.inner.lock().regions[r.0 as usize].clone()
    }

    /// `true` if `other` is a handle to the same cache.
    pub fn same_cache(&self, other: &RioCache) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> RioCache {
        RioCache::new(SimClock::new(), RioParams::rio_1997())
    }

    #[test]
    fn file_writes_cost_syscalls() {
        let rio = cache();
        let r = rio.create_region(64);
        let sw = rio.clock().stopwatch();
        rio.file_write(r, 0, &[1; 64]);
        assert!(sw.elapsed().as_nanos() >= 45_000);
    }

    #[test]
    fn mapped_writes_are_much_cheaper() {
        let rio = cache();
        let r = rio.create_region(64);
        let sw = rio.clock().stopwatch();
        rio.mapped_write(r, 0, &[1; 64]);
        let mapped = sw.elapsed();
        let sw = rio.clock().stopwatch();
        rio.file_write(r, 0, &[1; 64]);
        let file = sw.elapsed();
        assert!(mapped.as_nanos() * 10 < file.as_nanos());
    }

    #[test]
    fn contents_survive_via_shared_handle() {
        let rio = cache();
        let r = rio.create_region(8);
        rio.mapped_write(r, 0, &[9; 8]);
        // "Crash": the writer is dropped; the cache handle remains.
        let survivor = rio.clone();
        drop(rio);
        assert_eq!(survivor.snapshot(r), vec![9; 8]);
        assert!(survivor.same_cache(&survivor.clone()));
    }

    #[test]
    fn grow_preserves_contents() {
        let rio = cache();
        let r = rio.create_region(4);
        rio.file_write(r, 0, &[5; 4]);
        rio.grow_region(r, 8);
        assert_eq!(rio.region_len(r), 8);
        assert_eq!(rio.snapshot(r), vec![5, 5, 5, 5, 0, 0, 0, 0]);
        rio.grow_region(r, 2); // shrink request is a no-op
        assert_eq!(rio.region_len(r), 8);
    }

    #[test]
    fn reads_return_written_bytes() {
        let rio = cache();
        let r = rio.create_region(16);
        rio.mapped_write(r, 4, &[7, 8]);
        let mut buf = [0u8; 2];
        rio.read(r, 4, &mut buf);
        assert_eq!(buf, [7, 8]);
    }
}
