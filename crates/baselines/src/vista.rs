//! A Vista-like recoverable memory (Lowell & Chen, SOSP 1997).
//!
//! Vista maps the database straight into the Rio reliable file cache:
//! every ordinary store is already durable. Transactions therefore need
//! *no redo log at all* — only an undo log (also in reliable memory) so
//! that aborts and crash recovery can roll back uncommitted updates:
//!
//! * `set_range` appends the before-image to the undo log (one mapped
//!   copy), then bumps the log-length word;
//! * `write` stores straight into the mapped database;
//! * `commit` clears the undo-log length — a single word store is the
//!   durability point;
//! * recovery rolls the undo log back (newest record first) if the length
//!   word is non-zero.
//!
//! Vista is the fastest recoverable memory the paper compares against,
//! and the one PERSEAS matches while remaining OS-independent. Its
//! structural weakness, which the paper exploits: data in a crashed
//! machine's Rio cache is *safe but unavailable* until that machine
//! reboots, while PERSEAS fails over to the mirror immediately.

use perseas_simtime::SimClock;
use perseas_txn::{RegionId, TransactionalMemory, TxnError, TxnStats};

use crate::rio::{RioCache, RioParams, RioRegionId};

const UNDO_HEADER: usize = 20; // region u32, offset u64, len u64

/// A shareable handle describing a Vista database inside a Rio cache —
/// everything recovery needs (the cache plus the region layout, which in
/// real Vista is rebuilt from the mapped file's own header).
#[derive(Debug, Clone)]
pub struct VistaHandle {
    rio: RioCache,
    db: Vec<RioRegionId>,
    undo: RioRegionId,
    /// Holds the 8-byte undo-log length word.
    meta: RioRegionId,
}

struct VistaTxn {
    declared: Vec<(usize, usize, usize)>,
    /// Offsets of the records of this transaction in the undo region.
    records: Vec<usize>,
}

/// The Vista-like transactional memory.
///
/// # Examples
///
/// ```
/// use perseas_simtime::SimClock;
/// use perseas_baselines::VistaSystem;
/// use perseas_txn::TransactionalMemory;
///
/// # fn main() -> Result<(), perseas_txn::TxnError> {
/// let mut vista = VistaSystem::new(SimClock::new());
/// let r = vista.alloc_region(64)?;
/// vista.publish()?;
/// vista.begin_transaction()?;
/// vista.set_range(r, 0, 8)?;
/// vista.write(r, 0, &[1; 8])?;
/// vista.commit_transaction()?; // one word store — microseconds
/// # Ok(())
/// # }
/// ```
pub struct VistaSystem {
    rio: RioCache,
    db: Vec<RioRegionId>,
    undo: RioRegionId,
    meta: RioRegionId,
    region_lens: Vec<usize>,
    published: bool,
    txn: Option<VistaTxn>,
    undo_off: usize,
    stats: TxnStats,
}

impl VistaSystem {
    const INITIAL_UNDO: usize = 64 << 10;

    /// Creates a Vista instance in a fresh Rio cache charging `clock`.
    pub fn new(clock: SimClock) -> Self {
        VistaSystem::with_cache(RioCache::new(clock, RioParams::rio_1997()))
    }

    /// Creates a Vista instance inside an existing cache.
    pub fn with_cache(rio: RioCache) -> Self {
        let undo = rio.create_region(Self::INITIAL_UNDO);
        let meta = rio.create_region(8);
        VistaSystem {
            rio,
            db: Vec::new(),
            undo,
            meta,
            region_lens: Vec::new(),
            published: false,
            txn: None,
            undo_off: 0,
            stats: TxnStats::new(),
        }
    }

    /// The handle a crash survivor needs to recover this database.
    pub fn handle(&self) -> VistaHandle {
        VistaHandle {
            rio: self.rio.clone(),
            db: self.db.clone(),
            undo: self.undo,
            meta: self.meta,
        }
    }

    /// Recovers from the reliable memory image: if the undo-length word is
    /// non-zero a transaction was in flight, and its before-images are
    /// applied newest-first.
    pub fn recover(handle: VistaHandle) -> Self {
        let mut len_word = [0u8; 8];
        handle.rio.read(handle.meta, 0, &mut len_word);
        let undo_len = u64::from_le_bytes(len_word) as usize;

        if undo_len > 0 {
            let mut log = vec![0u8; undo_len];
            handle.rio.read(handle.undo, 0, &mut log);
            // Parse record offsets, then apply in reverse.
            let mut offsets = Vec::new();
            let mut at = 0usize;
            while at + UNDO_HEADER <= undo_len {
                let len =
                    u64::from_le_bytes(log[at + 12..at + 20].try_into().expect("8 bytes")) as usize;
                if at + UNDO_HEADER + len > undo_len {
                    break;
                }
                offsets.push(at);
                at += UNDO_HEADER + len;
            }
            for &at in offsets.iter().rev() {
                let region =
                    u32::from_le_bytes(log[at..at + 4].try_into().expect("4 bytes")) as usize;
                let offset =
                    u64::from_le_bytes(log[at + 4..at + 12].try_into().expect("8 bytes")) as usize;
                let len =
                    u64::from_le_bytes(log[at + 12..at + 20].try_into().expect("8 bytes")) as usize;
                if region < handle.db.len() {
                    let payload = &log[at + UNDO_HEADER..at + UNDO_HEADER + len];
                    handle.rio.mapped_write(handle.db[region], offset, payload);
                }
            }
            handle.rio.mapped_write(handle.meta, 0, &0u64.to_le_bytes());
        }

        let region_lens = handle
            .db
            .iter()
            .map(|&r| handle.rio.region_len(r))
            .collect();
        VistaSystem {
            rio: handle.rio,
            db: handle.db,
            undo: handle.undo,
            meta: handle.meta,
            region_lens,
            published: true,
            txn: None,
            undo_off: 0,
            stats: TxnStats::new(),
        }
    }

    /// The underlying Rio cache.
    pub fn rio(&self) -> &RioCache {
        &self.rio
    }

    fn check_region_range(
        &self,
        region: RegionId,
        offset: usize,
        len: usize,
    ) -> Result<usize, TxnError> {
        let ri = region.as_raw() as usize;
        let region_len = *self
            .region_lens
            .get(ri)
            .ok_or(TxnError::UnknownRegion(region))?;
        if offset.checked_add(len).is_none_or(|e| e > region_len) {
            return Err(TxnError::OutOfBounds {
                region,
                offset,
                len,
                region_len,
            });
        }
        Ok(ri)
    }
}

impl TransactionalMemory for VistaSystem {
    fn system_name(&self) -> &'static str {
        "vista"
    }

    fn alloc_region(&mut self, len: usize) -> Result<RegionId, TxnError> {
        if self.txn.is_some() {
            return Err(TxnError::BusyInTransaction);
        }
        if self.published {
            return Err(TxnError::BadPublishState);
        }
        self.db.push(self.rio.create_region(len));
        self.region_lens.push(len);
        Ok(RegionId::from_raw(self.db.len() as u32 - 1))
    }

    fn publish(&mut self) -> Result<(), TxnError> {
        if self.published {
            return Err(TxnError::BadPublishState);
        }
        // The database already lives in reliable memory: publication is
        // free (initialisation stores were durable the moment they
        // happened).
        self.published = true;
        Ok(())
    }

    fn begin_transaction(&mut self) -> Result<(), TxnError> {
        if self.txn.is_some() {
            return Err(TxnError::TransactionAlreadyActive);
        }
        if !self.published {
            return Err(TxnError::BadPublishState);
        }
        self.txn = Some(VistaTxn {
            declared: Vec::new(),
            records: Vec::new(),
        });
        self.undo_off = 0;
        Ok(())
    }

    fn set_range(&mut self, region: RegionId, offset: usize, len: usize) -> Result<(), TxnError> {
        let ri = self.check_region_range(region, offset, len)?;
        if self.txn.is_none() {
            return Err(TxnError::NoActiveTransaction);
        }
        if len == 0 {
            return Ok(());
        }

        // Append [region, offset, len, before-image] to the undo log.
        let mut rec = Vec::with_capacity(UNDO_HEADER + len);
        rec.extend_from_slice(&(ri as u32).to_le_bytes());
        rec.extend_from_slice(&(offset as u64).to_le_bytes());
        rec.extend_from_slice(&(len as u64).to_le_bytes());
        let mut before = vec![0u8; len];
        self.rio.read(self.db[ri], offset, &mut before);
        rec.extend_from_slice(&before);

        if self.undo_off + rec.len() > self.rio.region_len(self.undo) {
            self.rio
                .grow_region(self.undo, (self.undo_off + rec.len()).next_power_of_two());
        }
        let at = self.undo_off;
        self.rio.mapped_write(self.undo, at, &rec);
        self.undo_off += rec.len();
        // Durability point of the record: bump the length word.
        self.rio
            .mapped_write(self.meta, 0, &(self.undo_off as u64).to_le_bytes());
        self.stats.add_local_copy(len);
        self.stats.set_ranges += 1;

        let txn = self.txn.as_mut().expect("in txn");
        txn.declared.push((ri, offset, len));
        txn.records.push(at);
        Ok(())
    }

    fn write(&mut self, region: RegionId, offset: usize, data: &[u8]) -> Result<(), TxnError> {
        let ri = self.check_region_range(region, offset, data.len())?;
        match (&self.txn, self.published) {
            (Some(txn), _) => {
                if let Some(bad) = first_uncovered(&txn.declared, ri, offset, data.len()) {
                    return Err(TxnError::RangeNotDeclared {
                        region,
                        offset: bad,
                    });
                }
            }
            (None, false) => {}
            (None, true) => return Err(TxnError::NoActiveTransaction),
        }
        // A store into mapped reliable memory: durable immediately.
        self.rio.mapped_write(self.db[ri], offset, data);
        Ok(())
    }

    fn read(&self, region: RegionId, offset: usize, buf: &mut [u8]) -> Result<(), TxnError> {
        let ri = self.check_region_range(region, offset, buf.len())?;
        self.rio.read(self.db[ri], offset, buf);
        Ok(())
    }

    fn commit_transaction(&mut self) -> Result<(), TxnError> {
        if self.txn.take().is_none() {
            return Err(TxnError::NoActiveTransaction);
        }
        // The single-word durability point: discard the undo log.
        self.rio.mapped_write(self.meta, 0, &0u64.to_le_bytes());
        self.undo_off = 0;
        self.stats.commits += 1;
        Ok(())
    }

    fn abort_transaction(&mut self) -> Result<(), TxnError> {
        let Some(txn) = self.txn.take() else {
            return Err(TxnError::NoActiveTransaction);
        };
        // Roll back newest-first from the reliable undo log.
        for &at in txn.records.iter().rev() {
            let mut head = [0u8; UNDO_HEADER];
            self.rio.read(self.undo, at, &mut head);
            let region = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes")) as usize;
            let offset = u64::from_le_bytes(head[4..12].try_into().expect("8 bytes")) as usize;
            let len = u64::from_le_bytes(head[12..20].try_into().expect("8 bytes")) as usize;
            let mut payload = vec![0u8; len];
            self.rio.read(self.undo, at + UNDO_HEADER, &mut payload);
            self.rio.mapped_write(self.db[region], offset, &payload);
            self.stats.add_local_copy(len);
        }
        self.rio.mapped_write(self.meta, 0, &0u64.to_le_bytes());
        self.undo_off = 0;
        self.stats.aborts += 1;
        Ok(())
    }

    fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    fn clock(&self) -> &SimClock {
        self.rio.clock()
    }

    fn stats(&self) -> TxnStats {
        self.stats
    }

    fn region_len(&self, region: RegionId) -> Result<usize, TxnError> {
        self.region_lens
            .get(region.as_raw() as usize)
            .copied()
            .ok_or(TxnError::UnknownRegion(region))
    }
}

/// Returns the first uncovered byte of `[start, start+len)`, or `None`.
fn first_uncovered(
    declared: &[(usize, usize, usize)],
    ri: usize,
    start: usize,
    len: usize,
) -> Option<usize> {
    let mut uncovered = vec![(start, start + len)];
    for &(r, s, l) in declared {
        if r != ri || l == 0 {
            continue;
        }
        let (ds, de) = (s, s + l);
        let mut next = Vec::with_capacity(uncovered.len() + 1);
        for (a, b) in uncovered {
            if de <= a || ds >= b {
                next.push((a, b));
            } else {
                if a < ds {
                    next.push((a, ds));
                }
                if de < b {
                    next.push((de, b));
                }
            }
        }
        uncovered = next;
        if uncovered.is_empty() {
            return None;
        }
    }
    uncovered.first().map(|&(a, _)| a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn published(len: usize) -> (VistaSystem, RegionId) {
        let mut v = VistaSystem::new(SimClock::new());
        let r = v.alloc_region(len).unwrap();
        v.publish().unwrap();
        (v, r)
    }

    #[test]
    fn commit_roundtrip_in_microseconds() {
        let (mut v, r) = published(64);
        let sw = v.clock().stopwatch();
        v.begin_transaction().unwrap();
        v.set_range(r, 0, 8).unwrap();
        v.write(r, 0, &[1; 8]).unwrap();
        v.commit_transaction().unwrap();
        assert!(sw.elapsed().as_micros() < 20, "{}", sw.elapsed());
        let mut buf = [0u8; 8];
        v.read(r, 0, &mut buf).unwrap();
        assert_eq!(buf, [1; 8]);
    }

    #[test]
    fn abort_restores() {
        let (mut v, r) = published(32);
        v.begin_transaction().unwrap();
        v.set_range(r, 0, 8).unwrap();
        v.write(r, 0, &[5; 8]).unwrap();
        v.set_range(r, 4, 8).unwrap();
        v.write(r, 4, &[6; 8]).unwrap();
        v.abort_transaction().unwrap();
        let mut buf = [0u8; 16];
        v.read(r, 0, &mut buf).unwrap();
        assert_eq!(buf, [0; 16]);
    }

    #[test]
    fn crash_mid_transaction_rolls_back_on_recovery() {
        let (mut v, r) = published(64);
        v.begin_transaction().unwrap();
        v.set_range(r, 0, 8).unwrap();
        v.write(r, 0, &[1; 8]).unwrap();
        v.commit_transaction().unwrap();

        v.begin_transaction().unwrap();
        v.set_range(r, 8, 8).unwrap();
        v.write(r, 8, &[2; 8]).unwrap();
        let handle = v.handle();
        drop(v); // crash mid-transaction

        let v2 = VistaSystem::recover(handle);
        let mut buf = [0u8; 16];
        v2.read(r, 0, &mut buf).unwrap();
        assert_eq!(&buf[..8], &[1; 8], "committed txn lost");
        assert_eq!(&buf[8..], &[0; 8], "uncommitted txn leaked");
    }

    #[test]
    fn crash_after_commit_preserves_data() {
        let (mut v, r) = published(16);
        v.begin_transaction().unwrap();
        v.set_range(r, 0, 16).unwrap();
        v.write(r, 0, &[9; 16]).unwrap();
        v.commit_transaction().unwrap();
        let handle = v.handle();
        drop(v);
        let v2 = VistaSystem::recover(handle);
        let mut buf = [0u8; 16];
        v2.read(r, 0, &mut buf).unwrap();
        assert_eq!(buf, [9; 16]);
    }

    #[test]
    fn overlapping_ranges_recover_to_oldest() {
        let (mut v, r) = published(16);
        v.begin_transaction().unwrap();
        v.set_range(r, 0, 8).unwrap();
        v.write(r, 0, &[1; 8]).unwrap();
        v.set_range(r, 4, 8).unwrap();
        v.write(r, 4, &[2; 8]).unwrap();
        let handle = v.handle();
        drop(v);
        let v2 = VistaSystem::recover(handle);
        let mut buf = [0u8; 16];
        v2.read(r, 0, &mut buf).unwrap();
        assert_eq!(buf, [0; 16]);
    }

    #[test]
    fn undo_log_grows() {
        let (mut v, r) = published(256 << 10);
        v.begin_transaction().unwrap();
        v.set_range(r, 0, 128 << 10).unwrap();
        v.write(r, 0, &vec![3; 128 << 10]).unwrap();
        v.abort_transaction().unwrap();
        let mut buf = vec![0u8; 128 << 10];
        v.read(r, 0, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn undeclared_write_rejected() {
        let (mut v, r) = published(8);
        v.begin_transaction().unwrap();
        assert!(matches!(
            v.write(r, 0, &[1]).unwrap_err(),
            TxnError::RangeNotDeclared { .. }
        ));
    }

    #[test]
    fn state_machine_errors() {
        let mut v = VistaSystem::new(SimClock::new());
        assert_eq!(
            v.begin_transaction().unwrap_err(),
            TxnError::BadPublishState
        );
        let _ = v.alloc_region(8).unwrap();
        v.publish().unwrap();
        assert_eq!(v.publish().unwrap_err(), TxnError::BadPublishState);
        assert_eq!(v.alloc_region(8).unwrap_err(), TxnError::BadPublishState);
        v.begin_transaction().unwrap();
        assert_eq!(
            v.begin_transaction().unwrap_err(),
            TxnError::TransactionAlreadyActive
        );
    }
}
