//! The paper's comparison systems, rebuilt so the evaluation can be
//! regenerated rather than quoted.
//!
//! * [`WalSystem`] — an RVM-like recoverable virtual memory using the
//!   Write-Ahead Logging protocol of the paper's Figure 2: an in-memory
//!   undo log for aborts, a redo log written **synchronously at commit**,
//!   and periodic checkpoints that propagate committed updates to the
//!   database file. It is generic over its [`StableStore`]:
//!   [`WalSystem::rvm`] puts the log on a simulated 1998 magnetic disk,
//!   [`WalSystem::rio_rvm`] on a [`RioCache`] (memory-speed reliable file
//!   cache), reproducing the RVM vs. Rio-RVM comparison. A configurable
//!   group-commit factor implements the optimisation the paper says
//!   PERSEAS still beats by an order of magnitude.
//! * [`RioCache`] — a model of the Rio reliable file cache: main memory
//!   that survives crashes, reachable through a (costly) file interface or
//!   through (cheap) mapped stores.
//! * [`VistaSystem`] — a Vista-like library: database and undo log both
//!   live in reliable mapped memory; commit discards the undo log with a
//!   single word write; no redo log, no disk.
//! * [`NetWalStore`] — the remote-memory WAL of Ioannidis et al. (paper
//!   §2): log mirrored to remote memory, streamed to disk asynchronously;
//!   fast until the write buffer fills, then bounded by disk throughput.
//!
//! All systems implement [`perseas_txn::TransactionalMemory`], so the
//! workloads and the benchmark harness drive them interchangeably with
//! PERSEAS.

mod netwal;
mod rio;
mod store;
mod vista;
mod wal;
mod walog;

pub use netwal::NetWalStore;
pub use rio::{RioCache, RioParams, RioRegionId};
pub use store::{DiskStore, RioStore, StableStore};
pub use vista::VistaSystem;
pub use wal::{WalConfig, WalSystem};
pub use walog::{WalRecord, COMMIT_MAGIC, RECORD_MAGIC};
