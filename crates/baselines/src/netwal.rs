//! The remote-memory WAL of Ioannidis et al. (the paper's Section 2
//! comparison): the redo log is replicated into a remote node's main
//! memory — making commits fast — while every log byte is *also* written
//! to disk asynchronously.
//!
//! The paper's critique, which this implementation lets you measure:
//!
//! > "In case of heavy load, write buffers will become full and the
//! > asynchronous write operations will become synchronous, thereby
//! > delaying transaction completion. Moreover, the transaction commit
//! > performance is limited by disk throughput (all transactions write
//! > their data to disk even if they do so asynchronously)."
//!
//! Short bursts commit at network speed; sustained load degrades to the
//! disk's drain rate. PERSEAS never touches the disk at all.

use std::sync::Arc;

use parking_lot::Mutex;

use perseas_disk::{DiskFile, DiskParams, SimDisk, WriteMode};
use perseas_sci::{NodeMemory, SciLink, SciParams, SegmentId};
use perseas_simtime::SimClock;

use crate::store::StableStore;

#[derive(Debug)]
struct LogMirror {
    seg: SegmentId,
    capacity: usize,
    /// Local shadow of the log (used to re-seed a grown remote segment).
    shadow: Vec<u8>,
}

/// Stable storage with the log mirrored in remote memory and streamed to
/// disk asynchronously; database files live on the disk as usual.
///
/// # Panics
///
/// Log operations panic if the remote mirror node is unreachable — this
/// baseline models the healthy-path performance argument, not mirror
/// fault tolerance (that is PERSEAS' job).
#[derive(Debug, Clone)]
pub struct NetWalStore {
    disk: SimDisk,
    log_file: DiskFile,
    db: Vec<DiskFile>,
    link: SciLink,
    mirror: Arc<Mutex<LogMirror>>,
}

impl NetWalStore {
    const INITIAL_LOG: usize = 256 << 10;

    /// Creates the store on a fresh 1998 disk and SCI link sharing
    /// `clock`.
    pub fn new(clock: SimClock) -> Self {
        NetWalStore::with_params(clock, DiskParams::disk_1998(), SciParams::dolphin_1998())
    }

    /// Creates the store with explicit device parameters.
    pub fn with_params(clock: SimClock, disk_params: DiskParams, sci_params: SciParams) -> Self {
        let disk = SimDisk::new(clock.clone(), disk_params);
        let log_file = disk.create_file("net-wal-log", 0);
        let node = NodeMemory::new("log-mirror");
        let link = SciLink::new(clock, node.clone(), sci_params);
        let seg = node
            .export_segment(Self::INITIAL_LOG, 0)
            .expect("fresh mirror node has room");
        NetWalStore {
            disk,
            log_file,
            db: Vec::new(),
            link,
            mirror: Arc::new(Mutex::new(LogMirror {
                seg,
                capacity: Self::INITIAL_LOG,
                shadow: Vec::new(),
            })),
        }
    }

    /// The underlying disk (stats and crash injection).
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }

    /// The SCI link to the log mirror.
    pub fn link(&self) -> &SciLink {
        &self.link
    }
}

impl StableStore for NetWalStore {
    fn clock(&self) -> &SimClock {
        self.disk.clock()
    }

    fn create_db_region(&mut self, len: usize) -> usize {
        let f = self.disk.create_file(format!("db-{}", self.db.len()), len);
        self.db.push(f);
        self.db.len() - 1
    }

    fn append_log(&mut self, data: &[u8], _sync: bool) {
        let mut g = self.mirror.lock();
        let at = g.shadow.len();
        g.shadow.extend_from_slice(data);
        if at + data.len() > g.capacity {
            let new_cap = (g.capacity * 2).max(at + data.len());
            let node = self.link.node().clone();
            let new_seg = node
                .export_segment(new_cap, 0)
                .expect("mirror node has room for the grown log");
            if at > 0 {
                self.link
                    .remote_write(new_seg, 0, &g.shadow[..at])
                    .expect("log mirror reachable");
            }
            let _ = node.free_segment(g.seg);
            g.seg = new_seg;
            g.capacity = new_cap;
        }
        // Durability point: the remote memory copy (synchronous, but at
        // network speed — microseconds).
        self.link
            .remote_write(g.seg, at, data)
            .expect("log mirror reachable");
        drop(g);
        // The disk write is asynchronous... until the buffer fills.
        self.log_file.append(data, WriteMode::Async);
    }

    fn sync_log(&mut self) {
        // Durability already comes from the mirror; nothing to wait for.
    }

    fn log_len(&self) -> usize {
        self.mirror.lock().shadow.len()
    }

    fn truncate_log(&mut self) {
        self.mirror.lock().shadow.clear();
        self.log_file.truncate(0);
    }

    fn write_db(&mut self, region: usize, offset: usize, data: &[u8]) {
        self.db[region].write_at(offset, data, WriteMode::Async);
    }

    fn flush_db(&mut self) {
        if let Some(f) = self.db.first() {
            f.flush();
        }
    }

    fn stable_log(&self) -> Vec<u8> {
        // Recovery reads the log back from the surviving remote memory.
        let g = self.mirror.lock();
        let mut buf = vec![0u8; g.shadow.len()];
        if !buf.is_empty() {
            self.link
                .node()
                .read(g.seg, 0, &mut buf)
                .expect("log mirror reachable");
        }
        buf
    }

    fn stable_db(&self, region: usize) -> Vec<u8> {
        self.db[region].stable_snapshot()
    }

    fn region_count(&self) -> usize {
        self.db.len()
    }

    fn medium(&self) -> &'static str {
        "net+disk"
    }

    fn log_append_is_remote(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{WalConfig, WalSystem};
    use perseas_txn::TransactionalMemory;

    fn system() -> WalSystem<NetWalStore> {
        WalSystem::with_store(NetWalStore::new(SimClock::new()), WalConfig::new())
    }

    #[test]
    fn commits_at_network_speed_when_buffer_has_room() {
        let mut s = system();
        let r = s.alloc_region(1024).unwrap();
        s.publish().unwrap();
        let sw = s.clock().stopwatch();
        s.begin_transaction().unwrap();
        s.set_range(r, 0, 16).unwrap();
        s.write(r, 0, &[1; 16]).unwrap();
        s.commit_transaction().unwrap();
        // Microseconds, not the disk's milliseconds.
        assert!(sw.elapsed().as_micros() < 100, "{}", sw.elapsed());
    }

    #[test]
    fn sustained_load_degrades_to_disk_throughput() {
        let clock = SimClock::new();
        let store = NetWalStore::new(clock.clone());
        let mut s = WalSystem::with_store(
            store,
            // Large checkpoint threshold: keep streaming to the log.
            WalConfig::new().with_checkpoint_log_bytes(512 << 20),
        );
        let r = s.alloc_region(1 << 20).unwrap();
        s.publish().unwrap();

        let txn = |s: &mut WalSystem<NetWalStore>, i: usize| {
            s.begin_transaction().unwrap();
            let off = (i * 4096) % (1 << 19);
            s.set_range(r, off, 4096).unwrap();
            s.write(r, off, &[1; 4096]).unwrap();
            s.commit_transaction().unwrap();
        };

        // First transactions are absorbed by the write buffer...
        let sw = clock.stopwatch();
        txn(&mut s, 0);
        let first = sw.elapsed();

        // ...but a sustained run fills the 256 KB buffer and the
        // asynchronous writes become synchronous (the paper's words).
        let mut slowest = first;
        for i in 1..400 {
            let sw = clock.stopwatch();
            txn(&mut s, i);
            slowest = slowest.max(sw.elapsed());
        }
        assert!(
            slowest.as_nanos() > first.as_nanos() * 10,
            "expected a buffer-full stall: first {first}, slowest {slowest}"
        );
        assert!(s.store().disk().stats().buffer_stalls > 0);
    }

    #[test]
    fn recovery_reads_the_log_from_remote_memory() {
        let mut s = system();
        let r = s.alloc_region(64).unwrap();
        s.publish().unwrap();
        s.begin_transaction().unwrap();
        s.set_range(r, 0, 8).unwrap();
        s.write(r, 0, &[9; 8]).unwrap();
        s.commit_transaction().unwrap();

        let store = s.store().clone();
        drop(s);
        // Power loss: the disk's volatile buffer is gone; the remote
        // memory survives.
        store.disk().crash_volatile();

        let s2 = WalSystem::recover(store, WalConfig::new());
        let mut buf = [0u8; 8];
        s2.read(r, 0, &mut buf).unwrap();
        assert_eq!(buf, [9; 8]);
    }

    #[test]
    fn log_mirror_grows_on_demand() {
        let mut s = system();
        let r = s.alloc_region(1 << 20).unwrap();
        s.publish().unwrap();
        // Push more than the initial 256 KB of log.
        for i in 0..80usize {
            s.begin_transaction().unwrap();
            let off = (i * 8192) % (1 << 19);
            s.set_range(r, off, 8192).unwrap();
            s.write(r, off, &[i as u8; 8192]).unwrap();
            s.commit_transaction().unwrap();
        }
        assert!(s.store().log_len() > NetWalStore::INITIAL_LOG);
        // And it still recovers.
        let store = s.store().clone();
        drop(s);
        store.disk().crash_volatile();
        let s2 = WalSystem::recover(store, WalConfig::new());
        let mut buf = [0u8; 8];
        s2.read(r, 0, &mut buf).unwrap();
        let _ = buf;
    }

    #[test]
    fn medium_name() {
        assert_eq!(NetWalStore::new(SimClock::new()).medium(), "net+disk");
    }
}
