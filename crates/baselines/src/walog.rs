//! The write-ahead log record format shared by RVM and RVM-on-Rio.
//!
//! The log holds two kinds of records, both CRC-protected so that recovery
//! can stop cleanly at a torn tail:
//!
//! * **update** records carrying the after-image of one modified range;
//! * **commit** records marking every update of a transaction durable.
//!
//! Updates are written (buffered) at commit time — RVM's no-undo/redo
//! scheme: uncommitted data never reaches the log, so recovery is a pure
//! redo scan.

/// Magic opening an update record.
pub const RECORD_MAGIC: u32 = 0x5741_4C52; // "WALR"

/// Magic opening a commit record.
pub const COMMIT_MAGIC: u32 = 0x5741_4C43; // "WALC"

/// Header size of an update record.
pub const RECORD_HEADER: usize = 36;

/// Size of a commit record.
pub const COMMIT_SIZE: usize = 16;

fn crc32(parts: &[&[u8]]) -> u32 {
    let mut crc = !0u32;
    for part in parts {
        for &b in *part {
            crc ^= b as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
    }
    !crc
}

fn get_u32(buf: &[u8], off: usize) -> Option<u32> {
    buf.get(off..off + 4)
        .map(|b| u32::from_le_bytes(b.try_into().expect("4 bytes")))
}

fn get_u64(buf: &[u8], off: usize) -> Option<u64> {
    buf.get(off..off + 8)
        .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
}

/// A decoded log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// After-image of one modified range.
    Update {
        /// Transaction id.
        txn_id: u64,
        /// Region index.
        region: u32,
        /// Byte offset within the region.
        offset: u64,
        /// Range of the after-image bytes within the log buffer.
        payload: std::ops::Range<usize>,
    },
    /// Transaction `txn_id` is committed.
    Commit {
        /// Transaction id.
        txn_id: u64,
    },
}

/// Encodes an update record (header + after-image) into `out`.
pub fn encode_update(out: &mut Vec<u8>, txn_id: u64, region: u32, offset: u64, payload: &[u8]) {
    let mut head = [0u8; RECORD_HEADER];
    head[0..4].copy_from_slice(&RECORD_MAGIC.to_le_bytes());
    head[4..12].copy_from_slice(&txn_id.to_le_bytes());
    head[12..16].copy_from_slice(&region.to_le_bytes());
    head[16..24].copy_from_slice(&offset.to_le_bytes());
    head[24..32].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    let crc = crc32(&[&head[0..32], payload]);
    head[32..36].copy_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&head);
    out.extend_from_slice(payload);
}

/// Encodes a commit record into `out`.
pub fn encode_commit(out: &mut Vec<u8>, txn_id: u64) {
    let mut rec = [0u8; COMMIT_SIZE];
    rec[0..4].copy_from_slice(&COMMIT_MAGIC.to_le_bytes());
    rec[4..12].copy_from_slice(&txn_id.to_le_bytes());
    let crc = crc32(&[&rec[0..12]]);
    rec[12..16].copy_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&rec);
}

/// Decodes the record at `at`, returning it and the offset of the next
/// record, or `None` at a torn/garbage tail.
pub fn decode_at(buf: &[u8], at: usize) -> Option<(WalRecord, usize)> {
    match get_u32(buf, at)? {
        RECORD_MAGIC => {
            let txn_id = get_u64(buf, at + 4)?;
            let region = get_u32(buf, at + 12)?;
            let offset = get_u64(buf, at + 16)?;
            let len = usize::try_from(get_u64(buf, at + 24)?).ok()?;
            let stored = get_u32(buf, at + 32)?;
            let p_start = at + RECORD_HEADER;
            let p_end = p_start.checked_add(len)?;
            if p_end > buf.len() {
                return None;
            }
            if crc32(&[&buf[at..at + 32], &buf[p_start..p_end]]) != stored {
                return None;
            }
            Some((
                WalRecord::Update {
                    txn_id,
                    region,
                    offset,
                    payload: p_start..p_end,
                },
                p_end,
            ))
        }
        COMMIT_MAGIC => {
            let txn_id = get_u64(buf, at + 4)?;
            let stored = get_u32(buf, at + 12)?;
            if crc32(&[&buf[at..at + 12]]) != stored {
                return None;
            }
            Some((WalRecord::Commit { txn_id }, at + COMMIT_SIZE))
        }
        _ => None,
    }
}

/// Scans a whole log image, yielding records until the first invalid one.
pub fn scan(buf: &[u8]) -> Vec<WalRecord> {
    let mut out = Vec::new();
    let mut at = 0;
    while let Some((rec, next)) = decode_at(buf, at) {
        out.push(rec);
        at = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_and_commit_roundtrip() {
        let mut log = Vec::new();
        encode_update(&mut log, 3, 1, 64, &[9; 10]);
        encode_commit(&mut log, 3);
        let recs = scan(&log);
        assert_eq!(recs.len(), 2);
        match &recs[0] {
            WalRecord::Update {
                txn_id,
                region,
                offset,
                payload,
            } => {
                assert_eq!((*txn_id, *region, *offset), (3, 1, 64));
                assert_eq!(&log[payload.clone()], &[9; 10]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(recs[1], WalRecord::Commit { txn_id: 3 });
    }

    #[test]
    fn torn_tail_stops_the_scan() {
        let mut log = Vec::new();
        encode_update(&mut log, 1, 0, 0, &[1; 8]);
        encode_commit(&mut log, 1);
        let complete = scan(&log).len();
        encode_update(&mut log, 2, 0, 0, &[2; 8]);
        // Tear the last record.
        let torn = log.len() - 3;
        assert_eq!(scan(&log[..torn]).len(), complete);
    }

    #[test]
    fn corrupt_payload_invalidates_record() {
        let mut log = Vec::new();
        encode_update(&mut log, 1, 0, 0, &[1; 8]);
        log[RECORD_HEADER + 2] ^= 0xFF;
        assert!(scan(&log).is_empty());
    }

    #[test]
    fn corrupt_commit_invalidates_record() {
        let mut log = Vec::new();
        encode_commit(&mut log, 1);
        log[5] ^= 0xFF;
        assert!(scan(&log).is_empty());
    }

    #[test]
    fn empty_and_garbage_logs_scan_to_nothing() {
        assert!(scan(&[]).is_empty());
        assert!(scan(&[0xAB; 100]).is_empty());
    }

    #[test]
    fn absurd_length_does_not_panic() {
        let mut log = vec![0u8; 64];
        log[0..4].copy_from_slice(&RECORD_MAGIC.to_le_bytes());
        log[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(scan(&log).is_empty());
    }
}
