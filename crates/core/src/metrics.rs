//! Metrics instrumentation for the transaction engine.
//!
//! [`Perseas::set_metrics`] installs a [`CoreMetrics`] bundle of typed
//! handles into a shared [`Registry`]; every [`TraceEvent`] the engine
//! emits is then mirrored into counters and gauges, and the commit paths
//! record latency histograms in both time bases (virtual [`SimClock`]
//! time and wall-clock time). Without metrics installed the overhead is
//! a single branch per milestone — virtual-time measurements are
//! untouched, which is what keeps the sim-mode bench CSVs byte-identical
//! with the registry off.
//!
//! The metric names registered here are a stable contract; see
//! `docs/OBSERVABILITY.md`.
//!
//! [`Perseas::set_metrics`]: crate::Perseas::set_metrics
//! [`SimClock`]: perseas_simtime::SimClock

use perseas_obs::{Counter, Gauge, Histo, Registry};
use perseas_simtime::SimDuration;

use crate::recovery::RecoveryReport;
use crate::trace::TraceEvent;

/// Typed handles into a [`Registry`] for every engine-level metric.
///
/// Owned by [`Perseas`](crate::Perseas); updated from
/// [`TraceEvent`]s plus a few explicit latency hooks on the commit
/// paths.
pub(crate) struct CoreMetrics {
    registry: Registry,
    /// Shard index of the owning instance, when it is one shard of a
    /// [`crate::ShardedPerseas`] database. Per-mirror gauges then carry a
    /// `shard` label (so shard 0's mirror 0 and shard 1's mirror 0 are
    /// distinct series) and commits are additionally counted into the
    /// shard-labelled `perseas_shard_*` family.
    shard: Option<u16>,
    begun: Counter,
    committed: Counter,
    committed_bytes: Counter,
    aborted: Counter,
    conflicts: Counter,
    quorum_refusals: Counter,
    degraded_commits: Counter,
    group_commits: Counter,
    group_txns: Counter,
    commit_batches: Counter,
    set_ranges: Counter,
    crashes: Counter,
    flush_barriers: Counter,
    flush_posted: Counter,
    flush_bytes: Counter,
    undo_grown: Counter,
    undo_capacity: Gauge,
    epoch: Gauge,
    mirrors: Gauge,
    fenced: Counter,
    rejoins: Counter,
    resync_bytes: Counter,
    commit_wall: Histo,
    commit_virtual: Histo,
    group_commit_wall: Histo,
    group_commit_virtual: Histo,
    snapshots_open: Gauge,
    version_store_bytes: Gauge,
    version_store_versions: Gauge,
    version_evictions: Counter,
    version_evicted_bytes: Counter,
    snapshot_too_old: Counter,
    redo_appends: Counter,
    redo_records: Counter,
    redo_bytes: Counter,
    redo_log_bytes: Gauge,
    redo_segments_opened: Counter,
    redo_segments: Gauge,
    redo_snapshots: Counter,
    redo_snapshot_bytes: Counter,
    redo_compactions: Counter,
    redo_freed_bytes: Counter,
}

impl CoreMetrics {
    pub(crate) fn new(registry: &Registry) -> CoreMetrics {
        let r = registry;
        CoreMetrics {
            registry: r.clone(),
            shard: None,
            begun: r.counter("perseas_txn_begun_total", "Transactions begun."),
            committed: r.counter("perseas_txn_committed_total", "Transactions committed."),
            committed_bytes: r.counter(
                "perseas_txn_committed_bytes_total",
                "Database bytes made durable by committed transactions.",
            ),
            aborted: r.counter("perseas_txn_aborted_total", "Transactions aborted."),
            conflicts: r.counter(
                "perseas_txn_conflicts_total",
                "Range claims refused because another open transaction holds them.",
            ),
            quorum_refusals: r.counter(
                "perseas_txn_quorum_refusals_total",
                "Operations refused because fewer than commit_quorum mirrors are healthy.",
            ),
            degraded_commits: r.counter(
                "perseas_txn_degraded_commits_total",
                "Commits that completed with at least one mirror down.",
            ),
            group_commits: r.counter(
                "perseas_txn_group_commits_total",
                "Group commits (one durability fan-out covering several transactions).",
            ),
            group_txns: r.counter(
                "perseas_txn_group_txns_total",
                "Transactions resolved by group commits.",
            ),
            commit_batches: r.counter(
                "perseas_txn_commit_batches_total",
                "Batched-commit pipelines executed.",
            ),
            set_ranges: r.counter(
                "perseas_txn_set_ranges_total",
                "Before-images logged by set_range.",
            ),
            crashes: r.counter("perseas_txn_crashes_total", "Injected or real crashes."),
            flush_barriers: r.counter(
                "perseas_txn_flush_barriers_total",
                "Ack barriers that confirmed posted work at a durability claim.",
            ),
            flush_posted: r.counter(
                "perseas_txn_flush_posted_total",
                "Posted operations confirmed by ack barriers.",
            ),
            flush_bytes: r.counter(
                "perseas_txn_flush_bytes_total",
                "Posted bytes confirmed by ack barriers.",
            ),
            undo_grown: r.counter(
                "perseas_txn_undo_grown_total",
                "Times the mirrored undo log was grown.",
            ),
            undo_capacity: r.gauge(
                "perseas_undo_capacity_bytes",
                "Current capacity of the mirrored undo log.",
            ),
            epoch: r.gauge(
                "perseas_epoch",
                "Mirror-set epoch (bumped on every membership change).",
            ),
            mirrors: r.gauge(
                "perseas_mirrors",
                "Mirror nodes in the set (healthy or not).",
            ),
            fenced: r.counter(
                "perseas_mirror_fenced_total",
                "Mirrors fenced out of the set after a failed remote operation.",
            ),
            rejoins: r.counter(
                "perseas_mirror_rejoins_total",
                "Mirrors resynced and promoted back to healthy.",
            ),
            resync_bytes: r.counter(
                "perseas_mirror_resync_bytes_total",
                "Region-image bytes streamed to rejoining or newly added mirrors.",
            ),
            commit_wall: r.histogram(
                "perseas_txn_commit_seconds",
                "Wall-clock latency of commit_transaction (legacy path).",
            ),
            commit_virtual: r.histogram(
                "perseas_txn_commit_virtual_seconds",
                "Virtual-time latency of commit_transaction (legacy path).",
            ),
            group_commit_wall: r.histogram(
                "perseas_txn_group_commit_seconds",
                "Wall-clock latency of commit_group.",
            ),
            group_commit_virtual: r.histogram(
                "perseas_txn_group_commit_virtual_seconds",
                "Virtual-time latency of commit_group.",
            ),
            snapshots_open: r.gauge(
                "perseas_snapshots_open",
                "Read snapshots currently open against the version store.",
            ),
            version_store_bytes: r.gauge(
                "perseas_version_store_bytes",
                "Before-image payload bytes retained by the version store.",
            ),
            version_store_versions: r.gauge(
                "perseas_version_store_versions",
                "Committed versions retained by the version store.",
            ),
            version_evictions: r.counter(
                "perseas_version_evictions_total",
                "Committed versions evicted from the version store.",
            ),
            version_evicted_bytes: r.counter(
                "perseas_version_evicted_bytes_total",
                "Before-image payload bytes evicted from the version store.",
            ),
            snapshot_too_old: r.counter(
                "perseas_snapshot_too_old_total",
                "Snapshot reads refused because their versions were evicted.",
            ),
            redo_appends: r.counter(
                "perseas_redo_appends_total",
                "Redo-log append fan-outs (one per commit batch or tombstone).",
            ),
            redo_records: r.counter(
                "perseas_redo_records_total",
                "Records appended to the redo log (after-images and tombstones).",
            ),
            redo_bytes: r.counter(
                "perseas_redo_bytes_total",
                "Encoded bytes appended to the redo log, per mirror.",
            ),
            redo_log_bytes: r.gauge(
                "perseas_redo_log_bytes",
                "Redo-log bytes above the compaction floor (replayed by a restart now).",
            ),
            redo_segments_opened: r.counter(
                "perseas_redo_segments_opened_total",
                "Fresh redo-log segments opened across the mirror set.",
            ),
            redo_segments: r.gauge(
                "perseas_redo_segments",
                "Live redo-log segments (per mirror).",
            ),
            redo_snapshots: r.counter(
                "perseas_redo_snapshots_total",
                "Redo snapshots taken (consistent region images streamed to the mirrors).",
            ),
            redo_snapshot_bytes: r.counter(
                "perseas_redo_snapshot_bytes_total",
                "Region bytes streamed by redo snapshots, per mirror.",
            ),
            redo_compactions: r.counter(
                "perseas_redo_compactions_total",
                "Redo-log compaction passes that retired at least one segment.",
            ),
            redo_freed_bytes: r.counter(
                "perseas_redo_freed_bytes_total",
                "Remote redo-log bytes freed by compaction, per mirror.",
            ),
        }
    }

    /// Tags this bundle with the shard index of its owning instance.
    pub(crate) fn with_shard(mut self, shard: u16) -> CoreMetrics {
        self.shard = Some(shard);
        self
    }

    /// The per-mirror health gauge (1 healthy, 0 suspect/down).
    /// Registration is idempotent, so resolving it on each health event
    /// is cheap enough for a membership-change-rate path.
    fn mirror_healthy(&self, index: usize) -> Gauge {
        let mirror = index.to_string();
        match self.shard {
            None => self.registry.gauge_with(
                "perseas_mirror_healthy",
                "Per-mirror health (1 = healthy and receiving every write).",
                &[("mirror", &mirror)],
            ),
            Some(shard) => self.registry.gauge_with(
                "perseas_shard_mirror_healthy",
                "Per-mirror health of one shard's mirror set (1 = healthy).",
                &[("shard", &shard.to_string()), ("mirror", &mirror)],
            ),
        }
    }

    /// A shard-labelled counter of the `perseas_shard_*` family, resolved
    /// only when the bundle is shard-tagged.
    fn shard_counter(&self, name: &'static str, help: &'static str) -> Option<Counter> {
        self.shard.map(|s| {
            self.registry
                .counter_with(name, help, &[("shard", &s.to_string())])
        })
    }

    /// Seeds the membership gauges at installation time.
    pub(crate) fn seed(&self, epoch: u64, mirror_healthy: &[bool], undo_capacity: usize) {
        self.epoch.set(epoch as i64);
        self.mirrors.set(mirror_healthy.len() as i64);
        self.undo_capacity.set(undo_capacity as i64);
        for (i, &healthy) in mirror_healthy.iter().enumerate() {
            self.mirror_healthy(i).set(healthy as i64);
        }
    }

    /// Mirrors one trace event into the counters and gauges.
    pub(crate) fn observe(&self, event: &TraceEvent) {
        match event {
            TraceEvent::TxnBegin { .. } => self.begun.inc(),
            TraceEvent::SetRange { .. } => self.set_ranges.inc(),
            TraceEvent::UndoGrown { new_capacity } => {
                self.undo_grown.inc();
                self.undo_capacity.set(*new_capacity as i64);
            }
            TraceEvent::CommitBatch { .. } => self.commit_batches.inc(),
            TraceEvent::TxnCommitted { bytes, .. } => {
                self.committed.inc();
                self.committed_bytes.add(*bytes as u64);
                if let Some(c) = self.shard_counter(
                    "perseas_shard_txn_committed_total",
                    "Transactions committed, per shard.",
                ) {
                    c.inc();
                }
            }
            TraceEvent::TxnAborted { .. } => self.aborted.inc(),
            TraceEvent::MirrorAdded { index } => {
                self.mirrors.add(1);
                self.mirror_healthy(*index).set(1);
            }
            TraceEvent::MirrorRemoved { index } => {
                self.mirrors.add(-1);
                self.mirror_healthy(*index).set(0);
            }
            TraceEvent::MirrorDown { index, .. } => {
                self.fenced.inc();
                self.mirror_healthy(*index).set(0);
            }
            TraceEvent::MirrorRejoined { index, .. } => {
                self.rejoins.inc();
                self.mirror_healthy(*index).set(1);
            }
            TraceEvent::EpochBump { epoch } => self.epoch.set(*epoch as i64),
            TraceEvent::DegradedCommit { .. } => self.degraded_commits.inc(),
            TraceEvent::TxnConflict { .. } => self.conflicts.inc(),
            // The concurrent engine traces every commit fan-out as a
            // GroupCommit, including single-transaction ones from the
            // legacy facade; the metric only counts genuine groups.
            TraceEvent::GroupCommit { txns, .. } if txns.len() > 1 => {
                self.group_commits.inc();
                self.group_txns.add(txns.len() as u64);
            }
            TraceEvent::GroupCommit { .. } => {}
            TraceEvent::Flush { posted, bytes } => {
                self.flush_barriers.inc();
                self.flush_posted.add(*posted as u64);
                self.flush_bytes.add(*bytes as u64);
            }
            TraceEvent::Crashed => self.crashes.inc(),
            TraceEvent::CrossShardPrepared { .. } => {
                if let Some(c) = self.shard_counter(
                    "perseas_shard_prepares_total",
                    "Cross-shard transaction parts prepared, per shard.",
                ) {
                    c.inc();
                }
            }
            TraceEvent::CrossShardDecision { .. } => {
                if let Some(c) = self.shard_counter(
                    "perseas_shard_decisions_total",
                    "Cross-shard decision records written, per home shard.",
                ) {
                    c.inc();
                }
            }
            TraceEvent::CrossShardCommitted { shards, .. } => {
                if let Some(c) = self.shard_counter(
                    "perseas_shard_cross_commits_total",
                    "Cross-shard transactions fully committed, per home shard.",
                ) {
                    c.inc();
                }
                if let Some(c) = self.shard_counter(
                    "perseas_shard_cross_commit_parts_total",
                    "Participant parts resolved by cross-shard commits.",
                ) {
                    c.add(*shards as u64);
                }
            }
            TraceEvent::CrossShardResolved { committed, .. } => {
                let name = if *committed {
                    "perseas_shard_resolved_commits_total"
                } else {
                    "perseas_shard_resolved_aborts_total"
                };
                if let Some(c) = self.shard_counter(
                    name,
                    "In-doubt prepared parts resolved by recovery, per shard.",
                ) {
                    c.inc();
                }
            }
            TraceEvent::SnapshotBegin { open, .. } | TraceEvent::SnapshotEnd { open, .. } => {
                self.snapshots_open.set(*open as i64);
            }
            TraceEvent::SnapshotTooOld { .. } => self.snapshot_too_old.inc(),
            TraceEvent::VersionCaptured {
                bytes, versions, ..
            } => {
                self.version_store_bytes.set(*bytes as i64);
                self.version_store_versions.set(*versions as i64);
            }
            TraceEvent::VersionEvicted {
                versions,
                bytes,
                store_bytes,
                ..
            } => {
                self.version_evictions.add(*versions as u64);
                self.version_evicted_bytes.add(*bytes as u64);
                self.version_store_bytes.set(*store_bytes as i64);
                self.version_store_versions.add(-(*versions as i64));
            }
            TraceEvent::RedoAppend {
                records,
                bytes,
                live_bytes,
                ..
            } => {
                self.redo_appends.inc();
                self.redo_records.add(*records as u64);
                self.redo_bytes.add(*bytes as u64);
                self.redo_log_bytes.set(*live_bytes as i64);
            }
            TraceEvent::RedoSegmentOpened { live, .. } => {
                self.redo_segments_opened.inc();
                self.redo_segments.set(*live as i64);
            }
            TraceEvent::RedoSnapshot { bytes, .. } => {
                self.redo_snapshots.inc();
                self.redo_snapshot_bytes.add(*bytes as u64);
                // The snapshot covers the whole tail: nothing is left to
                // replay until the next append.
                self.redo_log_bytes.set(0);
            }
            TraceEvent::RedoCompacted {
                freed_bytes, live, ..
            } => {
                self.redo_compactions.inc();
                self.redo_freed_bytes.add(*freed_bytes as u64);
                self.redo_segments.set(*live as i64);
            }
        }
    }

    pub(crate) fn quorum_refusal(&self) {
        self.quorum_refusals.inc();
    }

    pub(crate) fn resynced(&self, bytes: usize) {
        self.resync_bytes.add(bytes as u64);
    }

    pub(crate) fn record_commit(&self, virtual_time: SimDuration, wall: std::time::Duration) {
        self.commit_virtual.record_sim(virtual_time);
        self.commit_wall.record_wall(wall);
    }

    pub(crate) fn record_group_commit(&self, virtual_time: SimDuration, wall: std::time::Duration) {
        self.group_commit_virtual.record_sim(virtual_time);
        self.group_commit_wall.record_wall(wall);
    }
}

/// Records a completed [`recovery`](crate::Perseas::recover) into
/// `registry`. Recovery constructs the instance, so it cannot run under
/// an installed [`Perseas::set_metrics`](crate::Perseas::set_metrics)
/// bundle — callers record the report explicitly instead.
pub fn record_recovery(registry: &Registry, report: &RecoveryReport) {
    registry
        .counter("perseas_recovery_runs_total", "Recoveries performed.")
        .inc();
    registry
        .counter(
            "perseas_recovery_rolled_back_txns_total",
            "In-flight transactions rolled back during recovery.",
        )
        .add(report.rolled_back_txns.len() as u64);
    registry
        .counter(
            "perseas_recovery_rolled_back_records_total",
            "Undo records applied during recovery rollback.",
        )
        .add(report.rolled_back_records as u64);
    registry
        .counter(
            "perseas_recovery_bytes_total",
            "Bytes copied remote-to-local to rebuild the database.",
        )
        .add(report.bytes_recovered as u64);
    registry
        .counter(
            "perseas_recovery_replayed_records_total",
            "Committed redo records replayed during recovery (redo mode).",
        )
        .add(report.replayed_records as u64);
    registry
        .counter(
            "perseas_recovery_replayed_bytes_total",
            "After-image bytes replayed from the redo log during recovery.",
        )
        .add(report.replayed_bytes as u64);
    registry
        .histogram(
            "perseas_recovery_replay_virtual_seconds",
            "Virtual-time duration of the redo replay phase of recovery.",
        )
        .record_sim(SimDuration::from_nanos(report.replay_virtual_nanos));
    registry
        .gauge(
            "perseas_epoch",
            "Mirror-set epoch (bumped on every membership change).",
        )
        .set(report.epoch as i64);
}

/// Records a completed [`crate::ShardedPerseas::recover`] into
/// `registry`: one [`record_recovery`] per shard report plus the
/// in-doubt resolutions the coordinator layer performed.
pub fn record_shard_recovery(registry: &Registry, report: &crate::ShardRecoveryReport) {
    for (shard, shard_report) in report.shards.iter().enumerate() {
        record_recovery(registry, shard_report);
        let label = shard.to_string();
        registry
            .counter_with(
                "perseas_shard_resolved_commits_total",
                "In-doubt prepared parts resolved by recovery, per shard.",
                &[("shard", &label)],
            )
            .add(report.resolved_commits[shard] as u64);
        registry
            .counter_with(
                "perseas_shard_resolved_aborts_total",
                "In-doubt prepared parts resolved by recovery, per shard.",
                &[("shard", &label)],
            )
            .add(report.resolved_aborts[shard] as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perseas_obs::parse_exposition;

    fn value(registry: &Registry, name: &str) -> f64 {
        parse_exposition(&registry.render())
            .unwrap()
            .into_iter()
            .find(|s| s.name == name && s.label("quantile").is_none())
            .map(|s| s.value)
            .unwrap_or(f64::NAN)
    }

    #[test]
    fn events_map_onto_counters() {
        let registry = Registry::new();
        let m = CoreMetrics::new(&registry);
        m.seed(3, &[true, true], 4096);
        m.observe(&TraceEvent::TxnBegin { id: 1 });
        m.observe(&TraceEvent::TxnCommitted {
            id: 1,
            ranges: 2,
            bytes: 300,
        });
        m.observe(&TraceEvent::MirrorDown {
            index: 1,
            error: "cut".into(),
        });
        m.observe(&TraceEvent::DegradedCommit {
            id: 2,
            healthy: 1,
            mirrors: 2,
        });
        m.observe(&TraceEvent::EpochBump { epoch: 4 });
        m.observe(&TraceEvent::GroupCommit {
            txns: (1..=8).collect(),
            ranges: 8,
            bytes: 8192,
            undo_bytes: 9000,
        });
        m.record_commit(
            SimDuration::from_micros(100),
            std::time::Duration::from_micros(80),
        );
        assert_eq!(value(&registry, "perseas_txn_begun_total"), 1.0);
        assert_eq!(value(&registry, "perseas_txn_committed_total"), 1.0);
        assert_eq!(value(&registry, "perseas_txn_committed_bytes_total"), 300.0);
        assert_eq!(value(&registry, "perseas_mirror_fenced_total"), 1.0);
        assert_eq!(value(&registry, "perseas_txn_degraded_commits_total"), 1.0);
        assert_eq!(value(&registry, "perseas_epoch"), 4.0);
        assert_eq!(value(&registry, "perseas_txn_group_txns_total"), 8.0);
        assert_eq!(value(&registry, "perseas_mirrors"), 2.0);
        assert_eq!(
            value(&registry, "perseas_txn_commit_virtual_seconds_count"),
            1.0
        );
        // The per-mirror gauge flipped for mirror 1 and stayed up for 0.
        let samples = parse_exposition(&registry.render()).unwrap();
        let health: Vec<(String, f64)> = samples
            .iter()
            .filter(|s| s.name == "perseas_mirror_healthy")
            .map(|s| (s.label("mirror").unwrap().to_string(), s.value))
            .collect();
        assert!(health.contains(&("0".to_string(), 1.0)));
        assert!(health.contains(&("1".to_string(), 0.0)));
    }

    #[test]
    fn recovery_report_is_recordable() {
        let registry = Registry::new();
        let report = RecoveryReport {
            last_committed: 7,
            epoch: 9,
            rolled_back_txn: Some(8),
            rolled_back_txns: vec![8, 9],
            rolled_back_records: 5,
            regions: 2,
            bytes_recovered: 8192,
            replayed_records: 3,
            replayed_bytes: 640,
            replay_virtual_nanos: 1200,
        };
        record_recovery(&registry, &report);
        record_recovery(&registry, &report);
        assert_eq!(value(&registry, "perseas_recovery_runs_total"), 2.0);
        assert_eq!(
            value(&registry, "perseas_recovery_rolled_back_txns_total"),
            4.0
        );
        assert_eq!(value(&registry, "perseas_recovery_bytes_total"), 16384.0);
        assert_eq!(value(&registry, "perseas_epoch"), 9.0);
    }
}
