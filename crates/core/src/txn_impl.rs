//! [`TransactionalMemory`] implementation for PERSEAS, so the shared
//! workloads and benchmark harness can drive it interchangeably with the
//! baselines.

use perseas_rnram::RemoteMemory;
use perseas_simtime::SimClock;
use perseas_txn::{RegionId, SnapshotToken, TransactionalMemory, TxnError, TxnStats};

use crate::perseas::Perseas;

impl<M: RemoteMemory> TransactionalMemory for Perseas<M> {
    fn system_name(&self) -> &'static str {
        "perseas"
    }

    fn alloc_region(&mut self, len: usize) -> Result<RegionId, TxnError> {
        self.malloc(len)
    }

    fn publish(&mut self) -> Result<(), TxnError> {
        self.init_remote_db()
    }

    fn begin_transaction(&mut self) -> Result<(), TxnError> {
        Perseas::begin_transaction(self)
    }

    fn set_range(&mut self, region: RegionId, offset: usize, len: usize) -> Result<(), TxnError> {
        Perseas::set_range(self, region, offset, len)
    }

    fn write(&mut self, region: RegionId, offset: usize, data: &[u8]) -> Result<(), TxnError> {
        Perseas::write(self, region, offset, data)
    }

    fn read(&self, region: RegionId, offset: usize, buf: &mut [u8]) -> Result<(), TxnError> {
        Perseas::read(self, region, offset, buf)
    }

    fn commit_transaction(&mut self) -> Result<(), TxnError> {
        Perseas::commit_transaction(self)
    }

    fn abort_transaction(&mut self) -> Result<(), TxnError> {
        Perseas::abort_transaction(self)
    }

    fn in_transaction(&self) -> bool {
        Perseas::in_transaction(self)
    }

    fn clock(&self) -> &SimClock {
        Perseas::clock(self)
    }

    fn stats(&self) -> TxnStats {
        Perseas::stats(self)
    }

    fn region_len(&self, region: RegionId) -> Result<usize, TxnError> {
        Perseas::region_len(self, region)
    }

    fn begin_snapshot(&mut self) -> Result<SnapshotToken, TxnError> {
        Perseas::begin_snapshot(self)
    }

    fn read_snapshot(
        &self,
        snap: SnapshotToken,
        region: RegionId,
        offset: usize,
        buf: &mut [u8],
    ) -> Result<(), TxnError> {
        Perseas::read_s(self, snap, region, offset, buf)
    }

    fn end_snapshot(&mut self, snap: SnapshotToken) {
        Perseas::end_snapshot(self, snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PerseasConfig;
    use perseas_rnram::SimRemote;

    fn dyn_roundtrip(tm: &mut dyn TransactionalMemory) {
        let r = tm.alloc_region(16).unwrap();
        tm.write(r, 0, &[1; 16]).unwrap();
        tm.publish().unwrap();
        tm.begin_transaction().unwrap();
        assert!(tm.in_transaction());
        tm.set_range(r, 0, 4).unwrap();
        tm.write(r, 0, &[2; 4]).unwrap();
        tm.commit_transaction().unwrap();
        let mut buf = [0u8; 16];
        tm.read(r, 0, &mut buf).unwrap();
        assert_eq!(&buf[..4], &[2; 4]);
        assert_eq!(&buf[4..], &[1; 12]);
        assert_eq!(tm.system_name(), "perseas");
        assert_eq!(tm.region_len(r).unwrap(), 16);
        assert_eq!(tm.stats().commits, 1);
    }

    #[test]
    fn perseas_as_dyn_transactional_memory() {
        let mut db = Perseas::init(vec![SimRemote::new("m")], PerseasConfig::default()).unwrap();
        dyn_roundtrip(&mut db);
    }
}
