//! Crash-point fault injection.
//!
//! Recovery testing needs to crash the primary at *every* point of the
//! commit protocol. [`FaultPlan`] counts protocol steps — one per remote
//! operation the library is about to issue — and kills the instance when
//! the armed step is reached. The mirror's [`perseas_sci::NodeMemory`]
//! survives, so a test can then run [`crate::Perseas::recover`] against it
//! and assert atomicity and durability.

/// A schedule of injected crashes, expressed in protocol steps.
///
/// # Examples
///
/// ```
/// use perseas_core::FaultPlan;
///
/// let mut plan = FaultPlan::crash_after(2);
/// assert!(plan.step());        // step 1 survives
/// assert!(plan.step());        // step 2 survives
/// assert!(!plan.step());       // step 3 crashes
/// assert_eq!(plan.steps_taken(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    crash_after: Option<u64>,
    taken: u64,
}

impl FaultPlan {
    /// A plan that never crashes.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan that lets `steps` protocol steps complete and crashes on the
    /// next one. `crash_after(0)` crashes on the first step.
    pub fn crash_after(steps: u64) -> Self {
        FaultPlan {
            crash_after: Some(steps),
            taken: 0,
        }
    }

    /// Advances by one protocol step. Returns `false` if the instance must
    /// crash *before* performing the step.
    pub fn step(&mut self) -> bool {
        let survive = match self.crash_after {
            None => true,
            Some(limit) => self.taken < limit,
        };
        self.taken += 1;
        survive
    }

    /// Total steps attempted so far (including a final fatal one).
    pub fn steps_taken(&self) -> u64 {
        self.taken
    }

    /// `true` if this plan will crash at some future or past step.
    pub fn is_armed(&self) -> bool {
        self.crash_after.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_plan_never_crashes() {
        let mut p = FaultPlan::none();
        for _ in 0..1000 {
            assert!(p.step());
        }
        assert_eq!(p.steps_taken(), 1000);
        assert!(!p.is_armed());
    }

    #[test]
    fn crash_after_zero_kills_first_step() {
        let mut p = FaultPlan::crash_after(0);
        assert!(!p.step());
        assert!(p.is_armed());
    }

    #[test]
    fn crash_point_is_exact() {
        let mut p = FaultPlan::crash_after(3);
        assert!(p.step());
        assert!(p.step());
        assert!(p.step());
        assert!(!p.step());
        assert!(!p.step());
    }
}
